// Future work — automatic category discovery (paper §V).
//
// "Category determination could be made more automatic using clustering
// methods." This bench embeds every categorized trace as a feature vector
// of its *measured* behavior (chunk profiles, volumes, periodicity
// measurements, metadata rates — no category labels), clusters with
// k-means, and measures how well the discovered structure matches the
// hand-designed Table I categories via the adjusted Rand index plus a
// cluster-majority alignment table.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "cluster/kmeans.hpp"
#include "core/pipeline.hpp"
#include "report/tables.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace mosaic;
using core::Category;

/// Embeds one categorized trace as a 14-dimensional behavior vector.
std::vector<double> embed(const core::TraceResult& result) {
  std::vector<double> features;
  features.reserve(14);
  const auto chunk_fractions = [&](const core::KindAnalysis& analysis) {
    double total = 0.0;
    for (const double v : analysis.temporality.chunk_bytes) total += v;
    for (const double v : analysis.temporality.chunk_bytes) {
      features.push_back(total > 0.0 ? v / total : 0.0);
    }
  };
  chunk_fractions(result.read);
  chunk_fractions(result.write);
  features.push_back(std::log1p(static_cast<double>(result.bytes_read)));
  features.push_back(std::log1p(static_cast<double>(result.bytes_written)));
  features.push_back(
      result.write.periodicity.periodic
          ? std::log1p(result.write.periodicity.dominant().period_seconds)
          : 0.0);
  features.push_back(result.read.periodicity.periodic ? 1.0 : 0.0);
  features.push_back(std::log1p(result.metadata.max_requests_per_second));
  features.push_back(std::log1p(result.metadata.mean_requests_per_second));
  return features;
}

/// Partition labels for the ARI comparison: the dominant temporality pair.
std::size_t reference_partition(const core::TraceResult& result) {
  const auto read = static_cast<std::size_t>(result.read.temporality.label);
  const auto write = static_cast<std::size_t>(result.write.temporality.label);
  return read * 8 + write;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("future_autocategories",
                      "unsupervised category discovery vs Table I rules");
  cli.add_option("traces", "population size", "12000");
  cli.add_option("clusters", "k for k-means", "8");
  cli.add_option("seed", "master seed", "20190410");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }

  sim::PopulationConfig config;
  config.target_traces =
      static_cast<std::size_t>(cli.get_int("traces").value_or(12000));
  config.seed =
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(20190410));
  const core::BatchResult batch =
      core::analyze_population(sim::to_traces(sim::generate_population(config)));

  // Feature embedding (min-max scaled so no single feature dominates).
  cluster::PointSet raw(14);
  for (const core::TraceResult& result : batch.results) {
    raw.add(embed(result));
  }
  const cluster::PointSet points = cluster::min_max_scale(raw);

  cluster::KMeansConfig kmeans_config;
  kmeans_config.k =
      static_cast<std::size_t>(cli.get_int("clusters").value_or(8));
  kmeans_config.seed = config.seed;
  const cluster::KMeansResult clusters = cluster::k_means(points, kmeans_config);

  // ARI against the rule-based temporality partition.
  std::vector<std::size_t> reference;
  reference.reserve(batch.results.size());
  for (const core::TraceResult& result : batch.results) {
    reference.push_back(reference_partition(result));
  }
  const double ari =
      cluster::adjusted_rand_index(clusters.labels, reference);

  std::printf(
      "\n=== Future work — automatic category discovery (paper §V) ===\n"
      "%zu categorized traces, %zu discovered clusters (k-means on measured "
      "behavior)\n\n",
      batch.results.size(), clusters.centroids.size());

  // Alignment table: each cluster's dominant categories.
  report::TextTable table(
      {"cluster", "traces", "dominant categories (share within cluster)"});
  for (std::size_t c = 0; c < clusters.centroids.size(); ++c) {
    std::map<Category, std::size_t> counts;
    std::size_t members = 0;
    for (std::size_t i = 0; i < batch.results.size(); ++i) {
      if (clusters.labels[i] != c) continue;
      ++members;
      for (const Category category : batch.results[i].categories.to_vector()) {
        // Temporality + periodicity axes only (metadata would swamp the list).
        if (core::category_axis(category) != core::CategoryAxis::kMetadata) {
          ++counts[category];
        }
      }
    }
    if (members == 0) continue;
    std::vector<std::pair<Category, std::size_t>> sorted(counts.begin(),
                                                         counts.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::vector<std::string> top;
    for (std::size_t t = 0; t < std::min<std::size_t>(3, sorted.size()); ++t) {
      top.push_back(
          std::string(core::category_name(sorted[t].first)) + " (" +
          util::format_percent(static_cast<double>(sorted[t].second) /
                               static_cast<double>(members)) +
          ")");
    }
    table.add_row({"C" + std::to_string(c), std::to_string(members),
                   util::join(top, ", ")});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nadjusted Rand index vs the rule-based (read, write) temporality\n"
      "partition: %.3f\n"
      "\nreading: an ARI well above 0 means the hand-designed Table I\n"
      "categories correspond to real density structure in behavior space —\n"
      "the rules are discoverable, supporting the paper's suggestion that\n"
      "category determination could be automated. Clusters that blend\n"
      "categories show where the rule boundaries are arbitrary (e.g. the\n"
      "steady-CV threshold).\n",
      ari);
  return 0;
}
