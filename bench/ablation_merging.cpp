// Ablation A — what the merging passes buy (paper §III-B2).
//
// The paper motivates concurrent-op merging and neighbor merging with rank
// desynchronization: staggered per-rank windows must fuse back into one
// logical operation or segmentation sees noise instead of a period. This
// bench sweeps the desynchronization magnitude and reports the periodic-
// detection rate with (a) both passes, (b) concurrent only, (c) none.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/merge.hpp"
#include "core/periodicity.hpp"
#include "core/segmentation.hpp"
#include "report/tables.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace mosaic;
using trace::IoOp;

/// Periodic bursts of `files` staggered ops each, desynchronized by sigma.
std::vector<IoOp> desynchronized_checkpoint(double desync_sigma,
                                            util::Rng& rng) {
  std::vector<IoOp> ops;
  constexpr int kBursts = 12;
  constexpr int kFilesPerBurst = 8;
  constexpr double kPeriod = 600.0;
  for (int burst = 0; burst < kBursts; ++burst) {
    const double base = 100.0 + burst * kPeriod;
    for (int f = 0; f < kFilesPerBurst; ++f) {
      const double stagger = std::abs(rng.normal(0.0, desync_sigma));
      IoOp op;
      op.start = base + stagger;
      op.end = op.start + 4.0 + std::abs(rng.normal(0.0, desync_sigma * 0.5));
      op.bytes = 1ull << 28;
      op.rank = f;
      op.kind = trace::OpKind::kWrite;
      ops.push_back(op);
    }
  }
  return ops;
}

enum class Mode { kFull, kConcurrentOnly, kNone };

struct Outcome {
  bool correct_period = false;  ///< some group recovered the planted 600 s
  bool phantom = false;         ///< a group reported at an unplanted period
  double volume_error = 1.0;    ///< relative error of the burst volume
};

Outcome evaluate(const std::vector<IoOp>& raw, Mode mode, double runtime) {
  std::vector<IoOp> ops = raw;
  std::sort(ops.begin(), ops.end(),
            [](const IoOp& a, const IoOp& b) { return a.start < b.start; });
  switch (mode) {
    case Mode::kFull:
      ops = core::merge_ops(std::move(ops), runtime);
      break;
    case Mode::kConcurrentOnly:
      ops = core::merge_concurrent(std::move(ops));
      break;
    case Mode::kNone:
      break;
  }
  const auto segments = core::segment_ops(ops);
  const core::PeriodicityResult result = core::detect_periodicity(segments);

  Outcome outcome;
  constexpr double kTrueBurstBytes = 8.0 * static_cast<double>(1ull << 28);
  for (const core::PeriodicGroup& group : result.groups) {
    if (std::abs(group.period_seconds - 600.0) < 60.0) {
      outcome.correct_period = true;
      outcome.volume_error =
          std::abs(group.mean_bytes - kTrueBurstBytes) / kTrueBurstBytes;
    } else {
      // Un-merged per-file ops masquerade as a fast periodic operation.
      outcome.phantom = true;
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("ablation_merging",
                      "periodicity detection vs rank desynchronization, "
                      "with merging stages ablated");
  cli.add_option("trials", "traces per configuration", "200");
  cli.add_option("seed", "RNG seed", "11");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  const auto trials =
      static_cast<std::size_t>(cli.get_int("trials").value_or(200));
  util::Rng rng(
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(11)));

  std::printf(
      "\n=== Ablation A — merging passes vs rank desynchronization ===\n"
      "periodic checkpoint, 8 files/burst, period 600 s; detection rate of\n"
      "the correct period over %zu trials per cell\n\n",
      trials);

  report::TextTable table({"desync sigma (s)", "mode", "correct period",
                           "phantom groups", "volume error"});
  for (const double sigma : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    struct Tally {
      std::size_t correct = 0;
      std::size_t phantoms = 0;
      double volume_error = 0.0;
    };
    Tally tallies[3];
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const auto ops = desynchronized_checkpoint(sigma, rng);
      constexpr double kRuntime = 7500.0;
      const Mode modes[3] = {Mode::kFull, Mode::kConcurrentOnly, Mode::kNone};
      for (int m = 0; m < 3; ++m) {
        const Outcome outcome = evaluate(ops, modes[m], kRuntime);
        if (outcome.correct_period) {
          ++tallies[m].correct;
          tallies[m].volume_error += outcome.volume_error;
        }
        if (outcome.phantom) ++tallies[m].phantoms;
      }
    }
    static constexpr const char* kModeNames[3] = {"full merging",
                                                  "concurrent only",
                                                  "no merging"};
    for (int m = 0; m < 3; ++m) {
      const auto pct = [&](std::size_t hits) {
        char buffer[16];
        std::snprintf(buffer, sizeof buffer, "%.0f%%",
                      100.0 * static_cast<double>(hits) /
                          static_cast<double>(trials));
        return std::string(buffer);
      };
      char label[32];
      std::snprintf(label, sizeof label, "%.1f", sigma);
      char verr[32];
      std::snprintf(verr, sizeof verr, "%.1f%%",
                    tallies[m].correct == 0
                        ? 0.0
                        : 100.0 * tallies[m].volume_error /
                              static_cast<double>(tallies[m].correct));
      table.add_row({m == 0 ? label : "", kModeNames[m],
                     pct(tallies[m].correct), pct(tallies[m].phantoms), verr});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nreading: the planted checkpoint moves 2 GiB per burst across 8\n"
      "files. Without merging, each file's window is its own op: the 600 s\n"
      "period often survives (inter-burst gaps still dominate, and the\n"
      "raw-space CV guards discard the sub-second micro-segments), but the\n"
      "per-burst volume is underestimated ~8x and, at low desync, the\n"
      "micro-segments form phantom 'fast periodic' groups. Merging removes\n"
      "the phantoms and restores exact volumes — the paper's stated reason\n"
      "for the fusion passes (SIII-B2).\n");
  return 0;
}
