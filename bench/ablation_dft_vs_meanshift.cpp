// Ablation C — segmentation+Mean-Shift vs frequency techniques (paper §II-B,
// §V). The paper notes DFT-based detection [Tarraf et al. 2024] "fails to
// distinguish between two intricate periodic behaviors" and lists frequency
// methods as future work. This bench runs both detectors over controlled
// scenarios: clean single periods, jittered periods, two superposed periods
// of the same kind, and aperiodic noise.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "cluster/fft.hpp"
#include "core/merge.hpp"
#include "core/periodicity.hpp"
#include "core/segmentation.hpp"
#include "core/pipeline.hpp"
#include "report/tables.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace mosaic;
using trace::IoOp;

struct Scenario {
  const char* name;
  std::vector<double> true_periods;  ///< empty = aperiodic
  std::vector<IoOp> ops;
  double runtime;
};

IoOp burst(double start, double duration, std::uint64_t bytes) {
  return IoOp{.start = start, .end = start + duration, .bytes = bytes,
              .rank = trace::kSharedRank, .kind = trace::OpKind::kWrite};
}

Scenario clean_period(util::Rng& rng, double period) {
  Scenario s{"single period", {period}, {}, 0.0};
  const double runtime = period * 20.0;
  for (double t = period * 0.5; t + 10.0 < runtime; t += period) {
    s.ops.push_back(burst(t, 5.0, 1ull << 30));
  }
  (void)rng;
  s.runtime = runtime;
  return s;
}

Scenario jittered_period(util::Rng& rng, double period, double jitter_frac) {
  Scenario s{"jittered period", {period}, {}, period * 20.0};
  for (double t = period * 0.5; t + 10.0 < s.runtime; t += period) {
    s.ops.push_back(
        burst(t + rng.normal(0.0, jitter_frac * period), 5.0, 1ull << 30));
  }
  return s;
}

Scenario two_periods(util::Rng& rng, double period_a, double period_b) {
  Scenario s{"two superposed periods", {period_a, period_b}, {}, 0.0};
  s.runtime = std::max(period_a, period_b) * 24.0;
  for (double t = period_a * 0.5; t + 20.0 < s.runtime; t += period_a) {
    s.ops.push_back(burst(t, 6.0, 4ull << 30));
  }
  for (double t = period_b * 0.25; t + 20.0 < s.runtime; t += period_b) {
    s.ops.push_back(burst(t, 1.0, 64ull << 20));
  }
  (void)rng;
  return s;
}

Scenario aperiodic(util::Rng& rng) {
  Scenario s{"aperiodic (Poisson arrivals)", {}, {}, 12000.0};
  double t = 50.0;
  while (t + 20.0 < s.runtime) {
    s.ops.push_back(burst(
        t, rng.uniform(0.5, 8.0),
        static_cast<std::uint64_t>(rng.uniform(1e6, 4e9))));
    t += rng.exponential(1.0 / 400.0);
  }
  return s;
}

/// True when `found` matches some true period within 15%.
bool matches_any(double found, const std::vector<double>& truths) {
  for (const double truth : truths) {
    if (std::abs(found - truth) < 0.15 * truth) return true;
  }
  return false;
}

struct Verdict {
  bool correct_detection = false;  ///< right periodic/aperiodic call
  std::size_t periods_recovered = 0;
};

Verdict run_meanshift(const Scenario& scenario) {
  auto ops = scenario.ops;
  std::sort(ops.begin(), ops.end(),
            [](const IoOp& a, const IoOp& b) { return a.start < b.start; });
  ops = core::merge_ops(std::move(ops), scenario.runtime);
  const auto segments = core::segment_ops(ops);
  const core::PeriodicityResult result = core::detect_periodicity(segments);

  Verdict verdict;
  if (scenario.true_periods.empty()) {
    verdict.correct_detection = !result.periodic;
    return verdict;
  }
  if (!result.periodic) return verdict;
  verdict.correct_detection = true;
  std::vector<bool> hit(scenario.true_periods.size(), false);
  for (const core::PeriodicGroup& group : result.groups) {
    for (std::size_t i = 0; i < scenario.true_periods.size(); ++i) {
      if (std::abs(group.period_seconds - scenario.true_periods[i]) <
          0.15 * scenario.true_periods[i]) {
        hit[i] = true;
      }
    }
  }
  for (const bool h : hit) {
    if (h) ++verdict.periods_recovered;
  }
  return verdict;
}

Verdict run_dft(const Scenario& scenario) {
  // Volume time series at 1-second bins, the frequency method's input.
  std::vector<std::pair<double, double>> samples;
  for (const IoOp& op : scenario.ops) {
    samples.emplace_back(op.start, static_cast<double>(op.bytes));
  }
  const auto series =
      cluster::bin_series(samples, scenario.runtime, 1.0);
  const cluster::DftPeriodicity result =
      cluster::detect_periodicity_dft(series);

  Verdict verdict;
  if (scenario.true_periods.empty()) {
    verdict.correct_detection = !result.periodic;
    return verdict;
  }
  if (!result.periodic) return verdict;
  verdict.correct_detection = true;
  std::vector<bool> hit(scenario.true_periods.size(), false);
  for (const cluster::SpectralPeak& peak : result.peaks) {
    for (std::size_t i = 0; i < scenario.true_periods.size(); ++i) {
      if (matches_any(peak.period_seconds, {scenario.true_periods[i]})) {
        hit[i] = true;
      }
    }
  }
  for (const bool h : hit) {
    if (h) ++verdict.periods_recovered;
  }
  return verdict;
}

}  // namespace

/// Population-level comparison: periodic-write precision/recall of each
/// backend against generator ground truth.
void population_backend_comparison(std::uint64_t seed) {
  sim::PopulationConfig config;
  config.target_traces = 5000;
  config.seed = seed;
  const sim::Population population = sim::generate_population(config);

  std::size_t valid = 0;
  for (const sim::LabeledTrace& labeled : population.traces) {
    if (!labeled.corrupted) ++valid;
  }
  std::printf("\npopulation-level backend comparison (periodic writes, %zu "
              "valid traces):\n\n",
              valid);
  report::TextTable table({"backend", "precision", "recall"});
  const std::pair<const char*, core::PeriodicityBackend> backends[] = {
      {"mean-shift (paper)", core::PeriodicityBackend::kMeanShift},
      {"frequency (SV)", core::PeriodicityBackend::kFrequency},
      {"hybrid", core::PeriodicityBackend::kHybrid},
  };
  for (const auto& [name, backend] : backends) {
    core::Thresholds thresholds;
    thresholds.periodicity_backend = backend;
    const core::Analyzer analyzer(thresholds);
    std::size_t tp = 0, fp = 0, fn = 0;
    for (const sim::LabeledTrace& labeled : population.traces) {
      if (labeled.corrupted) continue;
      const core::TraceResult result = analyzer.analyze(labeled.trace);
      const bool predicted =
          result.categories.contains(core::Category::kWritePeriodic);
      const bool truth = labeled.truth.categories.contains(
          core::Category::kWritePeriodic);
      if (predicted && truth) ++tp;
      if (predicted && !truth) ++fp;
      if (!predicted && truth) ++fn;
    }
    const double precision =
        tp + fp == 0 ? 1.0
                     : static_cast<double>(tp) / static_cast<double>(tp + fp);
    const double recall =
        tp + fn == 0 ? 1.0
                     : static_cast<double>(tp) / static_cast<double>(tp + fn);
    char cells[2][16];
    std::snprintf(cells[0], sizeof cells[0], "%.3f", precision);
    std::snprintf(cells[1], sizeof cells[1], "%.3f", recall);
    table.add_row({name, cells[0], cells[1]});
  }
  std::fputs(table.render().c_str(), stdout);
}

int main(int argc, char** argv) {
  util::CliParser cli("ablation_dft_vs_meanshift",
                      "segmentation+Mean-Shift vs DFT periodicity detection");
  cli.add_option("trials", "trials per scenario", "100");
  cli.add_option("seed", "RNG seed", "29");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  const auto trials =
      static_cast<std::size_t>(cli.get_int("trials").value_or(100));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed").value_or(29)));

  std::printf(
      "\n=== Ablation C — Mean-Shift segmentation vs DFT (%zu trials/cell) "
      "===\n\n",
      trials);

  struct Cell {
    std::size_t ms_correct = 0, dft_correct = 0;
    std::size_t ms_periods = 0, dft_periods = 0;
    std::size_t expected_periods = 0;
  };

  const auto run_scenario = [&](auto make) {
    Cell cell;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const Scenario scenario = make();
      cell.expected_periods += scenario.true_periods.size();
      const Verdict ms = run_meanshift(scenario);
      const Verdict dft = run_dft(scenario);
      if (ms.correct_detection) ++cell.ms_correct;
      if (dft.correct_detection) ++cell.dft_correct;
      cell.ms_periods += ms.periods_recovered;
      cell.dft_periods += dft.periods_recovered;
    }
    return cell;
  };

  report::TextTable table({"scenario", "mean-shift detect", "dft detect",
                           "mean-shift periods", "dft periods"});
  const auto add_row = [&](const char* name, const Cell& cell) {
    const auto pct = [&](std::size_t n, std::size_t d) {
      char buffer[16];
      std::snprintf(buffer, sizeof buffer, "%.0f%%",
                    d == 0 ? 0.0
                           : 100.0 * static_cast<double>(n) /
                                 static_cast<double>(d));
      return std::string(buffer);
    };
    table.add_row({name, pct(cell.ms_correct, trials),
                   pct(cell.dft_correct, trials),
                   pct(cell.ms_periods, cell.expected_periods),
                   pct(cell.dft_periods, cell.expected_periods)});
  };

  add_row("clean single period", run_scenario([&] {
            return clean_period(rng, rng.uniform(120.0, 900.0));
          }));
  add_row("jittered period (5%)", run_scenario([&] {
            return jittered_period(rng, rng.uniform(120.0, 900.0), 0.05);
          }));
  add_row("two superposed periods", run_scenario([&] {
            const double a = rng.uniform(400.0, 900.0);
            return two_periods(rng, a, a * rng.uniform(0.22, 0.35));
          }));
  add_row("aperiodic", run_scenario([&] { return aperiodic(rng); }));
  std::fputs(table.render().c_str(), stdout);

  population_backend_comparison(
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(29)) ^
      20190410u);

  std::printf(
      "\n'periods' counts distinct planted periods recovered. Readings:\n"
      "  - jitter: both methods detect, but the frequency method loses\n"
      "    period precision as phase noise smears the autocorrelation;\n"
      "  - two superposed same-kind trains (the paper's 'intricate' case):\n"
      "    both recover only the interleaved gap structure's dominant\n"
      "    component — the light train drowns in the heavy one's\n"
      "    volume-weighted signal for the DFT, and interleaving destroys\n"
      "    the light train's inter-op gaps for the segmentation (MOSAIC\n"
      "    handles the common real case, checkpoint + input cycling, by\n"
      "    analyzing reads and writes as separate streams);\n"
      "  - aperiodic: the CV guards and the significance gate keep both\n"
      "    false-positive rates near zero.\n");
  return 0;
}
