// Shared scaffolding for the table/figure reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper from a
// synthetic Blue Waters-like population, prints the measured numbers next to
// the paper's published ones, and exits 0. All benches accept:
//   --traces N   population size (default 20,000 ≈ 1/23 of Blue Waters 2019)
//   --seed S     master seed
//   --threads T  analysis threads (0 = hardware)
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "parallel/thread_pool.hpp"
#include "report/aggregate.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace mosaic::bench {

struct BenchSetup {
  sim::PopulationConfig population_config;
  std::size_t threads = 0;
  std::string csv_path;  ///< when non-empty, benches export their data as CSV
};

/// Parses the common flags; exits the process on --help or bad input.
inline BenchSetup parse_common_flags(const char* name, const char* summary,
                                     int argc, char** argv) {
  util::CliParser cli(name, summary);
  cli.add_option("traces", "number of executions to synthesize", "20000");
  cli.add_option("seed", "master RNG seed", "20190410");
  cli.add_option("threads", "analysis threads (0 = hardware)", "0");
  cli.add_option("csv", "also export the data as CSV to this path", "");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    std::exit(status.error().code == util::ErrorCode::kNotFound ? 0 : 2);
  }
  BenchSetup setup;
  setup.csv_path = std::string(cli.get("csv"));
  setup.population_config.target_traces =
      static_cast<std::size_t>(cli.get_int("traces").value_or(20000));
  setup.population_config.seed =
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(20190410));
  setup.threads = static_cast<std::size_t>(cli.get_int("threads").value_or(0));
  return setup;
}

struct BenchData {
  sim::Population population;
  core::BatchResult batch;
  double generate_seconds = 0.0;
  double analyze_seconds = 0.0;
};

/// Generates the population and runs the full pipeline on it.
inline BenchData run_pipeline(const BenchSetup& setup) {
  BenchData data;
  parallel::ThreadPool pool(setup.threads);

  util::Stopwatch watch;
  data.population = sim::generate_population(setup.population_config, &pool);
  data.generate_seconds = watch.elapsed_seconds();

  std::vector<trace::Trace> traces;
  traces.reserve(data.population.traces.size());
  for (const sim::LabeledTrace& labeled : data.population.traces) {
    traces.push_back(labeled.trace);  // keep labels for accuracy benches
  }

  watch.reset();
  data.batch = core::analyze_population(std::move(traces), {}, &pool);
  data.analyze_seconds = watch.elapsed_seconds();
  return data;
}

/// One "paper vs measured" row.
inline void print_row(const char* label, double paper, double measured) {
  std::printf("  %-38s paper: %6.1f%%   measured: %6.1f%%\n", label,
              paper * 100.0, measured * 100.0);
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void print_footer(const BenchData& data) {
  std::printf(
      "\n[population: %zu traces, %zu apps | generate %.2fs, analyze %.2fs | "
      "peak RSS %s]\n",
      data.population.traces.size(), data.population.app_count,
      data.generate_seconds, data.analyze_seconds,
      util::format_bytes(static_cast<double>(util::peak_rss_bytes())).c_str());
}

}  // namespace mosaic::bench
