// Reproduces paper Fig. 4: distribution of metadata-access categories.
//
// Paper (all runs): high_spike ~60%, multiple_spikes ~45.9%, high_density
// just under 13%; the single-run shares are far lower, showing that a few
// metadata-hungry applications are rerun very often.
#include "bench_common.hpp"

#include "report/tables.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  const bench::BenchSetup setup = bench::parse_common_flags(
      "fig4_metadata", "metadata category distribution (paper Fig. 4)", argc,
      argv);
  const bench::BenchData data = bench::run_pipeline(setup);
  const report::CategoryDistribution distribution =
      report::aggregate_categories(data.batch);

  bench::print_header("Fig. 4 — Category distribution for metadata access");

  using core::Category;
  struct Entry {
    const char* label;
    Category category;
    double paper_all_runs;  // read off the paper's figure/text
  };
  const Entry entries[] = {
      {"metadata_high_spike", Category::kMetadataHighSpike, 0.60},
      {"metadata_multiple_spikes", Category::kMetadataMultipleSpikes, 0.459},
      {"metadata_high_density", Category::kMetadataHighDensity, 0.13},
      {"metadata_insignificant_load", Category::kMetadataInsignificantLoad,
       -1.0},
  };

  report::TextTable table({"category", "paper all-runs", "measured all-runs",
                           "measured single-run"});
  for (const Entry& entry : entries) {
    table.add_row(
        {entry.label,
         entry.paper_all_runs < 0.0
             ? std::string("n/a")
             : util::format_percent(entry.paper_all_runs),
         util::format_percent(distribution.weighted_fraction(entry.category)),
         util::format_percent(distribution.single_fraction(entry.category))});
  }
  std::fputs(table.render().c_str(), stdout);

  // ASCII bar rendering of the all-runs view, Fig. 4 style.
  std::printf("\nall-runs distribution:\n");
  for (const Entry& entry : entries) {
    const double fraction = distribution.weighted_fraction(entry.category);
    const int bars = static_cast<int>(fraction * 50.0);
    std::printf("  %-28s |%-50.*s| %s\n", entry.label, bars,
                "##################################################",
                util::format_percent(fraction).c_str());
  }

  bench::print_footer(data);
  return 0;
}
