// Ablation D — what Darshan's per-file aggregation costs (paper §IV-A).
//
// The paper's stated limitation: with DXT disabled, Darshan aggregates all
// accesses between a file's open and close into one record. An application
// that keeps its output open and appends periodically appears as a single
// window spanning the run, so MOSAIC categorizes it write_steady — and the
// paper estimates "the majority of these behaviors are, in fact, periodic"
// (write_steady is 37% of executions; detected periodic only 8%).
//
// The generator can emit the DXT-level per-operation events alongside the
// aggregated records, so this bench measures the estimate directly: it
// categorizes every trace twice — from the aggregated records and from the
// DXT ops — and reports how the steady/periodic split shifts.
#include <cstdio>

#include "core/pipeline.hpp"
#include "report/tables.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  util::CliParser cli("ablation_aggregation",
                      "aggregated (Darshan) vs per-operation (DXT) view");
  cli.add_option("traces", "population size", "8000");
  cli.add_option("seed", "master seed", "20190410");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }

  sim::PopulationConfig config;
  config.target_traces =
      static_cast<std::size_t>(cli.get_int("traces").value_or(8000));
  config.seed =
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(20190410));
  config.emit_dxt = true;
  const sim::Population population = sim::generate_population(config);

  const core::Analyzer analyzer;
  std::size_t analyzed = 0;
  std::size_t agg_steady = 0;
  std::size_t agg_periodic = 0;
  std::size_t dxt_periodic = 0;
  std::size_t steady_actually_periodic = 0;
  std::size_t period_revealed_minute = 0;
  std::size_t period_revealed_hour = 0;

  for (const sim::LabeledTrace& labeled : population.traces) {
    if (labeled.corrupted) continue;
    ++analyzed;

    // Aggregated (Darshan) view.
    const core::TraceResult aggregated = analyzer.analyze(labeled.trace);
    const bool is_steady =
        aggregated.categories.contains(core::Category::kWriteSteady);
    const bool is_periodic_agg =
        aggregated.categories.contains(core::Category::kWritePeriodic);
    if (is_steady) ++agg_steady;
    if (is_periodic_agg) ++agg_periodic;

    // DXT view: per-operation events, no aggregation.
    std::vector<trace::IoOp> write_ops;
    for (const trace::IoOp& op : labeled.dxt_ops) {
      if (op.kind == trace::OpKind::kWrite) write_ops.push_back(op);
    }
    const core::KindAnalysis dxt =
        analyzer.analyze_ops(std::move(write_ops), labeled.trace.meta.run_time);
    const bool significant =
        dxt.temporality.label != core::Temporality::kInsignificant;
    const bool is_periodic_dxt = significant && dxt.periodicity.periodic;
    if (is_periodic_dxt) ++dxt_periodic;

    if (is_steady && !is_periodic_agg && is_periodic_dxt) {
      ++steady_actually_periodic;
      switch (dxt.periodicity.dominant().magnitude) {
        case core::PeriodMagnitude::kMinute: ++period_revealed_minute; break;
        case core::PeriodMagnitude::kHour: ++period_revealed_hour; break;
        default: break;
      }
    }
  }

  std::printf(
      "\n=== Ablation D — Darshan aggregation vs DXT-level operations ===\n"
      "%zu valid executions, write side\n\n",
      analyzed);

  const auto pct = [&](std::size_t count, std::size_t denom) {
    return util::format_percent(static_cast<double>(count) /
                                static_cast<double>(std::max<std::size_t>(
                                    denom, 1)));
  };
  report::TextTable table({"measurement", "value"});
  table.add_row({"write_steady (aggregated view)", pct(agg_steady, analyzed)});
  table.add_row(
      {"write_periodic (aggregated view)", pct(agg_periodic, analyzed)});
  table.add_row({"write_periodic (DXT view)", pct(dxt_periodic, analyzed)});
  table.add_row({"steady traces revealed periodic by DXT",
                 pct(steady_actually_periodic, agg_steady)});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nrevealed periods: %zu minute-scale, %zu hour-scale\n"
      "\nreading: the paper conjectures that the majority of the 37%%\n"
      "write_steady executions are actually periodic checkpointers whose\n"
      "long-open files hide the period from (DXT-less) Darshan. With the\n"
      "generator's DXT events the conjecture is measurable: the share of\n"
      "steady traces that reclassify as periodic under per-operation data\n"
      "is printed above. MOSAIC's categories are exactly as good as the\n"
      "information boundary of its input traces.\n",
      period_revealed_minute, period_revealed_hour);
  return 0;
}
