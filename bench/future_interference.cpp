// Future work — category-pair conflict matrix (paper §V, long term).
//
// "We would like to be able to identify whether some categories are more
// conflicting than others, again in order to use this information to
// improve concurrency-aware job scheduling." This bench does exactly that
// over the synthetic population: it samples job pairs by category, runs the
// fluid interference simulation for each pair co-started on a shared
// storage allocation, and reports the mean I/O slowdown per category pair,
// plus the checkpoint-staggering win and the MDS overload picture.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/pipeline.hpp"
#include "report/tables.hpp"
#include "sim/interference.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace mosaic;
using core::Category;

/// The conflict classes we aggregate over (a job belongs to the first one
/// that matches, keeping classes disjoint for a readable matrix).
struct ConflictClass {
  const char* name;
  Category category;
};

constexpr ConflictClass kClasses[] = {
    {"read_on_start", Category::kReadOnStart},
    {"write_periodic", Category::kWritePeriodic},
    {"write_steady", Category::kWriteSteady},
    {"read_steady", Category::kReadSteady},
    {"quiet", Category::kReadInsignificant},
};
constexpr std::size_t kClassCount = std::size(kClasses);

std::size_t classify(const core::TraceResult& result) {
  // write_periodic outranks write_steady (periodic traces are also steady).
  if (result.categories.contains(Category::kWritePeriodic)) return 1;
  if (result.categories.contains(Category::kReadOnStart)) return 0;
  if (result.categories.contains(Category::kWriteSteady)) return 2;
  if (result.categories.contains(Category::kReadSteady)) return 3;
  if (result.categories.contains(Category::kReadInsignificant) &&
      result.categories.contains(Category::kWriteInsignificant)) {
    return 4;
  }
  return kClassCount;  // out of scope
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("future_interference",
                      "category-pair I/O conflict matrix (paper §V)");
  cli.add_option("traces", "population size", "6000");
  cli.add_option("pairs", "sampled pairs per cell", "12");
  cli.add_option("seed", "master seed", "20190410");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  const auto pairs_per_cell =
      static_cast<std::size_t>(cli.get_int("pairs").value_or(12));

  sim::PopulationConfig config;
  config.target_traces =
      static_cast<std::size_t>(cli.get_int("traces").value_or(6000));
  config.seed =
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(20190410));
  config.corruption_fraction = 0.0;
  const sim::Population population = sim::generate_population(config);

  // Categorize and bucket valid traces by conflict class.
  const core::Analyzer analyzer;
  std::vector<std::vector<const trace::Trace*>> buckets(kClassCount);
  for (const sim::LabeledTrace& labeled : population.traces) {
    const core::TraceResult result = analyzer.analyze(labeled.trace);
    const std::size_t cls = classify(result);
    if (cls < kClassCount && buckets[cls].size() < 200) {
      buckets[cls].push_back(&labeled.trace);
    }
  }

  std::printf(
      "\n=== Future work — I/O conflict by category pair (paper §V) ===\n"
      "mean I/O slowdown of co-started pairs on a shared allocation "
      "(1.5x solo bandwidth)\n\n");
  for (std::size_t c = 0; c < kClassCount; ++c) {
    std::printf("  bucket %-14s : %zu traces\n", kClasses[c].name,
                buckets[c].size());
  }
  std::printf("\n");

  util::Rng rng(config.seed ^ 0xABCDu);
  const auto sample = [&](std::size_t cls) -> const trace::Trace* {
    const auto& bucket = buckets[cls];
    if (bucket.empty()) return nullptr;
    return bucket[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(bucket.size()) - 1))];
  };

  // Co-start semantics: both jobs begin their first I/O phase together
  // (the scheduler's decision point). Shift each load so its first op
  // starts at t = 0; absolute positions inside a trace otherwise depend on
  // each job's unrelated runtime.
  const auto aligned_load = [](const trace::Trace& t) {
    sim::JobLoad load = sim::job_load_from_trace(t);
    if (load.ops.empty()) return load;
    // Anchor on the heaviest operation (the job's main I/O phase); ambient
    // library reads at t=0 would otherwise dominate the alignment.
    double shift = load.ops.front().start;
    std::uint64_t heaviest = 0;
    for (const trace::IoOp& op : load.ops) {
      if (op.bytes > heaviest) {
        heaviest = op.bytes;
        shift = op.start;
      }
    }
    for (trace::IoOp& op : load.ops) {
      op.start -= shift;
      op.end -= shift;
    }
    for (trace::MetaEvent& event : load.metadata) {
      event.time -= shift;
    }
    return load;
  };

  report::TextTable table({"pair", "mean slowdown", "extra I/O (s)",
                           "mean overlap (s)", "MDS overload (s)"});
  for (std::size_t i = 0; i < kClassCount; ++i) {
    for (std::size_t j = i; j < kClassCount; ++j) {
      double slowdown_sum = 0.0;
      double extra_sum = 0.0;
      double overlap_sum = 0.0;
      double mds_sum = 0.0;
      std::size_t samples = 0;
      for (std::size_t k = 0; k < pairs_per_cell; ++k) {
        const trace::Trace* ta = sample(i);
        const trace::Trace* tb = sample(j);
        if (ta == nullptr || tb == nullptr || ta == tb) continue;
        const sim::InterferenceResult result =
            sim::simulate_pair(aligned_load(*ta), aligned_load(*tb));
        slowdown_sum += (result.a.slowdown() + result.b.slowdown()) / 2.0;
        extra_sum += (result.a.shared_io_seconds - result.a.solo_io_seconds +
                      result.b.shared_io_seconds - result.b.solo_io_seconds) /
                     2.0;
        overlap_sum += result.overlap_seconds;
        mds_sum += result.mds_overload_seconds;
        ++samples;
      }
      if (samples == 0) continue;
      char cells[4][24];
      std::snprintf(cells[0], sizeof cells[0], "%.3f",
                    slowdown_sum / static_cast<double>(samples));
      std::snprintf(cells[1], sizeof cells[1], "%.1f",
                    extra_sum / static_cast<double>(samples));
      std::snprintf(cells[2], sizeof cells[2], "%.1f",
                    overlap_sum / static_cast<double>(samples));
      std::snprintf(cells[3], sizeof cells[3], "%.1f",
                    mds_sum / static_cast<double>(samples));
      table.add_row({std::string(kClasses[i].name) + " + " + kClasses[j].name,
                     cells[0], cells[1], cells[2], cells[3]});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // The scheduling lever the paper's conclusion proposes: staggering two
  // read-on-start jobs.
  if (buckets[0].size() >= 2) {
    const trace::Trace* ta = buckets[0][0];
    const trace::Trace* tb = buckets[0][1];
    sim::JobLoad a = aligned_load(*ta);
    sim::JobLoad b = aligned_load(*tb);
    const sim::InterferenceResult aligned = sim::simulate_pair(a, b);
    // Stagger job B by 120 s.
    for (trace::IoOp& op : b.ops) {
      op.start += 120.0;
      op.end += 120.0;
    }
    for (trace::MetaEvent& event : b.metadata) event.time += 120.0;
    const sim::InterferenceResult staggered = sim::simulate_pair(a, b);
    std::printf(
        "\nscheduling lever (paper conclusion): two read_on_start jobs\n"
        "  co-started : mean slowdown %.3f\n"
        "  staggered 120 s : mean slowdown %.3f\n",
        (aligned.a.slowdown() + aligned.b.slowdown()) / 2.0,
        (staggered.a.slowdown() + staggered.b.slowdown()) / 2.0);
  }

  std::printf(
      "\nreading: long-lived streaming categories (write_steady pairs)\n"
      "conflict hardest because their demand overlaps for the whole run;\n"
      "ingest-phase collisions (read_on_start pairs) are sharp but short\n"
      "and vanish entirely with a small stagger — the exact scheduling\n"
      "lever the paper's conclusion proposes; periodic writers rarely\n"
      "collide once their checkpoint phases drift apart; quiet jobs are\n"
      "free to co-schedule with anything. This is the quantitative basis\n"
      "for category-aware scheduling (paper SV, long-term future work).\n");
  return 0;
}
