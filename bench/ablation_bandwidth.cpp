// Ablation B — Mean-Shift bandwidth sensitivity (paper §III-B3a).
//
// The paper sets the clustering thresholds empirically on one month of
// traces and validates by sampling. This bench makes that trade-off visible:
// it sweeps the bandwidth and reports precision/recall/F1 of periodic-write
// detection against generator ground truth.
#include <cstdio>

#include "core/pipeline.hpp"
#include "report/tables.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  util::CliParser cli("ablation_bandwidth",
                      "periodicity detection F1 vs Mean-Shift bandwidth");
  cli.add_option("traces", "population size", "6000");
  cli.add_option("seed", "master seed", "20190410");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }

  sim::PopulationConfig config;
  config.target_traces =
      static_cast<std::size_t>(cli.get_int("traces").value_or(6000));
  config.seed = static_cast<std::uint64_t>(
      cli.get_int("seed").value_or(20190410));
  const sim::Population population = sim::generate_population(config);

  // Pre-extract truth and the valid trace set once.
  std::vector<const sim::LabeledTrace*> valid;
  for (const sim::LabeledTrace& labeled : population.traces) {
    if (!labeled.corrupted) valid.push_back(&labeled);
  }

  std::printf(
      "\n=== Ablation B — Mean-Shift bandwidth vs periodic-write F1 ===\n"
      "%zu valid traces; ground truth from the generator\n\n",
      valid.size());

  // Multi-pattern probe: two visible periodic write operations with
  // distinct (period, volume) signatures in one trace. Large bandwidths
  // glue their segments into one cluster whose raw-space spread then fails
  // the CV guards — the detector goes blind exactly when it can no longer
  // tell the patterns apart.
  const auto separation_rate = [](double bandwidth) {
    core::Thresholds thresholds;
    thresholds.meanshift_bandwidth = bandwidth;
    std::size_t separated = 0;
    constexpr std::size_t kProbes = 40;
    util::Rng probe_rng(4242);
    for (std::size_t probe = 0; probe < kProbes; ++probe) {
      std::vector<core::Segment> segments;
      const double period_a = probe_rng.uniform(500.0, 700.0);
      const double period_b = probe_rng.uniform(80.0, 140.0);
      for (int i = 0; i < 9; ++i) {
        segments.push_back({0.0, period_a + probe_rng.normal(0.0, 6.0), 5.0,
                            8ull << 30});
      }
      for (int i = 0; i < 7; ++i) {
        segments.push_back({0.0, period_b + probe_rng.normal(0.0, 2.0), 0.5,
                            1ull << 26});
      }
      const core::PeriodicityResult result =
          core::detect_periodicity(segments, thresholds);
      bool found_a = false;
      bool found_b = false;
      for (const core::PeriodicGroup& group : result.groups) {
        if (std::abs(group.period_seconds - period_a) < 0.15 * period_a) {
          found_a = true;
        }
        if (std::abs(group.period_seconds - period_b) < 0.15 * period_b) {
          found_b = true;
        }
      }
      if (found_a && found_b) ++separated;
    }
    return static_cast<double>(separated) / static_cast<double>(kProbes);
  };

  report::TextTable table({"bandwidth", "precision", "recall", "F1",
                           "detected", "2-pattern separation"});
  for (const double bandwidth :
       {0.01, 0.03, 0.06, 0.12, 0.25, 0.5, 1.0, 2.0}) {
    core::Thresholds thresholds;
    thresholds.meanshift_bandwidth = bandwidth;
    const core::Analyzer analyzer(thresholds);

    std::size_t true_positive = 0, false_positive = 0, false_negative = 0;
    std::size_t detected = 0;
    for (const sim::LabeledTrace* labeled : valid) {
      const core::TraceResult result = analyzer.analyze(labeled->trace);
      const bool predicted =
          result.categories.contains(core::Category::kWritePeriodic);
      const bool truth = labeled->truth.categories.contains(
          core::Category::kWritePeriodic);
      if (predicted) ++detected;
      if (predicted && truth) ++true_positive;
      if (predicted && !truth) ++false_positive;
      if (!predicted && truth) ++false_negative;
    }
    const double precision =
        true_positive + false_positive == 0
            ? 1.0
            : static_cast<double>(true_positive) /
                  static_cast<double>(true_positive + false_positive);
    const double recall =
        true_positive + false_negative == 0
            ? 1.0
            : static_cast<double>(true_positive) /
                  static_cast<double>(true_positive + false_negative);
    const double f1 = precision + recall == 0.0
                          ? 0.0
                          : 2.0 * precision * recall / (precision + recall);
    char row[6][24];
    std::snprintf(row[0], sizeof row[0], "%.2f", bandwidth);
    std::snprintf(row[1], sizeof row[1], "%.3f", precision);
    std::snprintf(row[2], sizeof row[2], "%.3f", recall);
    std::snprintf(row[3], sizeof row[3], "%.3f", f1);
    std::snprintf(row[4], sizeof row[4], "%zu", detected);
    std::snprintf(row[5], sizeof row[5], "%.0f%%",
                  100.0 * separation_rate(bandwidth));
    table.add_row({row[0], row[1], row[2], row[3], row[4], row[5]});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nreading: tiny bandwidths shatter jittered periods into singleton\n"
      "clusters (recall loss on the population). Huge bandwidths raise\n"
      "single-pattern recall but glue distinct periodic operations into one\n"
      "cluster that the raw-space CV guards then reject — the 2-pattern\n"
      "separation column collapses. The default (0.12) reproduces the\n"
      "paper's empirical choice; the sweep also shows a 0.25-0.5 plateau\n"
      "where single-pattern recall improves before separation breaks —\n"
      "a candidate refinement the original tuning protocol (one month of\n"
      "traces, manual verification) could not easily expose.\n");
  return 0;
}
