// Reproduces paper Fig. 5: the matrix of relevant Jaccard indices between
// categories (values under 1% hidden), plus the §IV-D correlation bullets:
//   - high metadata density/spikes co-occur with read_on_start/write_on_end
//   - 95% of read-insignificant applications are write-insignificant
//   - 66% of read-on-start applications write on end
//   - 96% of periodic writers have a low busy-time ratio
#include "bench_common.hpp"

#include "report/csv.hpp"
#include "report/jaccard.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  const bench::BenchSetup setup = bench::parse_common_flags(
      "fig5_jaccard", "Jaccard correlation heatmap (paper Fig. 5)", argc, argv);
  const bench::BenchData data = bench::run_pipeline(setup);

  const report::CategoryMatrix jaccard =
      report::jaccard_matrix(data.batch.results);
  const report::CategoryMatrix conditional =
      report::conditional_matrix(data.batch.results);

  bench::print_header("Fig. 5 — Matrix of relevant Jaccard indices (>= 1%)");
  std::fputs(report::render_heatmap(jaccard, 0.01).c_str(), stdout);

  std::printf("\nstrongest Jaccard pairs:\n");
  std::fputs(report::top_pairs(jaccard, 12).c_str(), stdout);

  const auto conditional_of = [&](core::Category a, core::Category b) {
    for (std::size_t i = 0; i < conditional.categories.size(); ++i) {
      if (conditional.categories[i] != a) continue;
      for (std::size_t j = 0; j < conditional.categories.size(); ++j) {
        if (conditional.categories[j] == b) return conditional.values[i][j];
      }
    }
    return 0.0;
  };

  using core::Category;
  bench::print_header("§IV-D noteworthy correlations (paper vs measured)");
  bench::print_row(
      "P(write_insig | read_insig)", 0.95,
      conditional_of(Category::kReadInsignificant,
                     Category::kWriteInsignificant));
  bench::print_row(
      "P(write_on_end | read_on_start)", 0.66,
      conditional_of(Category::kReadOnStart, Category::kWriteOnEnd));
  {
    // 96% of periodic writes spend < 25% of the time writing.
    const double low = conditional_of(Category::kWritePeriodic,
                                      Category::kWritePeriodicLowBusyTime);
    bench::print_row("P(low_busy | write_periodic)", 0.96, low);
  }
  bench::print_row(
      "P(read_on_start | metadata_high_density)", -0.0,
      conditional_of(Category::kMetadataHighDensity, Category::kReadOnStart));
  std::printf(
      "  (paper gives the last correlation qualitatively: dense-metadata\n"
      "   applications are more likely to read on start / write on end)\n");

  if (!setup.csv_path.empty()) {
    const auto status = report::write_text_to_file(
        report::matrix_to_csv(jaccard), setup.csv_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
      return 1;
    }
    std::printf("\nJaccard matrix CSV written to %s\n",
                setup.csv_path.c_str());
  }

  bench::print_footer(data);
  return 0;
}
