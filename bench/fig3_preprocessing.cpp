// Reproduces paper Fig. 3: the pre-processing funnel on one year of Blue
// Waters traces — 462,502 input traces, 32% evicted as corrupted, 8% of the
// valid remainder unique, 24,606 retained for categorization.
#include "bench_common.hpp"

#include "report/tables.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  const bench::BenchSetup setup = bench::parse_common_flags(
      "fig3_preprocessing", "pre-processing funnel (paper Fig. 3)", argc, argv);
  const bench::BenchData data = bench::run_pipeline(setup);
  const core::PreprocessStats& stats = data.batch.preprocess;

  bench::print_header("Fig. 3 — Pre-processing of one year of I/O traces");

  report::TextTable table({"stage", "paper (abs)", "paper (frac)",
                           "measured (abs)", "measured (frac)"});
  const double input = static_cast<double>(stats.input_traces);
  const double corrupted_frac = static_cast<double>(stats.corrupted) / input;
  const double unique_frac = static_cast<double>(stats.unique_applications) /
                             static_cast<double>(stats.valid);

  table.add_row({"input traces", "462502", "100%",
                 std::to_string(stats.input_traces), "100%"});
  table.add_row({"corrupted (evicted)", "~148000", "32%",
                 std::to_string(stats.corrupted),
                 util::format_percent(corrupted_frac)});
  table.add_row({"valid traces", "~314500", "68%",
                 std::to_string(stats.valid),
                 util::format_percent(1.0 - corrupted_frac)});
  table.add_row({"unique applications (retained)", "24606", "8% of valid",
                 std::to_string(stats.retained),
                 util::format_percent(unique_frac) + " of valid"});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\ncorruption breakdown (eviction reasons):\n");
  for (const auto& [kind, count] : stats.corruption_breakdown) {
    std::printf("  %-24s %8zu (%s of corrupted)\n", kind.c_str(), count,
                util::format_percent(static_cast<double>(count) /
                                     static_cast<double>(stats.corrupted))
                    .c_str());
  }

  bench::print_footer(data);
  return 0;
}
