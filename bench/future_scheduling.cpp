// Future work — category-aware co-scheduling (the paper's motivation).
//
// The conclusion of the paper: "two jobs categorized as reading large
// volumes of data at the start of execution could be scheduled so as not to
// overlap". This bench closes that loop end to end: a queue of jobs is
// paired onto shared storage allocations by three schedulers —
//
//   fifo      : pair jobs in arrival order (category-blind)
//   random    : random pairing (category-blind baseline)
//   category  : greedy pairing that avoids conflicting category pairs,
//               and staggers the start of same-phase partners
//
// — and each pairing's aggregate I/O slowdown is measured with the fluid
// interference simulation. The categories come from MOSAIC itself, so this
// is precisely the scheduling loop the paper proposes.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/pipeline.hpp"
#include "report/tables.hpp"
#include "sim/interference.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace mosaic;
using core::Category;

struct QueuedJob {
  const trace::Trace* trace = nullptr;
  core::CategorySet categories;
  sim::JobLoad load;
};

/// Predicted conflict score of a pair, from categories alone (what a
/// scheduler would know before running the jobs).
double predicted_conflict(const QueuedJob& a, const QueuedJob& b) {
  const auto both = [&](Category category) {
    return a.categories.contains(category) && b.categories.contains(category);
  };
  double score = 0.0;
  if (both(Category::kWriteSteady)) score += 3.0;
  if (both(Category::kReadSteady)) score += 2.0;
  if ((a.categories.contains(Category::kWriteSteady) &&
       b.categories.contains(Category::kReadSteady)) ||
      (b.categories.contains(Category::kWriteSteady) &&
       a.categories.contains(Category::kReadSteady))) {
    score += 2.0;
  }
  if (both(Category::kReadOnStart)) score += 1.5;
  if (both(Category::kWritePeriodic)) score += 1.0;
  const auto meta_heavy = [](const QueuedJob& job) {
    return job.categories.contains(Category::kMetadataHighDensity);
  };
  if (meta_heavy(a) && meta_heavy(b)) score += 2.0;
  return score;
}

/// Aligns a load's heaviest op at t = 0 (co-start semantics).
sim::JobLoad aligned(const sim::JobLoad& raw) {
  sim::JobLoad load = raw;
  if (load.ops.empty()) return load;
  double shift = load.ops.front().start;
  std::uint64_t heaviest = 0;
  for (const trace::IoOp& op : load.ops) {
    if (op.bytes > heaviest) {
      heaviest = op.bytes;
      shift = op.start;
    }
  }
  for (trace::IoOp& op : load.ops) {
    op.start -= shift;
    op.end -= shift;
  }
  for (trace::MetaEvent& event : load.metadata) event.time -= shift;
  return load;
}

/// Shifts a load by `offset` seconds.
void stagger(sim::JobLoad& load, double offset) {
  for (trace::IoOp& op : load.ops) {
    op.start += offset;
    op.end += offset;
  }
  for (trace::MetaEvent& event : load.metadata) event.time += offset;
}

/// Total extra I/O seconds caused by co-scheduling this pairing.
double evaluate_pairing(const std::vector<QueuedJob>& jobs,
                        const std::vector<std::pair<std::size_t, std::size_t>>&
                            pairs,
                        bool stagger_same_phase) {
  double extra = 0.0;
  for (const auto& [i, j] : pairs) {
    sim::JobLoad a = aligned(jobs[i].load);
    sim::JobLoad b = aligned(jobs[j].load);
    if (stagger_same_phase &&
        jobs[i].categories.contains(Category::kReadOnStart) &&
        jobs[j].categories.contains(Category::kReadOnStart)) {
      // The paper's lever: do not overlap the two ingest phases.
      stagger(b, 120.0);
    }
    const sim::InterferenceResult result = sim::simulate_pair(a, b);
    extra += (result.a.shared_io_seconds - result.a.solo_io_seconds) +
             (result.b.shared_io_seconds - result.b.solo_io_seconds);
  }
  return extra;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("future_scheduling",
                      "category-aware co-scheduling vs blind pairing");
  cli.add_option("traces", "population size", "4000");
  cli.add_option("queue", "jobs in the scheduling queue", "32");
  cli.add_option("seed", "master seed", "20190410");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  const auto queue_size = static_cast<std::size_t>(
      std::max<std::int64_t>(4, cli.get_int("queue").value_or(32)) / 2 * 2);

  sim::PopulationConfig config;
  config.target_traces =
      static_cast<std::size_t>(cli.get_int("traces").value_or(4000));
  config.seed =
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(20190410));
  config.corruption_fraction = 0.0;
  const sim::Population population = sim::generate_population(config);

  const core::Analyzer analyzer;
  util::Rng rng(config.seed ^ 0xFEEDu);
  // Two queue compositions:
  //  - mixed: active jobs plus some quiet filler (a typical backfill window;
  //    the scheduler can hide active jobs behind quiet partners);
  //  - saturated: active jobs only (conflict is unavoidable, the scheduler
  //    can only choose the least bad pairings).
  const auto build_queue = [&](bool active_only) {
    std::vector<QueuedJob> queue;
    for (const sim::LabeledTrace& labeled : population.traces) {
      if (queue.size() >= queue_size) break;
      const core::TraceResult result = analyzer.analyze(labeled.trace);
      const bool active =
          !result.categories.contains(Category::kReadInsignificant) ||
          !result.categories.contains(Category::kWriteInsignificant);
      if (active_only && !active) continue;
      if (!active_only && !active && !rng.chance(0.15)) continue;
      QueuedJob job;
      job.trace = &labeled.trace;
      job.categories = result.categories;
      job.load = sim::job_load_from_trace(labeled.trace);
      queue.push_back(std::move(job));
    }
    if (queue.size() % 2 == 1) queue.pop_back();
    return queue;
  };

  const auto run_scenario = [&](const char* name,
                                const std::vector<QueuedJob>& jobs) {
    if (jobs.size() < 4) {
      std::printf("%s: queue too small, skipped\n", name);
      return;
    }
    // FIFO pairing: adjacent arrivals.
    std::vector<std::pair<std::size_t, std::size_t>> fifo_pairs;
    for (std::size_t i = 0; i + 1 < jobs.size(); i += 2) {
      fifo_pairs.emplace_back(i, i + 1);
    }

    // Random pairing: mean over shuffles.
    double random_extra = 0.0;
    constexpr int kShuffles = 10;
    {
      std::vector<std::size_t> order(jobs.size());
      std::iota(order.begin(), order.end(), 0u);
      for (int s = 0; s < kShuffles; ++s) {
        rng.shuffle(order);
        std::vector<std::pair<std::size_t, std::size_t>> pairs;
        for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
          pairs.emplace_back(order[i], order[i + 1]);
        }
        random_extra += evaluate_pairing(jobs, pairs, false);
      }
      random_extra /= kShuffles;
    }

    // Category-aware greedy matching: take the next unmatched job, give it
    // its least-conflicting partner (by predicted category conflict).
    std::vector<std::pair<std::size_t, std::size_t>> aware_pairs;
    {
      std::vector<bool> matched(jobs.size(), false);
      for (std::size_t round = 0; round < jobs.size() / 2; ++round) {
        std::size_t first = jobs.size();
        for (std::size_t i = 0; i < jobs.size(); ++i) {
          if (!matched[i]) {
            first = i;
            break;
          }
        }
        if (first == jobs.size()) break;
        matched[first] = true;
        std::size_t best = jobs.size();
        double best_score = 1e18;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
          if (matched[j]) continue;
          const double score = predicted_conflict(jobs[first], jobs[j]);
          if (score < best_score) {
            best_score = score;
            best = j;
          }
        }
        if (best == jobs.size()) break;
        matched[best] = true;
        aware_pairs.emplace_back(first, best);
      }
    }

    const double fifo_extra = evaluate_pairing(jobs, fifo_pairs, false);
    const double aware_extra = evaluate_pairing(jobs, aware_pairs, true);

    std::printf("%s queue (%zu jobs):\n", name, jobs.size());
    report::TextTable table(
        {"scheduler", "aggregate extra I/O (s)", "vs FIFO"});
    const auto row = [&](const char* scheduler, double extra) {
      char cells[2][24];
      std::snprintf(cells[0], sizeof cells[0], "%.1f", extra);
      std::snprintf(cells[1], sizeof cells[1], "%+.0f%%",
                    fifo_extra > 0.0
                        ? 100.0 * (extra - fifo_extra) / fifo_extra
                        : 0.0);
      table.add_row({scheduler, cells[0], cells[1]});
    };
    row("fifo (category-blind)", fifo_extra);
    row("random (category-blind)", random_extra);
    row("category-aware greedy", aware_extra);
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  };

  std::printf(
      "\n=== Future work — category-aware co-scheduling (paper's motivation) "
      "===\n\n");
  run_scenario("mixed backfill", build_queue(false));
  run_scenario("saturated (active jobs only)", build_queue(true));

  std::printf(
      "\nreading: the category-aware scheduler separates steady streams,\n"
      "avoids metadata-dense pairs, and staggers paired ingest phases —\n"
      "using nothing but MOSAIC's categories, exactly the information the\n"
      "paper argues a scheduler should consume. The reduction in aggregate\n"
      "extra I/O time is the end-to-end payoff of the categorization.\n");
  return 0;
}
