// Reproduces paper Table II: detection of periodic write operations.
//
//   Execution   | Non-Periodic | Periodic (Min / Hour)
//   Single run  | 98%          | 2%
//   All runs    | 92%          | 8%  (Min 5% / Hour 3%)
#include "bench_common.hpp"

#include "report/tables.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  const bench::BenchSetup setup = bench::parse_common_flags(
      "table2_periodicity", "periodic write detection (paper Table II)", argc,
      argv);
  const bench::BenchData data = bench::run_pipeline(setup);

  const report::CategoryDistribution distribution =
      report::aggregate_categories(data.batch);
  const report::PeriodicBreakdown breakdown =
      report::periodic_breakdown(data.batch, trace::OpKind::kWrite);

  const double single_periodic =
      distribution.single_fraction(core::Category::kWritePeriodic);
  const double weighted_periodic =
      distribution.weighted_fraction(core::Category::kWritePeriodic);

  bench::print_header("Table II — Detection of periodic write operations");
  report::TextTable table(
      {"execution", "non-periodic", "periodic", "min-scale", "hour-scale"});
  const auto pct = [](double v) { return util::format_percent(v); };

  const double run_count = distribution.run_count;
  const double trace_count = static_cast<double>(distribution.trace_count);
  const auto magnitude_single = [&](core::PeriodMagnitude m) {
    return static_cast<double>(
               breakdown.single[static_cast<std::size_t>(m)]) /
           trace_count;
  };
  const auto magnitude_weighted = [&](core::PeriodMagnitude m) {
    return breakdown.weighted[static_cast<std::size_t>(m)] / run_count;
  };

  table.add_row({"single run (paper)", "98%", "2%", "1%", "1%"});
  table.add_row({"single run (measured)", pct(1.0 - single_periodic),
                 pct(single_periodic),
                 pct(magnitude_single(core::PeriodMagnitude::kMinute)),
                 pct(magnitude_single(core::PeriodMagnitude::kHour))});
  table.add_row({"all runs (paper)", "92%", "8%", "5%", "3%"});
  table.add_row({"all runs (measured)", pct(1.0 - weighted_periodic),
                 pct(weighted_periodic),
                 pct(magnitude_weighted(core::PeriodMagnitude::kMinute)),
                 pct(magnitude_weighted(core::PeriodMagnitude::kHour))});
  std::fputs(table.render().c_str(), stdout);

  // Periodic reads: the paper reports <2% of executions, second..minute scale.
  const double read_periodic =
      distribution.weighted_fraction(core::Category::kReadPeriodic);
  std::printf("\nperiodic reads (paper: <2%% of executions): %s\n",
              util::format_percent(read_periodic).c_str());

  bench::print_footer(data);
  return 0;
}
