// Reproduces paper Table III: detection of temporality.
//
//          |            | Insignificant | On start | Steady | Others
//   Read   | Single run | 85%           | 9%       | 2%     | 4%
//          | All runs   | 27%           | 38%      | 30%    | 5%
//          |            | Insignificant | On end   | Steady | Others
//   Write  | Single run | 87%           | 8%       | 3%     | 2%
//          | All runs   | 47%           | 14%      | 37%    | 2%
#include "bench_common.hpp"

#include "report/csv.hpp"
#include "report/tables.hpp"

namespace {

using mosaic::core::Category;

struct Row {
  double insignificant, lead, steady, others;
};

Row measure(const mosaic::report::CategoryDistribution& distribution,
            bool weighted, bool read) {
  const auto frac = [&](Category category) {
    return weighted ? distribution.weighted_fraction(category)
                    : distribution.single_fraction(category);
  };
  Row row{};
  if (read) {
    row.insignificant = frac(Category::kReadInsignificant);
    row.lead = frac(Category::kReadOnStart);
    row.steady = frac(Category::kReadSteady);
    row.others = frac(Category::kReadOnEnd) + frac(Category::kReadAfterStart) +
                 frac(Category::kReadBeforeEnd) +
                 frac(Category::kReadAfterStartBeforeEnd) +
                 frac(Category::kReadUnclassified);
  } else {
    row.insignificant = frac(Category::kWriteInsignificant);
    row.lead = frac(Category::kWriteOnEnd);
    row.steady = frac(Category::kWriteSteady);
    row.others = frac(Category::kWriteOnStart) +
                 frac(Category::kWriteAfterStart) +
                 frac(Category::kWriteBeforeEnd) +
                 frac(Category::kWriteAfterStartBeforeEnd) +
                 frac(Category::kWriteUnclassified);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mosaic;
  const bench::BenchSetup setup = bench::parse_common_flags(
      "table3_temporality", "temporality detection (paper Table III)", argc,
      argv);
  const bench::BenchData data = bench::run_pipeline(setup);
  const report::CategoryDistribution distribution =
      report::aggregate_categories(data.batch);

  const auto pct = [](double v) { return util::format_percent(v); };

  bench::print_header("Table III — Detection of temporality (READ)");
  {
    report::TextTable table(
        {"studied distrib.", "insignificant", "on_start", "steady", "others"});
    const Row single = measure(distribution, false, true);
    const Row all = measure(distribution, true, true);
    table.add_row({"single run (paper)", "85%", "9%", "2%", "4%"});
    table.add_row({"single run (measured)", pct(single.insignificant),
                   pct(single.lead), pct(single.steady), pct(single.others)});
    table.add_row({"all runs (paper)", "27%", "38%", "30%", "5%"});
    table.add_row({"all runs (measured)", pct(all.insignificant),
                   pct(all.lead), pct(all.steady), pct(all.others)});
    std::fputs(table.render().c_str(), stdout);
  }

  bench::print_header("Table III — Detection of temporality (WRITE)");
  {
    report::TextTable table(
        {"studied distrib.", "insignificant", "on_end", "steady", "others"});
    const Row single = measure(distribution, false, false);
    const Row all = measure(distribution, true, false);
    table.add_row({"single run (paper)", "87%", "8%", "3%", "2%"});
    table.add_row({"single run (measured)", pct(single.insignificant),
                   pct(single.lead), pct(single.steady), pct(single.others)});
    table.add_row({"all runs (paper)", "47%", "14%", "37%", "2%"});
    table.add_row({"all runs (measured)", pct(all.insignificant),
                   pct(all.lead), pct(all.steady), pct(all.others)});
    std::fputs(table.render().c_str(), stdout);
  }

  // The paper's §IV-B headline: 95% of executions are described by 6
  // categories (3 read + 3 write).
  {
    const Row read_all = measure(distribution, true, true);
    const Row write_all = measure(distribution, true, false);
    std::printf(
        "\nsix-category coverage (paper: ~95%%): read %.1f%% | write %.1f%%\n",
        (read_all.insignificant + read_all.lead + read_all.steady) * 100.0,
        (write_all.insignificant + write_all.lead + write_all.steady) * 100.0);
  }

  if (!setup.csv_path.empty()) {
    const auto status = report::write_text_to_file(
        report::distribution_to_csv(distribution), setup.csv_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
      return 1;
    }
    std::printf("\ndistribution CSV written to %s\n", setup.csv_path.c_str());
  }

  bench::print_footer(data);
  return 0;
}
