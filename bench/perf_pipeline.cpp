// §IV-E performance: the paper processes 462,502 traces in 165 minutes on a
// 64-core EPYC (memory-bound, ~300 GB RSS). These google-benchmark
// microbenches time every pipeline stage and the end-to-end trace rate so
// the throughput story (traces/second, stage costs, thread scaling) can be
// compared in shape.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "core/merge.hpp"
#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "darshan/binary_format.hpp"
#include "darshan/text_format.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/provenance.hpp"
#include "obs/span.hpp"
#include "sim/population.hpp"
#include "util/fs.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace mosaic;

/// Shared small population so fixture cost is paid once.
const sim::Population& population() {
  static const sim::Population value = [] {
    sim::PopulationConfig config;
    config.target_traces = 4000;
    config.seed = 7;
    return sim::generate_population(config);
  }();
  return value;
}

/// A representative heavyweight trace (checkpointing app).
const trace::Trace& checkpoint_trace() {
  static const trace::Trace value = [] {
    for (const sim::LabeledTrace& labeled : population().traces) {
      if (!labeled.corrupted && labeled.archetype == "ckpt_minute") {
        return labeled.trace;
      }
    }
    return population().traces.front().trace;
  }();
  return value;
}

void BM_Validate(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::validate(t));
  }
}
BENCHMARK(BM_Validate);

void BM_ExtractOps(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::extract_ops(t, trace::OpKind::kWrite));
  }
}
BENCHMARK(BM_ExtractOps);

void BM_MergeOps(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto ops = trace::extract_ops(t, trace::OpKind::kWrite);
  for (auto _ : state) {
    auto copy = ops;
    benchmark::DoNotOptimize(
        core::merge_ops(std::move(copy), t.meta.run_time));
  }
}
BENCHMARK(BM_MergeOps);

void BM_Segmentation(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto merged = core::merge_ops(
      trace::extract_ops(t, trace::OpKind::kWrite), t.meta.run_time);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::segment_ops(merged));
  }
}
BENCHMARK(BM_Segmentation);

void BM_PeriodicityDetection(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto segments = core::segment_ops(core::merge_ops(
      trace::extract_ops(t, trace::OpKind::kWrite), t.meta.run_time));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_periodicity(segments));
  }
}
BENCHMARK(BM_PeriodicityDetection);

void BM_TemporalityClassification(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto merged = core::merge_ops(
      trace::extract_ops(t, trace::OpKind::kWrite), t.meta.run_time);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::classify_temporality(merged, t.meta.run_time));
  }
}
BENCHMARK(BM_TemporalityClassification);

void BM_MetadataClassification(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto timeline = trace::metadata_timeline(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::classify_metadata(
        timeline, t.meta.run_time, t.meta.nprocs));
  }
}
BENCHMARK(BM_MetadataClassification);

void BM_AnalyzeSingleTrace(benchmark::State& state) {
  const core::Analyzer analyzer;
  const trace::Trace& t = checkpoint_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(t));
  }
}
BENCHMARK(BM_AnalyzeSingleTrace);

/// End-to-end population throughput; counter reports traces/second, the
/// paper's headline unit (462k traces / 165 min ~ 47 traces/s/64 cores).
void BM_PopulationPipeline(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::vector<trace::Trace> traces;
  for (const sim::LabeledTrace& labeled : population().traces) {
    traces.push_back(labeled.trace);
  }
  parallel::ThreadPool pool(threads);
  for (auto _ : state) {
    auto copy = traces;
    benchmark::DoNotOptimize(
        core::analyze_population(std::move(copy), {}, &pool));
  }
  state.counters["traces/s"] = benchmark::Counter(
      static_cast<double>(traces.size()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PopulationPipeline)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MbtDecode(benchmark::State& state) {
  const auto bytes = darshan::to_mbt(checkpoint_trace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(darshan::parse_mbt(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_MbtDecode);

void BM_DarshanTextParse(benchmark::State& state) {
  const std::string text = darshan::to_text(checkpoint_trace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(darshan::parse_text(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_DarshanTextParse);

void BM_TraceGeneration(benchmark::State& state) {
  const sim::TraceGenerator generator;
  sim::AppSpec spec;
  spec.name = "bench";
  spec.runtime_median = 3600.0;
  sim::PeriodicSpec periodic;
  periodic.period_seconds = 300.0;
  spec.periodic.push_back(periodic);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generator.generate(spec, {}, {.job_id = 1}, rng));
  }
}
BENCHMARK(BM_TraceGeneration);

/// Times `passes` full analyses of `traces` (copies are re-analyzed each
/// call so repetitions are comparable) and returns total wall seconds.
/// Multiple passes amortize timer granularity: one pass over the bench
/// population finishes in ~1 ms, too short for a stable enabled/disabled
/// ratio.
double time_population_analysis(const std::vector<trace::Trace>& traces,
                                parallel::ThreadPool& pool, int passes = 1) {
  const util::Stopwatch watch;
  for (int pass = 0; pass < passes; ++pass) {
    auto copy = traces;
    benchmark::DoNotOptimize(
        core::analyze_population(std::move(copy), {}, &pool));
  }
  return watch.elapsed_seconds();
}

/// Measures the cost of the full instrumentation surface: the same
/// population analyzed with metrics + span tracing + sampled provenance
/// enabled versus everything disabled. The budget is <5% overhead
/// enabled-vs-disabled.
struct OverheadResult {
  double enabled_seconds = 0.0;
  double disabled_seconds = 0.0;
  double overhead_pct = 0.0;
  std::size_t traces = 0;
  std::uint64_t provenance_sample = 0;  ///< 1-in-N rate used when enabled
};

OverheadResult measure_instrumentation_overhead() {
  OverheadResult result;
  std::vector<trace::Trace> traces;
  for (const sim::LabeledTrace& labeled : population().traces) {
    if (!labeled.corrupted) traces.push_back(labeled.trace);
    if (traces.size() >= 1000) break;
  }
  result.traces = traces.size();
  // One worker: the instrumentation cost is per-trace, so a single-threaded
  // run measures the same relative overhead without the scheduling jitter a
  // full-width pool picks up on shared CI machines.
  parallel::ThreadPool pool(1);

  // Provenance sampling rate matching a realistic batch-audit setting.
  constexpr std::uint64_t kProvenanceSample = 8;
  result.provenance_sample = kProvenanceSample;
  constexpr int kReps = 9;
  constexpr int kPasses = 32;
  double enabled = std::numeric_limits<double>::infinity();
  double disabled = std::numeric_limits<double>::infinity();
  std::vector<double> ratios;
  ratios.reserve(kReps);
  // Warm-up pass so neither mode pays first-touch costs.
  (void)time_population_analysis(traces, pool);
  auto& tracer = obs::SpanTracer::global();
  auto& journal = obs::ProvenanceJournal::global();
  const auto measure_enabled = [&] {
    obs::set_metrics_enabled(true);
    tracer.enable();
    journal.enable(kProvenanceSample);
    const double seconds = time_population_analysis(traces, pool, kPasses);
    tracer.disable();
    journal.disable();
    journal.reset();  // keep the buffered records bounded across reps
    enabled = std::min(enabled, seconds);
    return seconds;
  };
  const auto measure_disabled = [&] {
    obs::set_metrics_enabled(false);
    const double seconds = time_population_analysis(traces, pool, kPasses);
    disabled = std::min(disabled, seconds);
    return seconds;
  };
  for (int rep = 0; rep < kReps; ++rep) {
    // Each rep measures both modes back-to-back (alternating order) so they
    // share one noise regime; the paired ratio cancels sustained drift that
    // a global min-enabled / min-disabled comparison would not.
    double rep_enabled = 0.0;
    double rep_disabled = 0.0;
    if (rep % 2 == 0) {
      rep_enabled = measure_enabled();
      rep_disabled = measure_disabled();
    } else {
      rep_disabled = measure_disabled();
      rep_enabled = measure_enabled();
    }
    if (rep_disabled > 0.0) ratios.push_back(rep_enabled / rep_disabled);
  }
  obs::set_metrics_enabled(true);
  // Report per-pass seconds so traces_per_second stays trace-count/seconds.
  result.enabled_seconds = enabled / kPasses;
  result.disabled_seconds = disabled / kPasses;
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio =
      ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  result.overhead_pct = 100.0 * (median_ratio - 1.0);
  return result;
}

/// Mean latency of a stage histogram in the snapshot, or 0 if never hit.
double stage_mean_ms(const obs::Snapshot& snapshot, std::string_view name) {
  for (const obs::HistogramSample& sample : snapshot.histograms) {
    if (sample.name == name && sample.count > 0) {
      return sample.sum / static_cast<double>(sample.count);
    }
  }
  return 0.0;
}

std::uint64_t counter_value(const obs::Snapshot& snapshot,
                            std::string_view name) {
  for (const obs::CounterSample& sample : snapshot.counters) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

/// Machine-readable companion to the human benchmark table: throughput,
/// per-stage means scraped from the metrics registry, and the
/// instrumentation overhead experiment.
void write_bench_json(const OverheadResult& overhead,
                      const std::string& path) {
  const obs::Snapshot snapshot = obs::Registry::global().snapshot();

  json::Object out;
  out.set("benchmark", "perf_pipeline");
  out.set("traces", overhead.traces);
  out.set("traces_per_second",
          overhead.enabled_seconds > 0.0
              ? static_cast<double>(overhead.traces) / overhead.enabled_seconds
              : 0.0);
  out.set("traces_analyzed_total",
          counter_value(snapshot, obs::names::kTracesAnalyzed));

  json::Object stages;
  stages.set("merge", stage_mean_ms(snapshot, obs::names::kStageMergeMs));
  stages.set("segment", stage_mean_ms(snapshot, obs::names::kStageSegmentMs));
  stages.set("periodicity",
             stage_mean_ms(snapshot, obs::names::kStagePeriodicityMs));
  stages.set("temporality",
             stage_mean_ms(snapshot, obs::names::kStageTemporalityMs));
  stages.set("metadata", stage_mean_ms(snapshot, obs::names::kStageMetadataMs));
  stages.set("categorize",
             stage_mean_ms(snapshot, obs::names::kStageCategorizeMs));
  stages.set("analyze", stage_mean_ms(snapshot, obs::names::kStageAnalyzeMs));
  out.set("stage_mean_ms", std::move(stages));

  json::Object instr;
  instr.set("enabled_seconds", overhead.enabled_seconds);
  instr.set("disabled_seconds", overhead.disabled_seconds);
  instr.set("overhead_pct", overhead.overhead_pct);
  instr.set("surface", "metrics+spans+provenance");
  instr.set("provenance_sample", overhead.provenance_sample);
  out.set("instrumentation", std::move(instr));

  if (const auto status =
          util::write_file_atomic(path, json::serialize(out) + "\n");
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
  } else {
    std::printf("bench results written to %s (overhead %.2f%%)\n",
                path.c_str(), overhead.overhead_pct);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --overhead-only skips the google-benchmark suite: CI uses it to check
  // the instrumentation budget without paying for the microbenches.
  bool overhead_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overhead-only") == 0) {
      overhead_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!overhead_only) benchmark::RunSpecifiedBenchmarks();
  const OverheadResult overhead = measure_instrumentation_overhead();
  write_bench_json(overhead, "BENCH_perf_pipeline.json");
  benchmark::Shutdown();
  return 0;
}
