// §IV-E performance: the paper processes 462,502 traces in 165 minutes on a
// 64-core EPYC (memory-bound, ~300 GB RSS). These google-benchmark
// microbenches time every pipeline stage and the end-to-end trace rate so
// the throughput story (traces/second, stage costs, thread scaling) can be
// compared in shape.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <span>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "core/merge.hpp"
#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "darshan/binary_format.hpp"
#include "darshan/text_format.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance.hpp"
#include "obs/span.hpp"
#include "sim/population.hpp"
#include "util/fs.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"

namespace {

/// Heap-allocation accounting. Toggled around the measured loop only, so the
/// count excludes fixture setup; relaxed atomics keep the disabled cost to
/// one load per allocation.
std::atomic<bool> g_count_allocations{false};
std::atomic<std::uint64_t> g_allocation_count{0};

inline void note_allocation() noexcept {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  // Feed the sampling profiler's allocation-site attribution too, so a
  // profiled bench run shows which stage frames allocate (DESIGN.md §16).
  mosaic::obs::profiler_note_allocation();
}

}  // namespace

#if defined(MOSAIC_BENCH_COUNT_ALLOCS)
// Bench-only global allocation hook (see bench/CMakeLists.txt): every form
// forwards to malloc/free so the replacement set stays consistent, and the
// throwing forms bump the counter when accounting is armed. This TU is only
// linked into the perf_pipeline binary — product code never sees the hook.
void* operator new(std::size_t size) {
  note_allocation();
  if (size == 0) size = 1;
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  note_allocation();
  const auto alignment = static_cast<std::size_t>(align);
  if (size == 0) size = alignment;
  void* ptr = nullptr;
  if (posix_memalign(&ptr, alignment, size) != 0) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
#endif  // MOSAIC_BENCH_COUNT_ALLOCS

namespace {

using namespace mosaic;

/// Shared small population so fixture cost is paid once.
const sim::Population& population() {
  static const sim::Population value = [] {
    sim::PopulationConfig config;
    config.target_traces = 4000;
    config.seed = 7;
    return sim::generate_population(config);
  }();
  return value;
}

/// A representative heavyweight trace (checkpointing app).
const trace::Trace& checkpoint_trace() {
  static const trace::Trace value = [] {
    for (const sim::LabeledTrace& labeled : population().traces) {
      if (!labeled.corrupted && labeled.archetype == "ckpt_minute") {
        return labeled.trace;
      }
    }
    return population().traces.front().trace;
  }();
  return value;
}

void BM_Validate(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::validate(t));
  }
}
BENCHMARK(BM_Validate);

void BM_ExtractOps(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::extract_ops(t, trace::OpKind::kWrite));
  }
}
BENCHMARK(BM_ExtractOps);

void BM_MergeOps(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto ops = trace::extract_ops(t, trace::OpKind::kWrite);
  for (auto _ : state) {
    auto copy = ops;
    benchmark::DoNotOptimize(
        core::merge_ops(std::move(copy), t.meta.run_time));
  }
}
BENCHMARK(BM_MergeOps);

void BM_Segmentation(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto merged = core::merge_ops(
      trace::extract_ops(t, trace::OpKind::kWrite), t.meta.run_time);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::segment_ops(merged));
  }
}
BENCHMARK(BM_Segmentation);

void BM_PeriodicityDetection(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto segments = core::segment_ops(core::merge_ops(
      trace::extract_ops(t, trace::OpKind::kWrite), t.meta.run_time));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_periodicity(segments));
  }
}
BENCHMARK(BM_PeriodicityDetection);

void BM_TemporalityClassification(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto merged = core::merge_ops(
      trace::extract_ops(t, trace::OpKind::kWrite), t.meta.run_time);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::classify_temporality(merged, t.meta.run_time));
  }
}
BENCHMARK(BM_TemporalityClassification);

void BM_MetadataClassification(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto timeline = trace::metadata_timeline(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::classify_metadata(
        timeline, t.meta.run_time, t.meta.nprocs));
  }
}
BENCHMARK(BM_MetadataClassification);

void BM_AnalyzeSingleTrace(benchmark::State& state) {
  const core::Analyzer analyzer;
  const trace::Trace& t = checkpoint_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(t));
  }
}
BENCHMARK(BM_AnalyzeSingleTrace);

/// End-to-end population throughput; counter reports traces/second, the
/// paper's headline unit (462k traces / 165 min ~ 47 traces/s/64 cores).
void BM_PopulationPipeline(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::vector<trace::Trace> traces;
  for (const sim::LabeledTrace& labeled : population().traces) {
    traces.push_back(labeled.trace);
  }
  parallel::ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze_population(
        std::span<const trace::Trace>(traces), {}, &pool));
  }
  state.counters["traces/s"] = benchmark::Counter(
      static_cast<double>(traces.size()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PopulationPipeline)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MbtDecode(benchmark::State& state) {
  const auto bytes = darshan::to_mbt(checkpoint_trace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(darshan::parse_mbt(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_MbtDecode);

void BM_DarshanTextParse(benchmark::State& state) {
  const std::string text = darshan::to_text(checkpoint_trace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(darshan::parse_text(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_DarshanTextParse);

void BM_TraceGeneration(benchmark::State& state) {
  const sim::TraceGenerator generator;
  sim::AppSpec spec;
  spec.name = "bench";
  spec.runtime_median = 3600.0;
  sim::PeriodicSpec periodic;
  periodic.period_seconds = 300.0;
  spec.periodic.push_back(periodic);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generator.generate(spec, {}, {.job_id = 1}, rng));
  }
}
BENCHMARK(BM_TraceGeneration);

/// Timing for one block of repeated full analyses of `traces` (the
/// non-consuming overload re-analyzes the same population each pass, so
/// repetitions are comparable without a per-pass deep copy of the corpus).
struct BlockTiming {
  double total_seconds = 0.0;  ///< wall seconds for the whole block
  double best_pass_seconds = 0.0;  ///< fastest single pass in the block
};

/// Runs `passes` analyses, timing the block and each individual pass. The
/// block total feeds the drift-cancelling paired ratio; the per-pass
/// minimum is the noise-robust estimator — a pass takes well under a
/// millisecond, so across a few thousand passes some land inside clean
/// scheduling windows even when CPU steal arrives in multi-second bursts,
/// and the fastest pass in each mode converges on that mode's intrinsic
/// cost. Per-pass timing adds two clock reads (~50 ns) per ~1 ms pass.
BlockTiming time_population_analysis(const std::vector<trace::Trace>& traces,
                                     parallel::ThreadPool& pool,
                                     int passes = 1) {
  BlockTiming timing;
  timing.best_pass_seconds = std::numeric_limits<double>::infinity();
  const util::Stopwatch watch;
  for (int pass = 0; pass < passes; ++pass) {
    const util::Stopwatch pass_watch;
    benchmark::DoNotOptimize(core::analyze_population(
        std::span<const trace::Trace>(traces), {}, &pool));
    timing.best_pass_seconds =
        std::min(timing.best_pass_seconds, pass_watch.elapsed_seconds());
  }
  timing.total_seconds = watch.elapsed_seconds();
  return timing;
}

/// Measures the cost of the full instrumentation surface: the same
/// population analyzed with metrics + span tracing + sampled provenance
/// enabled versus everything disabled. The budget is <10% overhead
/// enabled-vs-disabled — recalibrated from <5% after the SoA/AVX2 kernel
/// pass shrank the measured pass ~6x: the surface still costs ~10 us per
/// 1000-trace pass in absolute terms, but the denominator is now a much
/// faster pipeline.
struct OverheadResult {
  double enabled_seconds = 0.0;
  double disabled_seconds = 0.0;
  double overhead_pct = 0.0;         ///< min-enabled vs min-disabled ratio
  double paired_median_pct = 0.0;    ///< median of per-rep paired ratios
  std::size_t traces = 0;
  std::uint64_t provenance_sample = 0;  ///< 1-in-N rate used when enabled
};

OverheadResult measure_instrumentation_overhead() {
  OverheadResult result;
  std::vector<trace::Trace> traces;
  for (const sim::LabeledTrace& labeled : population().traces) {
    if (!labeled.corrupted) traces.push_back(labeled.trace);
    if (traces.size() >= 1000) break;
  }
  result.traces = traces.size();
  // One worker: the instrumentation cost is per-trace, so a single-threaded
  // run measures the same relative overhead without the scheduling jitter a
  // full-width pool picks up on shared CI machines.
  parallel::ThreadPool pool(1);

  // Provenance sampling rate matching a realistic batch-audit setting.
  constexpr std::uint64_t kProvenanceSample = 8;
  result.provenance_sample = kProvenanceSample;
  // 31 reps x 64 passes: after the zero-alloc/flat-grid/FFT-plan pass a
  // full population analysis runs in well under a millisecond, so each
  // paired measurement needs more passes for scheduler jitter to average
  // out — at 32 passes the paired ratio swung several points run-to-run.
  // The block minima (the gate number) only need one clean scheduling
  // window per mode across the whole run, so more reps buy robustness on
  // runners where CPU steal arrives in multi-second bursts.
  constexpr int kReps = 31;
  constexpr int kPasses = 64;
  double enabled = std::numeric_limits<double>::infinity();
  double disabled = std::numeric_limits<double>::infinity();
  std::vector<double> ratios;
  ratios.reserve(kReps);
  // Warm-up pass so neither mode pays first-touch costs.
  (void)time_population_analysis(traces, pool);
  auto& tracer = obs::SpanTracer::global();
  auto& journal = obs::ProvenanceJournal::global();
  const auto measure_enabled = [&] {
    obs::set_metrics_enabled(true);
    tracer.enable();
    journal.enable(kProvenanceSample);
    const BlockTiming timing = time_population_analysis(traces, pool, kPasses);
    tracer.disable();
    journal.disable();
    journal.reset();  // keep the buffered records bounded across reps
    enabled = std::min(enabled, timing.best_pass_seconds);
    return timing.total_seconds;
  };
  const auto measure_disabled = [&] {
    obs::set_metrics_enabled(false);
    const BlockTiming timing = time_population_analysis(traces, pool, kPasses);
    disabled = std::min(disabled, timing.best_pass_seconds);
    return timing.total_seconds;
  };
  for (int rep = 0; rep < kReps; ++rep) {
    // Each rep measures both modes back-to-back (alternating order) so they
    // share one noise regime; the paired ratio cancels sustained drift that
    // a global min-enabled / min-disabled comparison would not.
    double rep_enabled = 0.0;
    double rep_disabled = 0.0;
    if (rep % 2 == 0) {
      rep_enabled = measure_enabled();
      rep_disabled = measure_disabled();
    } else {
      rep_disabled = measure_disabled();
      rep_enabled = measure_enabled();
    }
    if (rep_disabled > 0.0) ratios.push_back(rep_enabled / rep_disabled);
  }
  obs::set_metrics_enabled(true);
  // Fastest observed single pass per mode; traces_per_second stays
  // trace-count/seconds against this.
  result.enabled_seconds = enabled;
  result.disabled_seconds = disabled;
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio =
      ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  result.paired_median_pct = 100.0 * (median_ratio - 1.0);
  // The gate number is the ratio of the fastest single enabled pass to the
  // fastest single disabled pass. Scheduler/steal noise on a shared runner
  // is strictly additive, so the per-pass minima converge on each mode's
  // intrinsic cost; block-granularity minima and the paired median (kept
  // above for drift diagnosis) both still swung several points run-to-run
  // because steal arrives in bursts longer than one measurement block.
  result.overhead_pct =
      disabled > 0.0 ? 100.0 * (enabled / disabled - 1.0) : 0.0;
  return result;
}

/// The sampling-profiler cost experiment (budget: disabled ~0%, enabled at
/// the default rate <= 5%).
struct ProfilerOverheadResult {
  double hz = 0.0;
  /// A/A null arm: two disabled blocks compared against each other. The
  /// disabled path is one relaxed atomic load per frame push, so this
  /// measures pure harness noise — the honest "indistinguishable from
  /// baseline" number.
  double off_overhead_pct = 0.0;
  double enabled_overhead_pct = 0.0;  ///< enabled vs best disabled minimum
  std::uint64_t samples = 0;          ///< samples taken while enabled
  std::uint64_t idle_samples = 0;
};

ProfilerOverheadResult measure_profiler_overhead() {
  ProfilerOverheadResult result;
  result.hz = obs::Profiler::kDefaultHz;
  std::vector<trace::Trace> traces;
  for (const sim::LabeledTrace& labeled : population().traces) {
    if (!labeled.corrupted) traces.push_back(labeled.trace);
    if (traces.size() >= 1000) break;
  }
  parallel::ThreadPool pool(1);

  // Same estimator as the instrumentation experiment: per-pass minima over
  // alternating blocks, noise strictly additive (rationale above). Fewer
  // reps than the instrumentation gate because this runs three arms.
  constexpr int kReps = 15;
  constexpr int kPasses = 64;
  double off_a = std::numeric_limits<double>::infinity();
  double off_b = std::numeric_limits<double>::infinity();
  double on = std::numeric_limits<double>::infinity();
  (void)time_population_analysis(traces, pool);  // warm-up
  auto& profiler = obs::Profiler::global();
  profiler.reset();
  const auto measure_arm = [&](bool enable, double& best) {
    if (enable) profiler.enable(result.hz);
    const BlockTiming timing =
        time_population_analysis(traces, pool, kPasses);
    if (enable) profiler.disable();
    best = std::min(best, timing.best_pass_seconds);
  };
  for (int rep = 0; rep < kReps; ++rep) {
    // Rotate arm order so no arm systematically lands in the same noise
    // regime (the CPU-steal bursts arrive in multi-block stretches).
    switch (rep % 3) {
      case 0:
        measure_arm(false, off_a);
        measure_arm(false, off_b);
        measure_arm(true, on);
        break;
      case 1:
        measure_arm(true, on);
        measure_arm(false, off_a);
        measure_arm(false, off_b);
        break;
      default:
        measure_arm(false, off_b);
        measure_arm(true, on);
        measure_arm(false, off_a);
        break;
    }
  }
  result.samples = profiler.sample_count();
  result.idle_samples = profiler.idle_samples();
  if (off_a > 0.0) {
    result.off_overhead_pct = 100.0 * (off_b / off_a - 1.0);
  }
  const double off_best = std::min(off_a, off_b);
  if (off_best > 0.0) {
    result.enabled_overhead_pct = 100.0 * (on / off_best - 1.0);
  }
  return result;
}

/// Steady-state heap allocations per analyzed trace.
struct AllocationResult {
  bool counted = false;       ///< false when the bench hook is compiled out
  std::uint64_t total = 0;    ///< allocations across the measured pass
  double per_trace = 0.0;
  std::size_t traces = 0;
};

/// Counts heap allocations across one steady-state pass: a single analyzer
/// workspace (as the batch path keeps per worker), warmed by a full prior
/// pass so every buffer is at its high-water capacity. What remains is the
/// TraceResult output itself plus any scratch the workspace model missed —
/// the number DESIGN.md §12 tracks.
AllocationResult measure_allocations_per_trace() {
  AllocationResult result;
#if defined(MOSAIC_BENCH_COUNT_ALLOCS)
  result.counted = true;
#endif
  std::vector<trace::Trace> traces;
  for (const sim::LabeledTrace& labeled : population().traces) {
    if (!labeled.corrupted) traces.push_back(labeled.trace);
    if (traces.size() >= 1000) break;
  }
  result.traces = traces.size();

  const core::Analyzer analyzer;
  core::AnalyzerWorkspace workspace;
  // Warm-up: grows the workspace buffers to steady state and resolves the
  // lazily-initialized metric handles.
  for (const trace::Trace& t : traces) {
    benchmark::DoNotOptimize(analyzer.analyze(t, workspace));
  }

  g_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  for (const trace::Trace& t : traces) {
    benchmark::DoNotOptimize(analyzer.analyze(t, workspace));
  }
  g_count_allocations.store(false, std::memory_order_relaxed);
  result.total = g_allocation_count.load(std::memory_order_relaxed);
  if (!traces.empty()) {
    result.per_trace = static_cast<double>(result.total) /
                       static_cast<double>(traces.size());
  }
  return result;
}

/// One per-kernel cycle/byte measurement (DESIGN.md §18): the kernel run in
/// isolation over a fixed working set at the scalar level and at the
/// dispatched level. `speedup` is scalar-cycles / dispatched-cycles; on a
/// machine without AVX2 (or under MOSAIC_FORCE_SCALAR) both arms run the
/// scalar path and speedup sits at ~1.0 by construction.
struct KernelCounter {
  const char* name = "";
  double scalar_cycles_per_byte = 0.0;
  double dispatched_cycles_per_byte = 0.0;
  double speedup = 0.0;
  std::uint64_t bytes_per_pass = 0;
};

/// Timestamp-counter read; falls back to a nanosecond clock off x86 (the
/// "cycles" then are nanoseconds, which gates identically since every gate
/// is a ratio of two reads from the same source).
std::uint64_t kernel_ticks() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Minimum ticks for one pass of `body` across `reps` passes — the same
/// noise-robust estimator the throughput experiment uses.
template <typename Body>
double min_pass_ticks(int reps, Body&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t begin = kernel_ticks();
    body();
    const std::uint64_t end = kernel_ticks();
    best = std::min(best, static_cast<double>(end - begin));
  }
  return best;
}

/// Runs one kernel at both levels and fills a KernelCounter.
template <typename Body>
KernelCounter measure_kernel(const char* name, std::uint64_t bytes_per_pass,
                             Body&& body) {
  constexpr int kReps = 4000;
  using util::simd::Level;
  util::simd::set_level_for_testing(Level::kScalar);
  const double scalar =
      min_pass_ticks(kReps, [&] { body(util::simd::active_level()); });
  util::simd::clear_level_for_testing();
  const double dispatched =
      min_pass_ticks(kReps, [&] { body(util::simd::active_level()); });
  KernelCounter counter;
  counter.name = name;
  counter.bytes_per_pass = bytes_per_pass;
  const double bytes = static_cast<double>(bytes_per_pass);
  counter.scalar_cycles_per_byte = scalar / bytes;
  counter.dispatched_cycles_per_byte = dispatched / bytes;
  counter.speedup = dispatched > 0.0 ? scalar / dispatched : 0.0;
  return counter;
}

/// The three ISSUE-named kernel families, measured on working sets shaped
/// like the hot path's: per-second histograms (reductions), activity-series
/// binning, and one full FFT butterfly stage.
std::vector<KernelCounter> measure_kernel_counters() {
  constexpr std::size_t kN = 4096;
  std::vector<double> values(kN);
  std::vector<double> weights(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = static_cast<double>((i * 2654435761u) % 100000) / 97.0;
    weights[i] = static_cast<double>(i % 512);
  }
  std::vector<double> bins(512);
  std::vector<std::complex<double>> even(kN / 2), odd(kN / 2),
      twiddles(kN / 2), spectrum(kN);
  for (std::size_t i = 0; i < kN / 2; ++i) {
    const double angle = 6.283185307179586 * static_cast<double>(i) /
                         static_cast<double>(kN);
    even[i] = {values[i], weights[i]};
    odd[i] = {weights[i], values[i]};
    twiddles[i] = {std::cos(angle), std::sin(angle)};
  }
  for (std::size_t i = 0; i < kN; ++i) {
    spectrum[i] = {values[i], weights[i % kN]};
  }

  std::vector<KernelCounter> counters;
  counters.push_back(measure_kernel(
      "sum", kN * sizeof(double), [&](util::simd::Level level) {
        benchmark::DoNotOptimize(util::simd::sum(values, level));
      }));
  counters.push_back(measure_kernel(
      "max_and_count_ge", kN * sizeof(double), [&](util::simd::Level level) {
        std::size_t count = 0;
        benchmark::DoNotOptimize(
            util::simd::max_and_count_ge(values, 500.0, count, level));
      }));
  counters.push_back(measure_kernel(
      "bin_add", 2 * kN * sizeof(double), [&](util::simd::Level level) {
        std::fill(bins.begin(), bins.end(), 0.0);
        util::simd::bin_add(values.data(), weights.data(), kN, 2.0,
                            bins.data(), bins.size(), level);
        benchmark::DoNotOptimize(bins.data());
      }));
  counters.push_back(measure_kernel(
      "fft_butterfly", kN * sizeof(std::complex<double>),
      [&](util::simd::Level level) {
        util::simd::fft_butterfly(even.data(), odd.data(), twiddles.data(),
                                  kN / 2, level);
        benchmark::DoNotOptimize(even.data());
      }));
  counters.push_back(measure_kernel(
      "complex_norm", kN * sizeof(std::complex<double>),
      [&](util::simd::Level level) {
        util::simd::complex_norm(spectrum.data(), kN, level);
        benchmark::DoNotOptimize(spectrum.data());
      }));
  return counters;
}

/// Mean latency of a stage histogram in the snapshot, or 0 if never hit.
double stage_mean_ms(const obs::Snapshot& snapshot, std::string_view name) {
  for (const obs::HistogramSample& sample : snapshot.histograms) {
    if (sample.name == name && sample.count > 0) {
      return sample.sum / static_cast<double>(sample.count);
    }
  }
  return 0.0;
}

std::uint64_t counter_value(const obs::Snapshot& snapshot,
                            std::string_view name) {
  for (const obs::CounterSample& sample : snapshot.counters) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

/// Machine-readable companion to the human benchmark table: throughput,
/// per-stage means scraped from the metrics registry, and the
/// instrumentation overhead experiment.
void write_bench_json(const OverheadResult& overhead,
                      const ProfilerOverheadResult& profiler,
                      const AllocationResult& allocations,
                      const std::vector<KernelCounter>& kernels,
                      const std::string& path) {
  const obs::Snapshot snapshot = obs::Registry::global().snapshot();

  json::Object out;
  out.set("benchmark", "perf_pipeline");
  out.set("simd_level",
          util::simd::level_name(util::simd::active_level()));
  out.set("traces", overhead.traces);
  out.set("traces_per_second",
          overhead.enabled_seconds > 0.0
              ? static_cast<double>(overhead.traces) / overhead.enabled_seconds
              : 0.0);
  out.set("traces_analyzed_total",
          counter_value(snapshot, obs::names::kTracesAnalyzed));

  json::Object stages;
  stages.set("merge", stage_mean_ms(snapshot, obs::names::kStageMergeMs));
  stages.set("segment", stage_mean_ms(snapshot, obs::names::kStageSegmentMs));
  stages.set("periodicity",
             stage_mean_ms(snapshot, obs::names::kStagePeriodicityMs));
  stages.set("temporality",
             stage_mean_ms(snapshot, obs::names::kStageTemporalityMs));
  stages.set("metadata", stage_mean_ms(snapshot, obs::names::kStageMetadataMs));
  stages.set("categorize",
             stage_mean_ms(snapshot, obs::names::kStageCategorizeMs));
  stages.set("analyze", stage_mean_ms(snapshot, obs::names::kStageAnalyzeMs));
  out.set("stage_mean_ms", std::move(stages));

  json::Object instr;
  instr.set("enabled_seconds", overhead.enabled_seconds);
  instr.set("disabled_seconds", overhead.disabled_seconds);
  instr.set("overhead_pct", overhead.overhead_pct);
  instr.set("paired_median_pct", overhead.paired_median_pct);
  instr.set("surface", "metrics+spans+provenance");
  instr.set("provenance_sample", overhead.provenance_sample);
  out.set("instrumentation", std::move(instr));

  json::Object prof;
  prof.set("hz", profiler.hz);
  prof.set("off_overhead_pct", profiler.off_overhead_pct);
  prof.set("enabled_overhead_pct", profiler.enabled_overhead_pct);
  prof.set("samples", profiler.samples);
  prof.set("idle_samples", profiler.idle_samples);
  out.set("profiler", std::move(prof));

  json::Object allocs;
  allocs.set("counted", allocations.counted);
  allocs.set("per_trace", allocations.per_trace);
  allocs.set("total", allocations.total);
  allocs.set("traces", allocations.traces);
  out.set("allocations", std::move(allocs));

  json::Object kernel_section;
  for (const KernelCounter& kernel : kernels) {
    json::Object entry;
    entry.set("scalar_cycles_per_byte", kernel.scalar_cycles_per_byte);
    entry.set("dispatched_cycles_per_byte",
              kernel.dispatched_cycles_per_byte);
    entry.set("speedup", kernel.speedup);
    entry.set("bytes_per_pass", kernel.bytes_per_pass);
    kernel_section.set(kernel.name, std::move(entry));
  }
  out.set("kernels", std::move(kernel_section));

  if (const auto status =
          util::write_file_atomic(path, json::serialize(out) + "\n");
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
  } else {
    std::printf("bench results written to %s (instrumentation %.2f%%, "
                "profiler off %.2f%% / on %.2f%%)\n",
                path.c_str(), overhead.overhead_pct,
                profiler.off_overhead_pct, profiler.enabled_overhead_pct);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --overhead-only skips the google-benchmark suite: CI uses it to check
  // the instrumentation budget without paying for the microbenches.
  bool overhead_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overhead-only") == 0) {
      overhead_only = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!overhead_only) benchmark::RunSpecifiedBenchmarks();
  const OverheadResult overhead = measure_instrumentation_overhead();
  const ProfilerOverheadResult profiler = measure_profiler_overhead();
  const AllocationResult allocations = measure_allocations_per_trace();
  const std::vector<KernelCounter> kernels = measure_kernel_counters();
  write_bench_json(overhead, profiler, allocations, kernels,
                   "BENCH_perf_pipeline.json");
  benchmark::Shutdown();
  return 0;
}
