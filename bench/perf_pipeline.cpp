// §IV-E performance: the paper processes 462,502 traces in 165 minutes on a
// 64-core EPYC (memory-bound, ~300 GB RSS). These google-benchmark
// microbenches time every pipeline stage and the end-to-end trace rate so
// the throughput story (traces/second, stage costs, thread scaling) can be
// compared in shape.
#include <benchmark/benchmark.h>

#include "core/merge.hpp"
#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "darshan/binary_format.hpp"
#include "darshan/text_format.hpp"
#include "sim/population.hpp"

namespace {

using namespace mosaic;

/// Shared small population so fixture cost is paid once.
const sim::Population& population() {
  static const sim::Population value = [] {
    sim::PopulationConfig config;
    config.target_traces = 4000;
    config.seed = 7;
    return sim::generate_population(config);
  }();
  return value;
}

/// A representative heavyweight trace (checkpointing app).
const trace::Trace& checkpoint_trace() {
  static const trace::Trace value = [] {
    for (const sim::LabeledTrace& labeled : population().traces) {
      if (!labeled.corrupted && labeled.archetype == "ckpt_minute") {
        return labeled.trace;
      }
    }
    return population().traces.front().trace;
  }();
  return value;
}

void BM_Validate(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::validate(t));
  }
}
BENCHMARK(BM_Validate);

void BM_ExtractOps(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::extract_ops(t, trace::OpKind::kWrite));
  }
}
BENCHMARK(BM_ExtractOps);

void BM_MergeOps(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto ops = trace::extract_ops(t, trace::OpKind::kWrite);
  for (auto _ : state) {
    auto copy = ops;
    benchmark::DoNotOptimize(
        core::merge_ops(std::move(copy), t.meta.run_time));
  }
}
BENCHMARK(BM_MergeOps);

void BM_Segmentation(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto merged = core::merge_ops(
      trace::extract_ops(t, trace::OpKind::kWrite), t.meta.run_time);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::segment_ops(merged));
  }
}
BENCHMARK(BM_Segmentation);

void BM_PeriodicityDetection(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto segments = core::segment_ops(core::merge_ops(
      trace::extract_ops(t, trace::OpKind::kWrite), t.meta.run_time));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_periodicity(segments));
  }
}
BENCHMARK(BM_PeriodicityDetection);

void BM_TemporalityClassification(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto merged = core::merge_ops(
      trace::extract_ops(t, trace::OpKind::kWrite), t.meta.run_time);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::classify_temporality(merged, t.meta.run_time));
  }
}
BENCHMARK(BM_TemporalityClassification);

void BM_MetadataClassification(benchmark::State& state) {
  const trace::Trace& t = checkpoint_trace();
  const auto timeline = trace::metadata_timeline(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::classify_metadata(
        timeline, t.meta.run_time, t.meta.nprocs));
  }
}
BENCHMARK(BM_MetadataClassification);

void BM_AnalyzeSingleTrace(benchmark::State& state) {
  const core::Analyzer analyzer;
  const trace::Trace& t = checkpoint_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(t));
  }
}
BENCHMARK(BM_AnalyzeSingleTrace);

/// End-to-end population throughput; counter reports traces/second, the
/// paper's headline unit (462k traces / 165 min ~ 47 traces/s/64 cores).
void BM_PopulationPipeline(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::vector<trace::Trace> traces;
  for (const sim::LabeledTrace& labeled : population().traces) {
    traces.push_back(labeled.trace);
  }
  parallel::ThreadPool pool(threads);
  for (auto _ : state) {
    auto copy = traces;
    benchmark::DoNotOptimize(
        core::analyze_population(std::move(copy), {}, &pool));
  }
  state.counters["traces/s"] = benchmark::Counter(
      static_cast<double>(traces.size()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PopulationPipeline)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MbtDecode(benchmark::State& state) {
  const auto bytes = darshan::to_mbt(checkpoint_trace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(darshan::parse_mbt(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_MbtDecode);

void BM_DarshanTextParse(benchmark::State& state) {
  const std::string text = darshan::to_text(checkpoint_trace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(darshan::parse_text(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_DarshanTextParse);

void BM_TraceGeneration(benchmark::State& state) {
  const sim::TraceGenerator generator;
  sim::AppSpec spec;
  spec.name = "bench";
  spec.runtime_median = 3600.0;
  sim::PeriodicSpec periodic;
  periodic.period_seconds = 300.0;
  spec.periodic.push_back(periodic);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generator.generate(spec, {}, {.job_id = 1}, rng));
  }
}
BENCHMARK(BM_TraceGeneration);

}  // namespace

BENCHMARK_MAIN();
