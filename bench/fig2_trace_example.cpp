// Reproduces paper Fig. 2: the trace-processing example — one job rendered
// at every pipeline stage. The paper shows a Blue Waters trace
// (USER380111's iobubble run) with: the base trace's read operations and
// metadata requests, the operations after pre-processing with the detected
// periodicity, and the temporal chunk division with per-chunk volumes.
// Here an equivalent job (periodic reads + metadata bursts + a final write)
// is generated and each stage is drawn as an ASCII timeline.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/merge.hpp"
#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "sim/generator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace mosaic;
using trace::IoOp;
using trace::OpKind;

constexpr int kWidth = 100;  // timeline columns

/// Renders ops as a timeline row: '#' where an op is active.
std::string timeline(const std::vector<IoOp>& ops, double runtime) {
  std::string row(kWidth, '.');
  for (const IoOp& op : ops) {
    const int from = std::clamp(
        static_cast<int>(op.start / runtime * kWidth), 0, kWidth - 1);
    const int to = std::clamp(static_cast<int>(op.end / runtime * kWidth),
                              from, kWidth - 1);
    for (int c = from; c <= to; ++c) row[static_cast<std::size_t>(c)] = '#';
  }
  return row;
}

/// Renders metadata requests as a density row (' ' .. '@').
std::string metadata_timeline(const std::vector<trace::MetaEvent>& events,
                              double runtime) {
  std::vector<double> bins(kWidth, 0.0);
  double peak = 0.0;
  for (const trace::MetaEvent& event : events) {
    const int bin = std::clamp(
        static_cast<int>(event.time / runtime * kWidth), 0, kWidth - 1);
    bins[static_cast<std::size_t>(bin)] += static_cast<double>(event.requests);
    peak = std::max(peak, bins[static_cast<std::size_t>(bin)]);
  }
  static constexpr const char* kRamp = ".:-=+*#%@";
  std::string row(kWidth, '.');
  for (int c = 0; c < kWidth; ++c) {
    if (bins[static_cast<std::size_t>(c)] <= 0.0) continue;
    const auto shade = static_cast<std::size_t>(
        std::min(8.0, 1.0 + 8.0 * bins[static_cast<std::size_t>(c)] / peak));
    row[static_cast<std::size_t>(c)] = kRamp[shade];
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("fig2_trace_example",
                      "one trace rendered at every pipeline stage (Fig. 2)");
  cli.add_option("seed", "RNG seed", "42");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }

  // An iobubble-like job: reads a batch of files every ~40 s, with the
  // metadata requests (OPEN per operation) the paper's figure annotates.
  sim::AppSpec spec;
  spec.name = "iobubble_like";
  spec.runtime_median = 360.0;  // the figure spans ~6 minutes
  spec.runtime_sigma = 0.0;
  sim::PeriodicSpec reads;
  reads.kind = OpKind::kRead;
  reads.period_seconds = 40.0;
  reads.bytes_per_burst = 24ull << 30;  // heavy bursts: per-file windows of
  reads.files_per_burst = 4;            // ~1-2 s that overlap under desync
  spec.periodic.push_back(reads);
  spec.log2_nprocs_min = 5;
  spec.log2_nprocs_max = 5;
  spec.desync_sigma = 0.8;

  const sim::TraceGenerator generator;
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed").value_or(42)));
  const sim::LabeledTrace labeled =
      generator.generate(spec, {}, {.job_id = 9807799, .user = "380111"}, rng);
  const trace::Trace& t = labeled.trace;
  const double runtime = t.meta.run_time;

  std::printf("\n=== Fig. 2 — Trace processing example ===\n");
  std::printf("job %llu, %u ranks, runtime %s\n\n",
              static_cast<unsigned long long>(t.meta.job_id), t.meta.nprocs,
              util::format_duration(runtime).c_str());

  // Stage 0: base trace.
  const auto raw = trace::extract_ops(t, OpKind::kRead);
  std::printf("base trace: %zu read operations (one per file record)\n", raw.size());
  std::printf("  reads   |%s|\n", timeline(raw, runtime).c_str());
  std::printf("  metadata|%s|\n\n",
              metadata_timeline(trace::metadata_timeline(t), runtime).c_str());

  // Stage 1: merging.
  const core::Thresholds thresholds;
  auto merged = core::merge_concurrent(raw);
  std::printf("after concurrent merging: %zu operations\n", merged.size());
  merged = core::merge_neighbors(std::move(merged), runtime, thresholds);
  std::printf("after neighbor merging  : %zu operations\n", merged.size());
  std::printf("  reads   |%s|\n\n", timeline(merged, runtime).c_str());

  // Stage 2: segmentation + periodicity.
  const auto segments = core::segment_ops(merged);
  const core::PeriodicityResult periodicity =
      core::detect_periodicity(segments, thresholds);
  std::printf("segmentation: %zu segments\n", segments.size());
  if (periodicity.periodic) {
    const core::PeriodicGroup& group = periodicity.dominant();
    std::printf(
        "periodicity detected: period %.1f s (%s scale), %zu occurrences,\n"
        "  %s per occurrence, busy ratio %.3f\n\n",
        group.period_seconds, core::period_magnitude_name(group.magnitude),
        group.occurrences, util::format_bytes(group.mean_bytes).c_str(),
        group.busy_ratio);
  } else {
    std::printf("periodicity: none detected\n\n");
  }

  // Stage 3: temporal chunks (lower half of the paper's figure).
  const core::TemporalityResult temporality =
      core::classify_temporality(merged, runtime, thresholds);
  std::printf("temporal chunks (25%% of execution each):\n");
  double max_chunk = 1.0;
  for (const double v : temporality.chunk_bytes) max_chunk = std::max(max_chunk, v);
  for (std::size_t c = 0; c < temporality.chunk_bytes.size(); ++c) {
    const int bars =
        static_cast<int>(temporality.chunk_bytes[c] / max_chunk * 40.0);
    std::printf("  chunk %zu |%-40.*s| %s\n", c, bars,
                "########################################",
                util::format_bytes(temporality.chunk_bytes[c]).c_str());
  }
  std::printf("temporality label: read_%s\n\n",
              core::temporality_name(temporality.label));

  // Final categorization, as the JSON output would record it.
  const core::Analyzer analyzer;
  const core::TraceResult result = analyzer.analyze(t);
  std::printf("assigned categories: %s\n",
              util::join(result.categories.names(), ", ").c_str());
  return 0;
}
