// Ablation E — the 100 MB insignificance threshold (paper §III-A).
//
// "We estimate that applications reading or writing less than 100MB ...
// fall into those categories. These thresholds have been determined
// experimentally for the dataset processed ... Future work will investigate
// advanced methods for determining them." This bench sweeps min_bytes and
// shows what the choice controls: how much of the machine is categorized at
// all, how stable the active-category marginals are, and where the
// library-loading false positives (the paper's own example of a case the
// threshold mishandles) start to appear.
#include <cstdio>

#include "core/pipeline.hpp"
#include "report/accuracy.hpp"
#include "report/aggregate.hpp"
#include "report/tables.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  util::CliParser cli("ablation_threshold",
                      "category coverage vs the insignificance threshold");
  cli.add_option("traces", "population size", "8000");
  cli.add_option("seed", "master seed", "20190410");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }

  sim::PopulationConfig config;
  config.target_traces =
      static_cast<std::size_t>(cli.get_int("traces").value_or(8000));
  config.seed =
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(20190410));
  const sim::Population population = sim::generate_population(config);
  const auto truth = report::truth_index(population.traces);

  std::printf(
      "\n=== Ablation E — the insignificance threshold (paper §III-A) ===\n"
      "sweeping min_bytes; paper default 100 MB, set experimentally\n\n");

  report::TextTable table({"min_bytes", "read active", "write active",
                           "read accuracy", "overall accuracy"});
  for (const std::uint64_t min_bytes :
       {1ull << 20, 10ull << 20, 100ull * 1000 * 1000, 1ull << 30,
        10ull << 30}) {
    core::Thresholds thresholds;
    thresholds.min_bytes = min_bytes;

    std::vector<trace::Trace> traces;
    traces.reserve(population.traces.size());
    for (const sim::LabeledTrace& labeled : population.traces) {
      traces.push_back(labeled.trace);
    }
    const core::BatchResult batch =
        core::analyze_population(std::move(traces), thresholds);
    const report::CategoryDistribution distribution =
        report::aggregate_categories(batch);

    // Accuracy against the 100 MB ground truth: as the operating threshold
    // departs from the one the labels were defined with, "accuracy" decays —
    // which is the point: the threshold is part of the category definition.
    const report::AccuracyReport accuracy =
        report::score_accuracy(batch.results, truth);

    table.add_row(
        {util::format_bytes(static_cast<double>(min_bytes)),
         util::format_percent(1.0 - distribution.single_fraction(
                                        core::Category::kReadInsignificant)),
         util::format_percent(1.0 - distribution.single_fraction(
                                        core::Category::kWriteInsignificant)),
         util::format_percent(accuracy.read_temporality.ratio()),
         util::format_percent(accuracy.overall.ratio())});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nreading: lowering the threshold categorizes more of the machine but\n"
      "drags incidental I/O (library loading, config files) into the active\n"
      "categories — at 1 MiB nearly every job is 'active' and the labels\n"
      "stop matching application intent. Raising it to GiB scale silences\n"
      "genuinely active applications. The 100 MB default sits where the\n"
      "coverage/intent trade-off balances for this population — and since\n"
      "the threshold participates in the category *definition*, any single\n"
      "fixed value will mislabel some workloads (the paper's library-loading\n"
      "example), motivating its future-work plan of adaptive thresholds.\n");
  return 0;
}
