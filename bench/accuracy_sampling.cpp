// Reproduces §IV-E accuracy: the paper samples 512 categorized traces,
// validates them manually, finds 42 misclassified -> 92% accuracy, with
// errors dominated by temporality edge cases (operations unevenly spread
// across chunks). Here the generator's ground truth replaces the manual
// pass, so both the sampled protocol and the full-population accuracy print.
#include "bench_common.hpp"

#include "report/accuracy.hpp"
#include "report/tables.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;
  const bench::BenchSetup setup = bench::parse_common_flags(
      "accuracy_sampling", "categorization accuracy (paper §IV-E)", argc,
      argv);
  const bench::BenchData data = bench::run_pipeline(setup);

  const auto index = report::truth_index(data.population.traces);
  const report::AccuracyReport sampled = report::score_sampled_accuracy(
      data.batch.results, index, 512, setup.population_config.seed);
  const report::AccuracyReport full =
      report::score_accuracy(data.batch.results, index);

  bench::print_header("§IV-E — MOSAIC accuracy");
  std::printf(
      "paper protocol: 512 sampled traces, 42 misclassified -> 92%% accuracy\n\n");

  report::TextTable table({"measurement", "sampled (n=512)", "full population"});
  const auto pct = [](const report::AxisAccuracy& axis) {
    return util::format_percent(axis.ratio());
  };
  table.add_row({"overall (all axes correct)", pct(sampled.overall),
                 pct(full.overall)});
  table.add_row({"read temporality", pct(sampled.read_temporality),
                 pct(full.read_temporality)});
  table.add_row({"write temporality", pct(sampled.write_temporality),
                 pct(full.write_temporality)});
  table.add_row({"read periodicity", pct(sampled.read_periodicity),
                 pct(full.read_periodicity)});
  table.add_row({"write periodicity", pct(sampled.write_periodicity),
                 pct(full.write_periodicity)});
  table.add_row({"metadata", pct(sampled.metadata), pct(full.metadata)});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nsampled: %zu/%zu misclassified (paper: 42/512)\n",
      sampled.overall.total - sampled.overall.correct, sampled.overall.total);
  if (!full.misclassified.empty()) {
    std::printf(
        "full population: %zu/%zu misclassified, %zu of them on traces the\n"
        "generator flags as boundary cases — matching the paper's finding\n"
        "that errors concentrate where operations straddle chunk boundaries\n",
        full.overall.total - full.overall.correct, full.overall.total,
        full.errors_on_ambiguous);
  }

  bench::print_footer(data);
  return 0;
}
