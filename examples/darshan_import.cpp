// Darshan import: categorize real (or exported) traces from disk.
//
// Feeds darshan-parser text dumps or .mbt binary containers through the
// MOSAIC pipeline — the application-by-application mode the paper suggests
// for feeding a job scheduler. With --export-demo the example first writes a
// small demo corpus so it can be run without any external data:
//
//   darshan_import --export-demo /tmp/mosaic_demo
//   darshan_import /tmp/mosaic_demo
//   darshan_import my_trace.darshan.txt another.mbt
#include <cstdio>
#include <filesystem>

#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "darshan/binary_format.hpp"
#include "darshan/io.hpp"
#include "darshan/text_format.hpp"
#include "json/json.hpp"
#include "report/json_output.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace {

using namespace mosaic;

/// Writes a small mixed-format demo corpus and returns 0 on success.
int export_demo(const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", directory.c_str(),
                 ec.message().c_str());
    return 1;
  }
  sim::PopulationConfig config;
  config.target_traces = 24;
  config.corruption_fraction = 0.15;
  config.seed = 1234;
  const sim::Population population = sim::generate_population(config);
  std::size_t text_count = 0;
  std::size_t binary_count = 0;
  for (std::size_t i = 0; i < population.traces.size(); ++i) {
    const trace::Trace& t = population.traces[i].trace;
    const std::string stem =
        directory + "/job_" + std::to_string(t.meta.job_id);
    const util::Status status =
        i % 2 == 0 ? darshan::write_text_file(t, stem + ".darshan.txt")
                   : darshan::write_mbt_file(t, stem + ".mbt");
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
      return 1;
    }
    ++(i % 2 == 0 ? text_count : binary_count);
  }
  std::printf("wrote %zu text + %zu binary traces to %s\n", text_count,
              binary_count, directory.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("darshan_import",
                      "categorize darshan-parser text / .mbt traces");
  cli.add_option("export-demo", "write a demo corpus to this directory", "");
  cli.add_option("thresholds", "JSON thresholds config (see core/config.hpp)",
                 "");
  cli.add_flag("json", "print the full JSON per trace");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }

  if (const auto demo_dir = cli.get("export-demo"); !demo_dir.empty()) {
    return export_demo(std::string(demo_dir));
  }

  // Collect trace files from the positional arguments (files or
  // directories).
  std::vector<std::string> paths;
  for (const std::string& arg : cli.positional()) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      const auto scanned = darshan::scan_trace_dir(arg);
      if (!scanned.has_value()) {
        std::fprintf(stderr, "%s\n", scanned.error().to_string().c_str());
        return 1;
      }
      paths.insert(paths.end(), scanned->begin(), scanned->end());
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "no input traces; pass files/directories or use "
                 "--export-demo <dir> first\n");
    return 2;
  }

  core::Thresholds thresholds;
  if (const auto config_path = cli.get("thresholds"); !config_path.empty()) {
    auto loaded_thresholds =
        core::read_thresholds_file(std::string(config_path));
    if (!loaded_thresholds.has_value()) {
      std::fprintf(stderr, "%s\n",
                   loaded_thresholds.error().to_string().c_str());
      return 2;
    }
    thresholds = *loaded_thresholds;
  }
  const core::Analyzer analyzer(thresholds);
  std::size_t loaded = 0;
  std::size_t evicted = 0;
  for (const std::string& path : paths) {
    auto parsed = darshan::read_trace_file(path);
    if (!parsed.has_value()) {
      std::printf("%-48s LOAD ERROR (%s)\n", path.c_str(),
                  parsed.error().to_string().c_str());
      ++evicted;
      continue;
    }
    const trace::ValidityReport validity = trace::validate(*parsed);
    if (!validity.valid()) {
      std::printf("%-48s EVICTED (%s: %s)\n", path.c_str(),
                  trace::corruption_kind_name(validity.kind),
                  validity.detail.c_str());
      ++evicted;
      continue;
    }
    ++loaded;
    const core::TraceResult result = analyzer.analyze(*parsed);
    if (cli.get_flag("json")) {
      std::printf("%s\n",
                  json::serialize(report::trace_result_to_json(result)).c_str());
    } else {
      std::printf("%-48s %s\n", path.c_str(),
                  util::join(result.categories.names(), ", ").c_str());
    }
  }
  std::printf("\n%zu categorized, %zu evicted (paper Fig. 3 reports 32%% "
              "eviction on Blue Waters 2019)\n",
              loaded, evicted);
  return 0;
}
