// Fleet analysis: the paper's headline use case at example scale.
//
// Generates a Blue Waters-like population of execution traces, runs the full
// MOSAIC pipeline over it (validity filtering, per-application dedup,
// per-trace categorization), and prints the pre-processing funnel, the
// category distributions in both single-run and all-runs views, the Jaccard
// correlation pairs, and writes the machine-readable JSON summary.
//
// Usage: fleet_analysis [--traces N] [--seed S] [--threads T] [--json PATH]
#include <cstdio>

#include "core/pipeline.hpp"
#include "parallel/thread_pool.hpp"
#include "report/aggregate.hpp"
#include "report/jaccard.hpp"
#include "report/json_output.hpp"
#include "report/tables.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;

  util::CliParser cli("fleet_analysis",
                      "categorize a synthetic year of supercomputer traces");
  cli.add_option("traces", "executions to synthesize", "10000");
  cli.add_option("seed", "master RNG seed", "20190410");
  cli.add_option("threads", "worker threads (0 = hardware)", "0");
  cli.add_option("json", "path for the JSON summary", "fleet_analysis.json");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }

  sim::PopulationConfig config;
  config.target_traces =
      static_cast<std::size_t>(cli.get_int("traces").value_or(10000));
  config.seed =
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(20190410));
  parallel::ThreadPool pool(
      static_cast<std::size_t>(cli.get_int("threads").value_or(0)));

  util::Stopwatch watch;
  sim::Population population = sim::generate_population(config, &pool);
  std::printf("generated %zu traces (%zu applications) in %s\n",
              population.traces.size(), population.app_count,
              util::format_duration(watch.elapsed_seconds()).c_str());

  watch.reset();
  const core::BatchResult batch =
      core::analyze_population(sim::to_traces(std::move(population)), {}, &pool);
  std::printf("analyzed in %s (%.0f traces/s)\n\n",
              util::format_duration(watch.elapsed_seconds()).c_str(),
              static_cast<double>(batch.preprocess.input_traces) /
                  watch.elapsed_seconds());

  // Funnel.
  const auto& stats = batch.preprocess;
  std::printf("pre-processing funnel:\n");
  std::printf("  input traces : %zu\n", stats.input_traces);
  std::printf("  corrupted    : %zu (%s)\n", stats.corrupted,
              util::format_percent(static_cast<double>(stats.corrupted) /
                                   static_cast<double>(stats.input_traces))
                  .c_str());
  std::printf("  retained     : %zu unique applications\n\n", stats.retained);

  // Category distribution table, skipping categories no trace carries.
  const report::CategoryDistribution distribution =
      report::aggregate_categories(batch);
  report::TextTable table({"category", "applications", "executions"});
  for (const core::Category category : core::all_categories()) {
    if (distribution.single[static_cast<std::size_t>(category)] == 0) continue;
    table.add_row({std::string(core::category_name(category)),
                   util::format_percent(distribution.single_fraction(category)),
                   util::format_percent(
                       distribution.weighted_fraction(category))});
  }
  std::fputs(table.render().c_str(), stdout);

  // Strongest correlations.
  std::printf("\nstrongest category correlations (Jaccard):\n");
  std::fputs(
      report::top_pairs(report::jaccard_matrix(batch.results), 8).c_str(),
      stdout);

  // JSON summary for downstream tooling.
  const std::string json_path{cli.get("json")};
  if (const auto status = report::write_batch_json(batch, json_path);
      !status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                 status.error().to_string().c_str());
    return 1;
  }
  std::printf("\nJSON summary written to %s\n", json_path.c_str());
  return 0;
}
