// Scheduler advisor: the paper's motivating application (§I, §V).
//
// MOSAIC's categories exist to feed I/O-aware scheduling: "two jobs
// categorized as reading large volumes of data at the start of execution
// could be scheduled so as not to overlap". This example categorizes a
// queue of jobs (from their most recent traces) and derives pairwise
// co-scheduling advice from category conflicts:
//   - two read_on_start jobs     -> stagger their start times
//   - write_on_end vs read_*     -> avoid aligning tail with head
//   - two metadata-heavy jobs    -> never co-schedule (MDS saturation)
//   - periodic writers           -> interleave checkpoint phases
//
// Usage: scheduler_advisor [--jobs N] [--seed S]
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "report/tables.hpp"
#include "sim/population.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace mosaic;
using core::Category;

/// One piece of advice about a job pair.
struct Advice {
  std::string reason;
  int severity = 0;  ///< 0 none, 1 caution, 2 stagger, 3 avoid
};

/// Derives the strongest conflict between two categorized jobs.
Advice advise(const core::TraceResult& a, const core::TraceResult& b) {
  const auto both = [&](Category category) {
    return a.categories.contains(category) && b.categories.contains(category);
  };
  const auto either_meta_heavy = [](const core::TraceResult& r) {
    return r.categories.contains(Category::kMetadataHighDensity) ||
           r.categories.contains(Category::kMetadataHighSpike);
  };

  if (either_meta_heavy(a) && either_meta_heavy(b)) {
    return {"both hammer the metadata server; co-scheduling risks MDS "
            "saturation",
            3};
  }
  if (both(Category::kWritePeriodic)) {
    return {"both checkpoint periodically; offset their start times so "
            "checkpoint phases interleave",
            2};
  }
  if (both(Category::kReadOnStart)) {
    return {"both read large inputs at start; stagger submissions to avoid "
            "an ingest burst collision",
            2};
  }
  if ((a.categories.contains(Category::kWriteOnEnd) &&
       b.categories.contains(Category::kReadOnStart)) ||
      (b.categories.contains(Category::kWriteOnEnd) &&
       a.categories.contains(Category::kReadOnStart))) {
    return {"one drains results while the other ingests; fine unless their "
            "tail and head align — monitor",
            1};
  }
  if (both(Category::kWriteSteady) || both(Category::kReadSteady)) {
    return {"both stream steadily; bandwidth shares will halve but no burst "
            "interference expected",
            1};
  }
  return {"no significant I/O interaction expected", 0};
}

const char* severity_name(int severity) {
  switch (severity) {
    case 3: return "AVOID";
    case 2: return "STAGGER";
    case 1: return "CAUTION";
    default: return "ok";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("scheduler_advisor",
                      "derive co-scheduling advice from MOSAIC categories");
  cli.add_option("jobs", "queued jobs to sample", "8");
  cli.add_option("seed", "RNG seed", "99");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  const auto job_count =
      static_cast<std::size_t>(cli.get_int("jobs").value_or(8));

  // A queue of jobs: recent traces of distinct applications. Generate a
  // small population and keep the first valid trace per application.
  sim::PopulationConfig config;
  config.target_traces = std::max<std::size_t>(400, job_count * 40);
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed").value_or(99));
  config.corruption_fraction = 0.0;
  const sim::Population population = sim::generate_population(config);

  const core::Analyzer analyzer;
  std::vector<core::TraceResult> jobs;
  std::vector<std::string> archetypes;
  std::set<std::string> seen_archetypes;
  for (const sim::LabeledTrace& labeled : population.traces) {
    if (jobs.size() >= job_count) break;
    // Prefer one job per archetype for an interesting mix.
    if (!seen_archetypes.insert(labeled.archetype).second &&
        seen_archetypes.size() < job_count) {
      continue;
    }
    jobs.push_back(analyzer.analyze(labeled.trace));
    archetypes.push_back(labeled.archetype);
  }

  std::printf("queued jobs and their MOSAIC categories:\n\n");
  report::TextTable overview({"job", "application", "categories"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    overview.add_row({"J" + std::to_string(i), archetypes[i],
                      util::join(jobs[i].categories.names(), ", ")});
  }
  std::fputs(overview.render().c_str(), stdout);

  std::printf("\nco-scheduling advice (conflicting pairs first):\n\n");
  struct Pair {
    std::size_t i, j;
    Advice advice;
  };
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < jobs.size(); ++j) {
      pairs.push_back({i, j, advise(jobs[i], jobs[j])});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    return a.advice.severity > b.advice.severity;
  });
  for (const Pair& pair : pairs) {
    if (pair.advice.severity == 0) continue;
    std::printf("  [%-7s] J%zu + J%zu: %s\n",
                severity_name(pair.advice.severity), pair.i, pair.j,
                pair.advice.reason.c_str());
  }
  std::printf("\n(all remaining pairs: no significant I/O interaction)\n");
  return 0;
}
