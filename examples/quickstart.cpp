// Quickstart: generate one checkpointing application trace, run the MOSAIC
// analyzer on it, and print the categorization as JSON.
//
// This is the smallest end-to-end tour of the public API:
//   sim::TraceGenerator  -> a Darshan-shaped trace
//   core::Analyzer       -> categories + measurements
//   report               -> JSON output
#include <cstdio>

#include "core/pipeline.hpp"
#include "json/json.hpp"
#include "report/json_output.hpp"
#include "sim/generator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mosaic;

  util::CliParser cli("quickstart",
                      "categorize one synthetic checkpointing trace");
  cli.add_option("seed", "RNG seed", "7");
  cli.add_option("period", "checkpoint period in seconds", "600");
  cli.add_option("bursts-gib", "checkpoint size in GiB", "2");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed").value_or(7));
  const double period = cli.get_double("period").value_or(600.0);
  const double gib = cli.get_double("bursts-gib").value_or(2.0);

  // Describe an application: reads input at start, checkpoints periodically,
  // writes a final result.
  sim::AppSpec spec;
  spec.name = "demo_simulation";
  spec.runtime_median = 4.0 * 3600.0;
  spec.log2_nprocs_min = 7;  // 128 ranks
  spec.log2_nprocs_max = 7;

  sim::BurstSpec input;
  input.kind = trace::OpKind::kRead;
  input.position_frac = 0.01;
  input.bytes = 6ull << 30;
  input.file_count = 4;
  spec.bursts.push_back(input);

  sim::PeriodicSpec checkpoint;
  checkpoint.kind = trace::OpKind::kWrite;
  checkpoint.period_seconds = period;
  checkpoint.bytes_per_burst =
      static_cast<std::uint64_t>(gib * 1024.0 * 1024.0 * 1024.0);
  checkpoint.files_per_burst = 2;
  spec.periodic.push_back(checkpoint);

  sim::BurstSpec result;
  result.kind = trace::OpKind::kWrite;
  result.position_frac = 0.97;
  result.bytes = 3ull << 30;
  spec.bursts.push_back(result);

  sim::Intent intent;
  intent.read_temporality = core::Temporality::kOnStart;
  intent.write_temporality = core::Temporality::kSteady;

  // Generate and analyze.
  util::Rng rng(seed);
  const sim::TraceGenerator generator;
  const sim::LabeledTrace labeled =
      generator.generate(spec, intent, {.job_id = 1, .user = "demo"}, rng);

  const core::Analyzer analyzer;
  const core::TraceResult analysis = analyzer.analyze(labeled.trace);

  std::printf("%s",
              json::serialize(report::trace_result_to_json(analysis)).c_str());

  std::printf("\nassigned categories:\n");
  for (const std::string& name : analysis.categories.names()) {
    std::printf("  - %s\n", name.c_str());
  }
  std::printf("\nground truth from the generator:\n");
  for (const std::string& name : labeled.truth.categories.names()) {
    std::printf("  - %s\n", name.c_str());
  }
  return 0;
}
