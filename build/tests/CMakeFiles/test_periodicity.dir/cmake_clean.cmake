file(REMOVE_RECURSE
  "CMakeFiles/test_periodicity.dir/core/test_periodicity.cpp.o"
  "CMakeFiles/test_periodicity.dir/core/test_periodicity.cpp.o.d"
  "test_periodicity"
  "test_periodicity.pdb"
  "test_periodicity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_periodicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
