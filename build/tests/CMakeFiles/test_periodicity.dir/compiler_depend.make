# Empty compiler generated dependencies file for test_periodicity.
# This may be replaced when dependencies are built.
