file(REMOVE_RECURSE
  "CMakeFiles/test_json_output.dir/report/test_json_output.cpp.o"
  "CMakeFiles/test_json_output.dir/report/test_json_output.cpp.o.d"
  "test_json_output"
  "test_json_output.pdb"
  "test_json_output[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
