# Empty compiler generated dependencies file for test_json_output.
# This may be replaced when dependencies are built.
