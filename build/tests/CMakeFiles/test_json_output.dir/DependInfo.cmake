
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/report/test_json_output.cpp" "tests/CMakeFiles/test_json_output.dir/report/test_json_output.cpp.o" "gcc" "tests/CMakeFiles/test_json_output.dir/report/test_json_output.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/mosaic_report.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mosaic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mosaic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/darshan/CMakeFiles/mosaic_darshan.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mosaic_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/mosaic_json.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mosaic_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mosaic_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mosaic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
