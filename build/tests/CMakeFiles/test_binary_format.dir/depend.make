# Empty dependencies file for test_binary_format.
# This may be replaced when dependencies are built.
