file(REMOVE_RECURSE
  "CMakeFiles/test_binary_format.dir/darshan/test_binary_format.cpp.o"
  "CMakeFiles/test_binary_format.dir/darshan/test_binary_format.cpp.o.d"
  "test_binary_format"
  "test_binary_format.pdb"
  "test_binary_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
