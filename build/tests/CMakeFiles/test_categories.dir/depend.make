# Empty dependencies file for test_categories.
# This may be replaced when dependencies are built.
