file(REMOVE_RECURSE
  "CMakeFiles/test_categories.dir/core/test_categories.cpp.o"
  "CMakeFiles/test_categories.dir/core/test_categories.cpp.o.d"
  "test_categories"
  "test_categories.pdb"
  "test_categories[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
