file(REMOVE_RECURSE
  "CMakeFiles/test_dxt.dir/sim/test_dxt.cpp.o"
  "CMakeFiles/test_dxt.dir/sim/test_dxt.cpp.o.d"
  "test_dxt"
  "test_dxt.pdb"
  "test_dxt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dxt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
