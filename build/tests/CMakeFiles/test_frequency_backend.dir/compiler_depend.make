# Empty compiler generated dependencies file for test_frequency_backend.
# This may be replaced when dependencies are built.
