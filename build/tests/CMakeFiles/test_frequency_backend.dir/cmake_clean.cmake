file(REMOVE_RECURSE
  "CMakeFiles/test_frequency_backend.dir/core/test_frequency_backend.cpp.o"
  "CMakeFiles/test_frequency_backend.dir/core/test_frequency_backend.cpp.o.d"
  "test_frequency_backend"
  "test_frequency_backend.pdb"
  "test_frequency_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequency_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
