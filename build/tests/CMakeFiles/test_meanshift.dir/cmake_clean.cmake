file(REMOVE_RECURSE
  "CMakeFiles/test_meanshift.dir/cluster/test_meanshift.cpp.o"
  "CMakeFiles/test_meanshift.dir/cluster/test_meanshift.cpp.o.d"
  "test_meanshift"
  "test_meanshift.pdb"
  "test_meanshift[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meanshift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
