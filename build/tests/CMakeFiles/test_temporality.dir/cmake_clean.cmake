file(REMOVE_RECURSE
  "CMakeFiles/test_temporality.dir/core/test_temporality.cpp.o"
  "CMakeFiles/test_temporality.dir/core/test_temporality.cpp.o.d"
  "test_temporality"
  "test_temporality.pdb"
  "test_temporality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_temporality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
