# Empty dependencies file for test_temporality.
# This may be replaced when dependencies are built.
