file(REMOVE_RECURSE
  "CMakeFiles/mosaic.dir/mosaic_main.cpp.o"
  "CMakeFiles/mosaic.dir/mosaic_main.cpp.o.d"
  "mosaic"
  "mosaic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
