# Empty dependencies file for mosaic.
# This may be replaced when dependencies are built.
