# Empty compiler generated dependencies file for mosaic.
# This may be replaced when dependencies are built.
