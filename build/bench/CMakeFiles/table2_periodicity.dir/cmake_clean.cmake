file(REMOVE_RECURSE
  "CMakeFiles/table2_periodicity.dir/table2_periodicity.cpp.o"
  "CMakeFiles/table2_periodicity.dir/table2_periodicity.cpp.o.d"
  "table2_periodicity"
  "table2_periodicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_periodicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
