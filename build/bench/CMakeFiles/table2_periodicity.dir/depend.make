# Empty dependencies file for table2_periodicity.
# This may be replaced when dependencies are built.
