file(REMOVE_RECURSE
  "CMakeFiles/ablation_merging.dir/ablation_merging.cpp.o"
  "CMakeFiles/ablation_merging.dir/ablation_merging.cpp.o.d"
  "ablation_merging"
  "ablation_merging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
