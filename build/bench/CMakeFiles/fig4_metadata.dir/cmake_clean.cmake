file(REMOVE_RECURSE
  "CMakeFiles/fig4_metadata.dir/fig4_metadata.cpp.o"
  "CMakeFiles/fig4_metadata.dir/fig4_metadata.cpp.o.d"
  "fig4_metadata"
  "fig4_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
