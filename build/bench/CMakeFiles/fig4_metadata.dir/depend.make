# Empty dependencies file for fig4_metadata.
# This may be replaced when dependencies are built.
