# Empty compiler generated dependencies file for future_autocategories.
# This may be replaced when dependencies are built.
