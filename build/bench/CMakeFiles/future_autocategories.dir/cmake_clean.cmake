file(REMOVE_RECURSE
  "CMakeFiles/future_autocategories.dir/future_autocategories.cpp.o"
  "CMakeFiles/future_autocategories.dir/future_autocategories.cpp.o.d"
  "future_autocategories"
  "future_autocategories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_autocategories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
