# Empty compiler generated dependencies file for fig3_preprocessing.
# This may be replaced when dependencies are built.
