file(REMOVE_RECURSE
  "CMakeFiles/fig3_preprocessing.dir/fig3_preprocessing.cpp.o"
  "CMakeFiles/fig3_preprocessing.dir/fig3_preprocessing.cpp.o.d"
  "fig3_preprocessing"
  "fig3_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
