file(REMOVE_RECURSE
  "CMakeFiles/fig5_jaccard.dir/fig5_jaccard.cpp.o"
  "CMakeFiles/fig5_jaccard.dir/fig5_jaccard.cpp.o.d"
  "fig5_jaccard"
  "fig5_jaccard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_jaccard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
