# Empty compiler generated dependencies file for fig5_jaccard.
# This may be replaced when dependencies are built.
