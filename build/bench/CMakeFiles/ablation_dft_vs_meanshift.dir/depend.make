# Empty dependencies file for ablation_dft_vs_meanshift.
# This may be replaced when dependencies are built.
