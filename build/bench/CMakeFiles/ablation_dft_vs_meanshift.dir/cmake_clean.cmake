file(REMOVE_RECURSE
  "CMakeFiles/ablation_dft_vs_meanshift.dir/ablation_dft_vs_meanshift.cpp.o"
  "CMakeFiles/ablation_dft_vs_meanshift.dir/ablation_dft_vs_meanshift.cpp.o.d"
  "ablation_dft_vs_meanshift"
  "ablation_dft_vs_meanshift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dft_vs_meanshift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
