file(REMOVE_RECURSE
  "CMakeFiles/table3_temporality.dir/table3_temporality.cpp.o"
  "CMakeFiles/table3_temporality.dir/table3_temporality.cpp.o.d"
  "table3_temporality"
  "table3_temporality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_temporality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
