# Empty dependencies file for table3_temporality.
# This may be replaced when dependencies are built.
