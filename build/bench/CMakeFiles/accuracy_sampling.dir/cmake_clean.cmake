file(REMOVE_RECURSE
  "CMakeFiles/accuracy_sampling.dir/accuracy_sampling.cpp.o"
  "CMakeFiles/accuracy_sampling.dir/accuracy_sampling.cpp.o.d"
  "accuracy_sampling"
  "accuracy_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
