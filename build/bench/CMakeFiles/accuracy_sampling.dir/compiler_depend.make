# Empty compiler generated dependencies file for accuracy_sampling.
# This may be replaced when dependencies are built.
