# Empty compiler generated dependencies file for future_scheduling.
# This may be replaced when dependencies are built.
