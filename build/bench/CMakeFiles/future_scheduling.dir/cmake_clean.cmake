file(REMOVE_RECURSE
  "CMakeFiles/future_scheduling.dir/future_scheduling.cpp.o"
  "CMakeFiles/future_scheduling.dir/future_scheduling.cpp.o.d"
  "future_scheduling"
  "future_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
