# Empty compiler generated dependencies file for future_interference.
# This may be replaced when dependencies are built.
