file(REMOVE_RECURSE
  "CMakeFiles/future_interference.dir/future_interference.cpp.o"
  "CMakeFiles/future_interference.dir/future_interference.cpp.o.d"
  "future_interference"
  "future_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
