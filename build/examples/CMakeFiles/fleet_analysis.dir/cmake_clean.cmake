file(REMOVE_RECURSE
  "CMakeFiles/fleet_analysis.dir/fleet_analysis.cpp.o"
  "CMakeFiles/fleet_analysis.dir/fleet_analysis.cpp.o.d"
  "fleet_analysis"
  "fleet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
