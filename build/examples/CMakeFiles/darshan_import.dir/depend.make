# Empty dependencies file for darshan_import.
# This may be replaced when dependencies are built.
