file(REMOVE_RECURSE
  "CMakeFiles/darshan_import.dir/darshan_import.cpp.o"
  "CMakeFiles/darshan_import.dir/darshan_import.cpp.o.d"
  "darshan_import"
  "darshan_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darshan_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
