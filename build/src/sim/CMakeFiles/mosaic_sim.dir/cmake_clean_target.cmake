file(REMOVE_RECURSE
  "libmosaic_sim.a"
)
