file(REMOVE_RECURSE
  "CMakeFiles/mosaic_sim.dir/corruption.cpp.o"
  "CMakeFiles/mosaic_sim.dir/corruption.cpp.o.d"
  "CMakeFiles/mosaic_sim.dir/generator.cpp.o"
  "CMakeFiles/mosaic_sim.dir/generator.cpp.o.d"
  "CMakeFiles/mosaic_sim.dir/interference.cpp.o"
  "CMakeFiles/mosaic_sim.dir/interference.cpp.o.d"
  "CMakeFiles/mosaic_sim.dir/pfs.cpp.o"
  "CMakeFiles/mosaic_sim.dir/pfs.cpp.o.d"
  "CMakeFiles/mosaic_sim.dir/population.cpp.o"
  "CMakeFiles/mosaic_sim.dir/population.cpp.o.d"
  "libmosaic_sim.a"
  "libmosaic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
