# Empty dependencies file for mosaic_sim.
# This may be replaced when dependencies are built.
