file(REMOVE_RECURSE
  "libmosaic_util.a"
)
