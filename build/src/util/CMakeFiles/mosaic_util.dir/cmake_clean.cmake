file(REMOVE_RECURSE
  "CMakeFiles/mosaic_util.dir/cli.cpp.o"
  "CMakeFiles/mosaic_util.dir/cli.cpp.o.d"
  "CMakeFiles/mosaic_util.dir/error.cpp.o"
  "CMakeFiles/mosaic_util.dir/error.cpp.o.d"
  "CMakeFiles/mosaic_util.dir/log.cpp.o"
  "CMakeFiles/mosaic_util.dir/log.cpp.o.d"
  "CMakeFiles/mosaic_util.dir/memory.cpp.o"
  "CMakeFiles/mosaic_util.dir/memory.cpp.o.d"
  "CMakeFiles/mosaic_util.dir/rng.cpp.o"
  "CMakeFiles/mosaic_util.dir/rng.cpp.o.d"
  "CMakeFiles/mosaic_util.dir/stats.cpp.o"
  "CMakeFiles/mosaic_util.dir/stats.cpp.o.d"
  "CMakeFiles/mosaic_util.dir/strings.cpp.o"
  "CMakeFiles/mosaic_util.dir/strings.cpp.o.d"
  "libmosaic_util.a"
  "libmosaic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
