# Empty dependencies file for mosaic_report.
# This may be replaced when dependencies are built.
