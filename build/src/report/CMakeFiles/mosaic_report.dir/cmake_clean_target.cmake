file(REMOVE_RECURSE
  "libmosaic_report.a"
)
