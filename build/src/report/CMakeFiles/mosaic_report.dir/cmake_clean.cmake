file(REMOVE_RECURSE
  "CMakeFiles/mosaic_report.dir/accuracy.cpp.o"
  "CMakeFiles/mosaic_report.dir/accuracy.cpp.o.d"
  "CMakeFiles/mosaic_report.dir/aggregate.cpp.o"
  "CMakeFiles/mosaic_report.dir/aggregate.cpp.o.d"
  "CMakeFiles/mosaic_report.dir/csv.cpp.o"
  "CMakeFiles/mosaic_report.dir/csv.cpp.o.d"
  "CMakeFiles/mosaic_report.dir/jaccard.cpp.o"
  "CMakeFiles/mosaic_report.dir/jaccard.cpp.o.d"
  "CMakeFiles/mosaic_report.dir/json_output.cpp.o"
  "CMakeFiles/mosaic_report.dir/json_output.cpp.o.d"
  "CMakeFiles/mosaic_report.dir/tables.cpp.o"
  "CMakeFiles/mosaic_report.dir/tables.cpp.o.d"
  "libmosaic_report.a"
  "libmosaic_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
