
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darshan/binary_format.cpp" "src/darshan/CMakeFiles/mosaic_darshan.dir/binary_format.cpp.o" "gcc" "src/darshan/CMakeFiles/mosaic_darshan.dir/binary_format.cpp.o.d"
  "/root/repo/src/darshan/io.cpp" "src/darshan/CMakeFiles/mosaic_darshan.dir/io.cpp.o" "gcc" "src/darshan/CMakeFiles/mosaic_darshan.dir/io.cpp.o.d"
  "/root/repo/src/darshan/text_format.cpp" "src/darshan/CMakeFiles/mosaic_darshan.dir/text_format.cpp.o" "gcc" "src/darshan/CMakeFiles/mosaic_darshan.dir/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mosaic_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mosaic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
