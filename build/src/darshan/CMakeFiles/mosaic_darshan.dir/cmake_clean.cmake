file(REMOVE_RECURSE
  "CMakeFiles/mosaic_darshan.dir/binary_format.cpp.o"
  "CMakeFiles/mosaic_darshan.dir/binary_format.cpp.o.d"
  "CMakeFiles/mosaic_darshan.dir/io.cpp.o"
  "CMakeFiles/mosaic_darshan.dir/io.cpp.o.d"
  "CMakeFiles/mosaic_darshan.dir/text_format.cpp.o"
  "CMakeFiles/mosaic_darshan.dir/text_format.cpp.o.d"
  "libmosaic_darshan.a"
  "libmosaic_darshan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_darshan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
