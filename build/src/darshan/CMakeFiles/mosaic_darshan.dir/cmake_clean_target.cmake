file(REMOVE_RECURSE
  "libmosaic_darshan.a"
)
