# Empty dependencies file for mosaic_darshan.
# This may be replaced when dependencies are built.
