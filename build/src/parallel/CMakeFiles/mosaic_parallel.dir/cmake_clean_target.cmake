file(REMOVE_RECURSE
  "libmosaic_parallel.a"
)
