file(REMOVE_RECURSE
  "CMakeFiles/mosaic_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/mosaic_parallel.dir/thread_pool.cpp.o.d"
  "libmosaic_parallel.a"
  "libmosaic_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
