# Empty compiler generated dependencies file for mosaic_parallel.
# This may be replaced when dependencies are built.
