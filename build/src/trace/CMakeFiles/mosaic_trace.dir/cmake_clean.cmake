file(REMOVE_RECURSE
  "CMakeFiles/mosaic_trace.dir/trace.cpp.o"
  "CMakeFiles/mosaic_trace.dir/trace.cpp.o.d"
  "libmosaic_trace.a"
  "libmosaic_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
