# Empty dependencies file for mosaic_trace.
# This may be replaced when dependencies are built.
