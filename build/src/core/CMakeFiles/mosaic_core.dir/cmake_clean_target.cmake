file(REMOVE_RECURSE
  "libmosaic_core.a"
)
