
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/categories.cpp" "src/core/CMakeFiles/mosaic_core.dir/categories.cpp.o" "gcc" "src/core/CMakeFiles/mosaic_core.dir/categories.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/mosaic_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/mosaic_core.dir/config.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/mosaic_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/mosaic_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/metadata.cpp" "src/core/CMakeFiles/mosaic_core.dir/metadata.cpp.o" "gcc" "src/core/CMakeFiles/mosaic_core.dir/metadata.cpp.o.d"
  "/root/repo/src/core/periodicity.cpp" "src/core/CMakeFiles/mosaic_core.dir/periodicity.cpp.o" "gcc" "src/core/CMakeFiles/mosaic_core.dir/periodicity.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/mosaic_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/mosaic_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/mosaic_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/mosaic_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/segmentation.cpp" "src/core/CMakeFiles/mosaic_core.dir/segmentation.cpp.o" "gcc" "src/core/CMakeFiles/mosaic_core.dir/segmentation.cpp.o.d"
  "/root/repo/src/core/temporality.cpp" "src/core/CMakeFiles/mosaic_core.dir/temporality.cpp.o" "gcc" "src/core/CMakeFiles/mosaic_core.dir/temporality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mosaic_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mosaic_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mosaic_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/mosaic_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mosaic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
