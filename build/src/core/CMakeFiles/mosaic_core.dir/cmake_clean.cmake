file(REMOVE_RECURSE
  "CMakeFiles/mosaic_core.dir/categories.cpp.o"
  "CMakeFiles/mosaic_core.dir/categories.cpp.o.d"
  "CMakeFiles/mosaic_core.dir/config.cpp.o"
  "CMakeFiles/mosaic_core.dir/config.cpp.o.d"
  "CMakeFiles/mosaic_core.dir/merge.cpp.o"
  "CMakeFiles/mosaic_core.dir/merge.cpp.o.d"
  "CMakeFiles/mosaic_core.dir/metadata.cpp.o"
  "CMakeFiles/mosaic_core.dir/metadata.cpp.o.d"
  "CMakeFiles/mosaic_core.dir/periodicity.cpp.o"
  "CMakeFiles/mosaic_core.dir/periodicity.cpp.o.d"
  "CMakeFiles/mosaic_core.dir/pipeline.cpp.o"
  "CMakeFiles/mosaic_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/mosaic_core.dir/preprocess.cpp.o"
  "CMakeFiles/mosaic_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/mosaic_core.dir/segmentation.cpp.o"
  "CMakeFiles/mosaic_core.dir/segmentation.cpp.o.d"
  "CMakeFiles/mosaic_core.dir/temporality.cpp.o"
  "CMakeFiles/mosaic_core.dir/temporality.cpp.o.d"
  "libmosaic_core.a"
  "libmosaic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
