file(REMOVE_RECURSE
  "libmosaic_cluster.a"
)
