file(REMOVE_RECURSE
  "CMakeFiles/mosaic_cluster.dir/fft.cpp.o"
  "CMakeFiles/mosaic_cluster.dir/fft.cpp.o.d"
  "CMakeFiles/mosaic_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/mosaic_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/mosaic_cluster.dir/meanshift.cpp.o"
  "CMakeFiles/mosaic_cluster.dir/meanshift.cpp.o.d"
  "libmosaic_cluster.a"
  "libmosaic_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
