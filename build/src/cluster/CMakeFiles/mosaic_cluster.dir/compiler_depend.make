# Empty compiler generated dependencies file for mosaic_cluster.
# This may be replaced when dependencies are built.
