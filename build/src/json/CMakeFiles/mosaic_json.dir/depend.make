# Empty dependencies file for mosaic_json.
# This may be replaced when dependencies are built.
