file(REMOVE_RECURSE
  "libmosaic_json.a"
)
