file(REMOVE_RECURSE
  "CMakeFiles/mosaic_json.dir/json.cpp.o"
  "CMakeFiles/mosaic_json.dir/json.cpp.o.d"
  "libmosaic_json.a"
  "libmosaic_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaic_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
