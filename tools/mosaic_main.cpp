// The `mosaic` command-line tool: one entry point for the whole system.
//
//   mosaic analyze <files|dirs...>    categorize traces one by one
//   mosaic batch <dir>                full pipeline over a trace directory:
//                                     validity funnel, per-app dedup,
//                                     category tables, JSON summary
//   mosaic generate <dir>             write a synthetic population to disk
//   mosaic thresholds                 print (or write) the thresholds config
//
// Every subcommand accepts --thresholds <file> with a JSON config
// (see `mosaic thresholds`), fulfilling the paper's requirement that the
// categorization thresholds be modifiable (§III-A).
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "darshan/binary_format.hpp"
#include "darshan/io.hpp"
#include "darshan/text_format.hpp"
#include "dist/daemon.hpp"
#include "dist/dispatch.hpp"
#include "dist/faults.hpp"
#include "dist/net.hpp"
#include "dist/telemetry.hpp"
#include "dist/worker.hpp"
#include "obs/http.hpp"
#include "ingest/ingest.hpp"
#include "ingest/reader.hpp"
#include "json/json.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "parallel/thread_pool.hpp"
#include "report/aggregate.hpp"
#include "report/confusion.hpp"
#include "report/csv.hpp"
#include "report/jaccard.hpp"
#include "report/json_output.hpp"
#include "report/partial.hpp"
#include "report/tables.hpp"
#include "sim/population.hpp"
#include "sim/truth.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace {

using namespace mosaic;

void print_usage() {
  std::fputs(
      "mosaic — detection and categorization of I/O patterns in HPC "
      "applications\n\n"
      "usage: mosaic <command> [options]\n\n"
      "commands:\n"
      "  analyze <files|dirs...>   categorize traces one by one\n"
      "  batch <dir>               full pipeline over a trace directory\n"
      "  merge <partials...>       reduce shard partial artifacts into the\n"
      "                            single-shot batch summary\n"
      "  dispatch <files|dirs...>  distribute a batch run across a worker\n"
      "                            pool with retry, reassignment and\n"
      "                            graceful degradation\n"
      "  worker --listen <addr>    serve shard tasks to a dispatch manager\n"
      "  daemon --watch|--listen   always-on analysis service: categorize\n"
      "                            arriving traces incrementally, serve\n"
      "                            cached results over HTTP (docs/API.md)\n"
      "  submit <files...>         ship traces to a running daemon\n"
      "  report <dir>              write a markdown analysis report\n"
      "  explain <file|trace-id>   render one trace's decision path\n"
      "  generate <dir>            write a synthetic trace population\n"
      "  health <metrics.json>     evaluate health/SLO rules over a saved\n"
      "                            metrics artifact (exit 1 on fail)\n"
      "  thresholds                print the thresholds config (JSON)\n\n"
      "run `mosaic <command> --help` for per-command options.\n",
      stdout);
}

/// Loads --thresholds if given; exits on error.
core::Thresholds load_thresholds(const util::CliParser& cli) {
  const auto path = cli.get("thresholds");
  if (path.empty()) return {};
  auto loaded = core::read_thresholds_file(std::string(path));
  if (!loaded.has_value()) {
    std::fprintf(stderr, "%s\n", loaded.error().to_string().c_str());
    std::exit(2);
  }
  return *loaded;
}

/// Expands files/directories into a flat list of trace paths.
std::vector<std::string> expand_paths(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      const auto scanned = darshan::scan_trace_dir(arg);
      if (!scanned.has_value()) {
        std::fprintf(stderr, "%s\n", scanned.error().to_string().c_str());
        continue;
      }
      paths.insert(paths.end(), scanned->begin(), scanned->end());
    } else {
      paths.push_back(arg);
    }
  }
  return paths;
}

/// Registers the logging options every subcommand accepts.
void add_log_cli_options(util::CliParser& cli) {
  cli.add_flag("log-json",
               "emit log lines as JSONL objects ({ts, level, msg})");
  cli.add_option("log-level", "debug | info | warn | error | off", "info");
}

/// Applies --log-json/--log-level; prints and returns false on a bad level.
bool apply_log_cli_options(const util::CliParser& cli) {
  const auto level = util::parse_log_level(cli.get("log-level"));
  if (!level.has_value()) {
    std::fprintf(stderr,
                 "--log-level must be one of debug|info|warn|error|off\n");
    return false;
  }
  util::set_log_level(*level);
  if (cli.get_flag("log-json")) util::set_log_format(util::LogFormat::kJson);
  return true;
}

/// Registers the telemetry options shared by the pipeline subcommands.
void add_obs_cli_options(util::CliParser& cli) {
  cli.add_option("metrics",
                 "write run metrics to this path as JSON, plus Prometheus "
                 "text to <path>.prom", "");
  cli.add_option("trace-events",
                 "record per-stage spans and write Chrome trace_event JSON "
                 "(chrome://tracing, Perfetto) to this path", "");
  cli.add_option("progress",
                 "log a progress heartbeat every N seconds (0 = off)", "0");
  cli.add_option("provenance",
                 "record sampled decision provenance and write "
                 "<dir>/provenance.jsonl (one record per sampled trace)", "");
  cli.add_option("provenance-sample",
                 "capture provenance for 1 in N analyzed traces", "1");
  cli.add_option("profile",
                 "sample the stage stack while the run executes and write "
                 "collapsed stacks (speedscope / flamegraph.pl) to this "
                 "path; with --trace-events the trace gains a 'profile' "
                 "lane", "");
  cli.add_option("profile-hz", "profiler sampling frequency", "97");
}

/// Validates --profile-hz; nullopt (after printing) on values <= 0.
std::optional<double> parse_profile_hz(const util::CliParser& cli) {
  const auto hz = cli.get_double("profile-hz");
  if (!hz.has_value() || *hz <= 0.0) {
    std::fprintf(stderr, "--profile-hz must be a positive frequency\n");
    return std::nullopt;
  }
  return *hz;
}

/// Validates --provenance-sample; nullopt (after printing) on values < 1.
std::optional<std::uint64_t> parse_provenance_sample(
    const util::CliParser& cli) {
  const auto sample = cli.get_int("provenance-sample");
  if (!sample.has_value() || *sample < 1) {
    std::fprintf(stderr, "--provenance-sample must be a positive integer\n");
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(*sample);
}

/// Arms the sinks requested via --metrics/--trace-events/--progress and
/// flushes them when the subcommand returns. The destructor covers early
/// error exits so an aborted run still leaves its telemetry behind.
class ObsSession {
 public:
  ObsSession(std::string metrics_path, std::string trace_path,
             double progress_seconds, std::string provenance_dir = "",
             std::uint64_t provenance_sample = 1,
             std::string profile_path = "",
             double profile_hz = obs::Profiler::kDefaultHz)
      : metrics_path_(std::move(metrics_path)),
        trace_path_(std::move(trace_path)),
        provenance_dir_(std::move(provenance_dir)),
        profile_path_(std::move(profile_path)) {
    if (!trace_path_.empty()) obs::SpanTracer::global().enable();
    if (!provenance_dir_.empty()) {
      obs::ProvenanceJournal::global().enable(provenance_sample);
    }
    if (!profile_path_.empty()) obs::Profiler::global().enable(profile_hz);
    if (progress_seconds > 0.0) {
      heartbeat_ = std::make_unique<obs::Heartbeat>(progress_seconds);
    }
  }

  ~ObsSession() { finish(); }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Stops the heartbeat and writes the requested files (idempotent).
  /// Returns false if a sink could not be written.
  bool finish() {
    if (finished_) return ok_;
    finished_ = true;
    if (heartbeat_ != nullptr) heartbeat_->stop();
    if (!profile_path_.empty()) {
      // Stop sampling before flushing any sink so the profiler's own
      // bookkeeping never lands in the written artifacts.
      auto& profiler = obs::Profiler::global();
      profiler.disable();
      if (const auto status = profiler.write_collapsed(profile_path_);
          !status.ok()) {
        std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
        ok_ = false;
      } else {
        std::printf("profile (%llu sample(s)) written to %s\n",
                    static_cast<unsigned long long>(profiler.sample_count()),
                    profile_path_.c_str());
      }
    }
    if (!metrics_path_.empty()) {
      if (const auto status = obs::write_metrics_files(metrics_path_);
          !status.ok()) {
        std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
        ok_ = false;
      } else {
        std::printf("metrics written to %s and %s.prom\n",
                    metrics_path_.c_str(), metrics_path_.c_str());
      }
    }
    if (!trace_path_.empty()) {
      auto& tracer = obs::SpanTracer::global();
      // A profiled run writes the two-lane trace (spans + profile samples);
      // a plain run keeps the single-lane span trace.
      const auto status =
          profile_path_.empty()
              ? tracer.write_chrome_trace(trace_path_)
              : obs::write_chrome_trace_with_profile(trace_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
        ok_ = false;
      } else {
        std::printf("trace events written to %s\n", trace_path_.c_str());
        if (tracer.dropped() > 0) {
          MOSAIC_LOG_WARN("trace: %llu spans dropped (ring buffers full)",
                          static_cast<unsigned long long>(tracer.dropped()));
        }
      }
      tracer.disable();
    }
    if (!provenance_dir_.empty()) {
      auto& journal = obs::ProvenanceJournal::global();
      std::error_code ec;
      std::filesystem::create_directories(provenance_dir_, ec);
      const std::string path = provenance_dir_ + "/provenance.jsonl";
      if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n", provenance_dir_.c_str(),
                     ec.message().c_str());
        ok_ = false;
      } else if (const auto status = journal.write_jsonl(path); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
        ok_ = false;
      } else {
        std::printf("provenance (%zu record(s)) written to %s\n",
                    journal.size(), path.c_str());
      }
      journal.disable();
      journal.reset();
    }
    return ok_;
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string provenance_dir_;
  std::string profile_path_;
  std::unique_ptr<obs::Heartbeat> heartbeat_;
  bool finished_ = false;
  bool ok_ = true;
};

/// Validates --progress; nullopt (after printing) on a negative value.
std::optional<double> parse_progress(const util::CliParser& cli) {
  const auto progress = cli.get_double("progress");
  if (!progress.has_value() || *progress < 0.0) {
    std::fprintf(stderr, "--progress must be a non-negative number of "
                         "seconds\n");
    return std::nullopt;
  }
  return *progress;
}

/// Registers the fault-tolerance options shared by the ingest-driven
/// subcommands (batch, report, analyze).
void add_ingest_cli_options(util::CliParser& cli) {
  cli.add_option("retries", "extra read attempts for transient I/O errors",
                 "3");
  cli.add_option("deadline",
                 "per-file read+retry+parse budget in seconds (0 = unlimited)",
                 "30");
  cli.add_option("max-in-flight",
                 "files concurrently in memory (0 = 4x threads)", "0");
  cli.add_option("quarantine",
                 "move poison files (parse/corrupt/timeout) to this dir", "");
  cli.add_option("journal", "append per-file outcomes to this resume journal",
                 "");
  cli.add_flag("resume", "replay outcomes already in --journal");
  cli.add_option("fault-inject",
                 "inject deterministic I/O faults, e.g. "
                 "seed=7,eio=0.2,short=0.1,flip=0.1,delay=0.1,delay_ms=5", "");
  cli.add_option("abort-after",
                 "testing: simulate a crash after N ingested files", "0");
}

/// Builds IngestOptions from the CLI; prints and returns nullopt on invalid
/// values. `faulty` keeps an injected reader alive for the options' lifetime.
std::optional<ingest::IngestOptions> make_ingest_options(
    const util::CliParser& cli,
    std::unique_ptr<ingest::FaultyFileReader>& faulty) {
  ingest::IngestOptions options;
  const auto non_negative_int = [&cli](std::string_view name)
      -> std::optional<std::int64_t> {
    const auto value = cli.get_int(name);
    if (!value.has_value() || *value < 0) {
      std::fprintf(stderr, "--%s must be a non-negative integer\n",
                   std::string(name).c_str());
      return std::nullopt;
    }
    return *value;
  };
  const auto retries = non_negative_int("retries");
  const auto in_flight = non_negative_int("max-in-flight");
  const auto abort_after = non_negative_int("abort-after");
  const auto deadline = cli.get_double("deadline");
  if (!retries || !in_flight || !abort_after) return std::nullopt;
  if (!deadline.has_value() || *deadline < 0.0) {
    std::fprintf(stderr, "--deadline must be a non-negative number\n");
    return std::nullopt;
  }
  options.max_retries = static_cast<int>(*retries);
  options.max_in_flight = static_cast<std::size_t>(*in_flight);
  options.abort_after_files = static_cast<std::size_t>(*abort_after);
  options.file_deadline_seconds = *deadline;
  options.quarantine_dir = std::string(cli.get("quarantine"));
  options.journal_path = std::string(cli.get("journal"));
  options.resume = cli.get_flag("resume");
  if (options.resume && options.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal\n");
    return std::nullopt;
  }
  if (const auto spec_text = cli.get("fault-inject"); !spec_text.empty()) {
    const auto spec = ingest::FaultSpec::parse(spec_text);
    if (!spec.has_value()) {
      std::fprintf(stderr, "%s\n", spec.error().to_string().c_str());
      return std::nullopt;
    }
    faulty = std::make_unique<ingest::FaultyFileReader>(*spec);
    options.reader = faulty.get();
  }
  return options;
}

/// Validates --threads: a negative count (e.g. --threads -1) must not be
/// cast into ~2^64 workers.
std::optional<std::size_t> parse_thread_count(const util::CliParser& cli) {
  const auto threads = cli.get_int("threads");
  if (!threads.has_value() || *threads < 0) {
    std::fprintf(stderr,
                 "--threads must be a non-negative integer (0 = hardware)\n");
    return std::nullopt;
  }
  return static_cast<std::size_t>(*threads);
}

/// Renders the per-reason eviction table fed by the ingest funnel.
void print_eviction_table(const core::PreprocessStats& stats) {
  if (stats.eviction_breakdown.empty()) return;
  std::printf("evictions by reason:\n");
  report::TextTable table({"reason", "files"});
  for (const auto& [code, count] : stats.eviction_breakdown) {
    table.add_row({code, std::to_string(count)});
  }
  for (const auto& [kind, count] : stats.corruption_breakdown) {
    table.add_row({"  corrupt-trace/" + kind, std::to_string(count)});
  }
  std::fputs(table.render().c_str(), stdout);
}

/// Shared tail of `mosaic batch` and `mosaic merge`: funnel summary,
/// category distribution, optional Jaccard heatmap and JSON summary file.
/// Returns false when the JSON summary could not be written.
bool print_batch_summary(const core::BatchResult& batch,
                         const util::CliParser& cli) {
  const auto& stats = batch.preprocess;
  std::printf("funnel: %zu input, %zu load-failed, %zu corrupted, "
              "%zu applications retained\n",
              stats.input_traces, stats.load_failed, stats.corrupted,
              stats.retained);
  print_eviction_table(stats);
  std::printf("\n");

  const report::CategoryDistribution distribution =
      report::aggregate_categories(batch);
  report::TextTable table({"category", "applications", "executions"});
  for (const core::Category category : core::all_categories()) {
    if (distribution.single[static_cast<std::size_t>(category)] == 0) continue;
    table.add_row(
        {std::string(core::category_name(category)),
         util::format_percent(distribution.single_fraction(category)),
         util::format_percent(distribution.weighted_fraction(category))});
  }
  std::fputs(table.render().c_str(), stdout);

  if (cli.get_flag("heatmap")) {
    std::printf("\nJaccard heatmap (>= 1%%):\n");
    std::fputs(
        report::render_heatmap(report::jaccard_matrix(batch.results), 0.01)
            .c_str(),
        stdout);
  }

  if (const auto json_path = cli.get("json"); !json_path.empty()) {
    if (const auto status =
            report::write_batch_json(batch, std::string(json_path));
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
      return false;
    }
    std::printf("\nJSON summary written to %s\n",
                std::string(json_path).c_str());
  }
  return true;
}

/// Ingests and analyzes the corpus slice `spec` owns and assembles its
/// partial artifact (all fields except the obs paths, which depend on the
/// caller's session mode). The resume journal is suffixed per shard so
/// shard runs never share one. Returns an exit code; 0 fills `out`.
int run_shard_batch(const ingest::ShardSpec& spec,
                    const ingest::IngestOptions& base,
                    const std::vector<std::string>& paths,
                    const core::Thresholds& thresholds,
                    parallel::ThreadPool& pool,
                    report::PartialArtifact& out) {
  ingest::IngestOptions options = base;
  options.shard = spec;
  if (!options.journal_path.empty()) {
    options.journal_path =
        ingest::shard_suffix_path(base.journal_path, spec.index);
  }
  util::Stopwatch watch;
  auto ingested = ingest::ingest_paths(paths, options, pool);
  if (!ingested.has_value()) {
    std::fprintf(stderr, "%s\n", ingested.error().to_string().c_str());
    return 2;
  }
  const ingest::IngestStats io = ingested->stats;
  std::printf("shard %zu/%zu: ingested %zu files: %zu loaded, %zu evicted "
              "before validity (%zu recovered after retry, %zu quarantined, "
              "%zu replayed from journal) in %s\n",
              spec.index, spec.count, io.files_scanned, io.loaded, io.failed,
              io.recovered, io.quarantined, io.journal_replayed,
              util::format_duration(watch.elapsed_seconds()).c_str());
  if (io.aborted) {
    std::fprintf(stderr,
                 "mosaic batch: shard %zu/%zu aborted after %zu files "
                 "(simulated crash); re-run with --journal %s --resume to "
                 "continue\n",
                 spec.index, spec.count, options.abort_after_files,
                 options.journal_path.empty() ? "<path>"
                                              : options.journal_path.c_str());
    return 3;
  }

  // Snapshot the dedup digests before analysis consumes the traces: the
  // merge needs (total bytes, source path) to replay cross-shard dedup.
  std::vector<std::uint64_t> retained_bytes;
  retained_bytes.reserve(ingested->pre.retained.size());
  for (const trace::Trace& t : ingested->pre.retained) {
    retained_bytes.push_back(t.total_bytes());
  }
  std::vector<std::string> retained_paths =
      std::move(ingested->pre.retained_paths);

  core::BatchResult batch =
      core::analyze_preprocessed(std::move(ingested->pre), thresholds, &pool);
  MOSAIC_ASSERT(batch.results.size() == retained_paths.size());

  out = report::PartialArtifact{};
  out.shard_index = spec.index;
  out.shard_count = spec.count;
  out.ingest = io;
  out.stats = batch.preprocess;
  out.runs_per_app = std::move(batch.runs_per_app);
  out.journal_path = options.journal_path;
  out.traces.reserve(batch.results.size());
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    report::ShardTraceResult entry;
    entry.result = std::move(batch.results[i]);
    entry.source_path = std::move(retained_paths[i]);
    entry.total_bytes = retained_bytes[i];
    out.traces.push_back(std::move(entry));
  }
  return 0;
}

/// Reads + merges partial artifacts named by files/directories. Returns
/// nullopt after printing (exit code in `*exit_code`).
std::optional<report::MergedPartials> load_and_merge_partials(
    const std::vector<std::string>& args, std::size_t* artifact_count,
    int* exit_code) {
  auto artifact_paths = report::expand_partial_paths(args);
  if (!artifact_paths.has_value()) {
    std::fprintf(stderr, "%s\n", artifact_paths.error().to_string().c_str());
    *exit_code = 2;
    return std::nullopt;
  }
  std::vector<report::PartialArtifact> partials;
  partials.reserve(artifact_paths->size());
  for (const std::string& path : *artifact_paths) {
    auto partial = report::read_partial(path);
    if (!partial.has_value()) {
      std::fprintf(stderr, "%s\n", partial.error().to_string().c_str());
      *exit_code = 1;
      return std::nullopt;
    }
    partials.push_back(std::move(*partial));
  }
  auto merged = report::merge_partials(std::move(partials));
  if (!merged.has_value()) {
    std::fprintf(stderr, "%s\n", merged.error().to_string().c_str());
    *exit_code = 2;
    return std::nullopt;
  }
  if (artifact_count != nullptr) *artifact_count = artifact_paths->size();
  return std::move(*merged);
}

int cmd_analyze(int argc, char** argv) {
  util::CliParser cli("mosaic analyze", "categorize traces one by one");
  cli.add_option("thresholds", "JSON thresholds config", "");
  cli.add_flag("json", "print the full JSON per trace");
  add_ingest_cli_options(cli);
  add_obs_cli_options(cli);
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;
  const auto paths = expand_paths(cli.positional());
  if (paths.empty()) {
    std::fprintf(stderr, "mosaic analyze: no input traces\n");
    return 2;
  }
  std::unique_ptr<ingest::FaultyFileReader> faulty;
  const auto options = make_ingest_options(cli, faulty);
  if (!options.has_value()) return 2;
  const auto progress = parse_progress(cli);
  if (!progress.has_value()) return 2;
  const auto provenance_sample = parse_provenance_sample(cli);
  if (!provenance_sample.has_value()) return 2;
  const auto profile_hz = parse_profile_hz(cli);
  if (!profile_hz.has_value()) return 2;
  ObsSession obs_session(std::string(cli.get("metrics")),
                         std::string(cli.get("trace-events")), *progress,
                         std::string(cli.get("provenance")),
                         *provenance_sample, std::string(cli.get("profile")),
                         *profile_hz);
  const core::Analyzer analyzer(load_thresholds(cli));
  int failures = 0;
  for (const std::string& path : paths) {
    auto parsed = ingest::load_trace(path, *options);
    if (!parsed.has_value()) {
      std::printf("%-48s LOAD ERROR (%s)\n", path.c_str(),
                  parsed.error().to_string().c_str());
      ++failures;
      continue;
    }
    if (const auto validity = trace::validate(*parsed); !validity.valid()) {
      std::printf("%-48s CORRUPTED (%s)\n", path.c_str(),
                  trace::corruption_kind_name(validity.kind));
      ++failures;
      continue;
    }
    const core::TraceResult result = analyzer.analyze(*parsed);
    if (cli.get_flag("json")) {
      std::printf("%s\n",
                  json::serialize(report::trace_result_to_json(result)).c_str());
    } else {
      std::printf("%-48s %s\n", path.c_str(),
                  util::join(result.categories.names(), ", ").c_str());
    }
  }
  if (!obs_session.finish()) return 1;
  return failures == 0 ? 0 : 1;
}

int cmd_batch(int argc, char** argv) {
  util::CliParser cli("mosaic batch",
                      "full pipeline (funnel + dedup + tables) over a "
                      "trace directory");
  cli.add_option("thresholds", "JSON thresholds config", "");
  cli.add_option("threads", "worker threads (0 = hardware)", "0");
  cli.add_option("json", "write the JSON summary to this path", "");
  cli.add_flag("heatmap", "render the Jaccard heatmap");
  cli.add_option("shard",
                 "own only shard K of N (format K/N) and write a partial "
                 "artifact to --partials; reduce with `mosaic merge`", "");
  cli.add_option("shards",
                 "out-of-core mode: analyze all N shards sequentially "
                 "in-process, writing partials, then merge (0 = off)", "0");
  cli.add_option("partials",
                 "directory for partial artifacts (results.shard-K.json)",
                 "");
  add_ingest_cli_options(cli);
  add_obs_cli_options(cli);
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;
  const auto paths = expand_paths(cli.positional());
  if (paths.empty()) {
    std::fprintf(stderr, "mosaic batch: no input traces\n");
    return 2;
  }
  const auto thread_count = parse_thread_count(cli);
  if (!thread_count.has_value()) return 2;
  std::unique_ptr<ingest::FaultyFileReader> faulty;
  const auto options = make_ingest_options(cli, faulty);
  if (!options.has_value()) return 2;
  const auto progress = parse_progress(cli);
  if (!progress.has_value()) return 2;
  const auto provenance_sample = parse_provenance_sample(cli);
  if (!provenance_sample.has_value()) return 2;

  const std::string shard_text{cli.get("shard")};
  const auto shard_total = cli.get_int("shards");
  if (!shard_total.has_value() || *shard_total < 0) {
    std::fprintf(stderr, "--shards must be a non-negative integer\n");
    return 2;
  }
  if (!shard_text.empty() && *shard_total > 0) {
    std::fprintf(stderr, "--shard and --shards are mutually exclusive\n");
    return 2;
  }
  std::optional<ingest::ShardSpec> shard;
  if (!shard_text.empty()) {
    const auto spec = ingest::parse_shard_spec(shard_text);
    if (!spec.has_value()) {
      std::fprintf(stderr, "%s\n", spec.error().to_string().c_str());
      return 2;
    }
    shard = *spec;
  }
  const std::string partials_dir{cli.get("partials")};
  if ((shard.has_value() || *shard_total > 0) && partials_dir.empty()) {
    std::fprintf(stderr, "--shard/--shards require --partials <dir>\n");
    return 2;
  }
  if (shard.has_value() && !cli.get("json").empty()) {
    std::fprintf(stderr,
                 "--json applies to the merged result; run `mosaic merge` "
                 "over the partials instead\n");
    return 2;
  }

  // A shard run derives its obs paths from the shard id so N concurrent
  // shard processes launched from one command line never clobber each
  // other's metrics/trace/provenance files.
  std::string metrics_path{cli.get("metrics")};
  std::string trace_path{cli.get("trace-events")};
  std::string provenance_dir{cli.get("provenance")};
  if (shard.has_value()) {
    if (!metrics_path.empty()) {
      metrics_path = ingest::shard_suffix_path(metrics_path, shard->index);
    }
    if (!trace_path.empty()) {
      trace_path = ingest::shard_suffix_path(trace_path, shard->index);
    }
    if (!provenance_dir.empty()) {
      provenance_dir = ingest::shard_suffix_path(provenance_dir,
                                                 shard->index);
    }
  }
  const auto profile_hz = parse_profile_hz(cli);
  if (!profile_hz.has_value()) return 2;
  std::string profile_path{cli.get("profile")};
  if (shard.has_value() && !profile_path.empty()) {
    profile_path = ingest::shard_suffix_path(profile_path, shard->index);
  }
  ObsSession obs_session(metrics_path, trace_path, *progress, provenance_dir,
                         *provenance_sample, profile_path, *profile_hz);
  if (!partials_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(partials_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", partials_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  parallel::ThreadPool pool(*thread_count);
  const core::Thresholds thresholds = load_thresholds(cli);

  if (shard.has_value()) {
    report::PartialArtifact partial;
    if (const int rc = run_shard_batch(*shard, *options, paths, thresholds,
                                       pool, partial);
        rc != 0) {
      return rc;
    }
    partial.metrics_path = metrics_path;
    partial.provenance_path = provenance_dir.empty()
                                  ? std::string()
                                  : provenance_dir + "/provenance.jsonl";
    const std::string out_path =
        partials_dir + "/" + ingest::partial_filename(shard->index);
    if (const auto status = report::write_partial(partial, out_path);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
      return 1;
    }
    std::printf("partial artifact (%zu application(s)) written to %s\n",
                partial.traces.size(), out_path.c_str());
    if (!obs_session.finish()) return 1;
    return 0;
  }

  if (*shard_total > 0) {
    // Out-of-core mode: one shard's traces in memory at a time; every
    // partial goes through the disk round trip `mosaic merge` uses, so
    // serialization fidelity is exercised on every run, not just in tests.
    std::vector<report::PartialArtifact> partials;
    const auto count = static_cast<std::size_t>(*shard_total);
    partials.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      report::PartialArtifact partial;
      if (const int rc = run_shard_batch(ingest::ShardSpec{k, count},
                                         *options, paths, thresholds, pool,
                                         partial);
          rc != 0) {
        return rc;
      }
      const std::string out_path =
          partials_dir + "/" + ingest::partial_filename(k);
      if (const auto status = report::write_partial(partial, out_path);
          !status.ok()) {
        std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
        return 1;
      }
      auto reloaded = report::read_partial(out_path);
      if (!reloaded.has_value()) {
        std::fprintf(stderr, "%s\n", reloaded.error().to_string().c_str());
        return 1;
      }
      partials.push_back(std::move(*reloaded));
    }
    auto merged = report::merge_partials(std::move(partials));
    if (!merged.has_value()) {
      std::fprintf(stderr, "%s\n", merged.error().to_string().c_str());
      return 1;
    }
    std::printf("merged %zu shard partial(s) from %s\n\n", count,
                partials_dir.c_str());
    if (!print_batch_summary(merged->batch, cli)) return 1;
    if (!obs_session.finish()) return 1;
    return 0;
  }

  // Stream the corpus through the pool: bounded in-flight memory, retries
  // for transient I/O errors, every failure classified into the funnel.
  util::Stopwatch watch;
  auto ingested = ingest::ingest_paths(paths, *options, pool);
  if (!ingested.has_value()) {
    std::fprintf(stderr, "%s\n", ingested.error().to_string().c_str());
    return 2;
  }
  const ingest::IngestStats& io = ingested->stats;
  std::printf("ingested %zu files: %zu loaded, %zu evicted before validity "
              "(%zu recovered after retry, %zu quarantined, %zu replayed "
              "from journal) in %s\n",
              io.files_scanned, io.loaded, io.failed, io.recovered,
              io.quarantined, io.journal_replayed,
              util::format_duration(watch.elapsed_seconds()).c_str());
  if (io.aborted) {
    std::fprintf(stderr,
                 "mosaic batch: aborted after %zu files (simulated crash); "
                 "re-run with --journal %s --resume to continue\n",
                 options->abort_after_files,
                 options->journal_path.empty() ? "<path>"
                                               : options->journal_path.c_str());
    return 3;
  }

  watch.reset();
  const core::BatchResult batch =
      core::analyze_preprocessed(std::move(ingested->pre), thresholds, &pool);
  std::printf("analyzed in %s\n\n",
              util::format_duration(watch.elapsed_seconds()).c_str());

  if (!print_batch_summary(batch, cli)) return 1;
  if (!obs_session.finish()) return 1;
  return 0;
}

int cmd_merge(int argc, char** argv) {
  util::CliParser cli("mosaic merge",
                      "reduce shard partial artifacts into the single-shot "
                      "batch summary");
  cli.add_option("json", "write the JSON summary to this path", "");
  cli.add_flag("heatmap", "render the Jaccard heatmap");
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "mosaic merge: no partial artifacts (pass files or the "
                 "--partials directory of a sharded batch)\n");
    return 2;
  }
  std::size_t artifact_count = 0;
  int exit_code = 0;
  auto merged = load_and_merge_partials(cli.positional(), &artifact_count,
                                        &exit_code);
  if (!merged.has_value()) return exit_code;
  const ingest::IngestStats& io = merged->ingest;
  std::printf("merged %zu partial(s): %zu files scanned, %zu loaded, %zu "
              "evicted before validity (%zu recovered, %zu quarantined, %zu "
              "replayed from journal)\n\n",
              artifact_count, io.files_scanned, io.loaded, io.failed,
              io.recovered, io.quarantined, io.journal_replayed);
  if (!print_batch_summary(merged->batch, cli)) return 1;
  return 0;
}

/// Cooperative stop for SIGINT/SIGTERM: dispatch polls the flag at every
/// scheduling step and flushes its journal before returning; a worker exits
/// at its next accept/idle check.
std::atomic<bool> g_stop_requested{false};
dist::Worker* g_signal_worker = nullptr;

void handle_stop_signal(int /*signum*/) {
  g_stop_requested.store(true, std::memory_order_relaxed);
  if (g_signal_worker != nullptr) g_signal_worker->stop();
}

void install_stop_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

/// Validates a positive --<name> seconds value; nullopt after printing.
std::optional<double> parse_positive_seconds(const util::CliParser& cli,
                                             std::string_view name) {
  const auto value = cli.get_double(name);
  if (!value.has_value() || *value <= 0.0) {
    std::fprintf(stderr,
                 "--%s must be a positive number of seconds (got '%s')\n",
                 std::string(name).c_str(),
                 std::string(cli.get(name)).c_str());
    return std::nullopt;
  }
  return *value;
}

/// Validates a non-negative --<name> seconds value (0 = unlimited).
std::optional<double> parse_seconds_or_zero(const util::CliParser& cli,
                                            std::string_view name) {
  const auto value = cli.get_double(name);
  if (!value.has_value() || *value < 0.0) {
    std::fprintf(stderr,
                 "--%s must be a non-negative number of seconds, 0 for "
                 "unlimited (got '%s')\n",
                 std::string(name).c_str(),
                 std::string(cli.get(name)).c_str());
    return std::nullopt;
  }
  return *value;
}

/// --metrics-token with the $MOSAIC_METRICS_TOKEN fallback. The flag wins
/// over the environment so a scripted per-run override works.
std::string metrics_token_from_cli(const util::CliParser& cli) {
  std::string token(cli.get("metrics-token"));
  if (token.empty()) {
    if (const char* env = std::getenv("MOSAIC_METRICS_TOKEN");
        env != nullptr) {
      token = env;
    }
  }
  return token;
}

/// Loads --health-rules if given; nullopt (after printing) on a bad file.
/// An empty vector means the flag was absent (callers keep their defaults).
std::optional<std::vector<obs::HealthRule>> parse_health_rules(
    const util::CliParser& cli) {
  const auto path = cli.get("health-rules");
  if (path.empty()) return std::vector<obs::HealthRule>{};
  auto rules = obs::load_health_rules(std::string(path));
  if (!rules.has_value()) {
    std::fprintf(stderr, "--health-rules: %s\n",
                 rules.error().to_string().c_str());
    return std::nullopt;
  }
  return std::move(*rules);
}

int cmd_worker(int argc, char** argv) {
  util::CliParser cli("mosaic worker",
                      "serve shard tasks to a dispatch manager");
  cli.add_option("listen",
                 "host:port to listen on (port 0 binds an ephemeral port, "
                 "printed on startup)", "127.0.0.1:9100");
  cli.add_option("threads", "shard-driver threads (0 = hardware)", "0");
  cli.add_option("heartbeat-interval",
                 "seconds between heartbeat frames while a task runs", "1");
  cli.add_flag("once", "exit after serving one manager session");
  cli.add_option("net-fault-inject",
                 "inject deterministic network faults, e.g. "
                 "seed=7,close=0.25,corrupt=0.25,corrupt_failures=1,"
                 "stall=0.25,stall_ms=400,kill_after=2", "");
  add_obs_cli_options(cli);
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;

  const auto listen = dist::parse_address(cli.get("listen"));
  if (!listen.has_value()) {
    std::fprintf(stderr, "--listen: %s\n",
                 listen.error().to_string().c_str());
    return 2;
  }
  const auto thread_count = parse_thread_count(cli);
  if (!thread_count.has_value()) return 2;
  const auto heartbeat = parse_positive_seconds(cli, "heartbeat-interval");
  if (!heartbeat.has_value()) return 2;
  const auto progress = parse_progress(cli);
  if (!progress.has_value()) return 2;
  const auto provenance_sample = parse_provenance_sample(cli);
  if (!provenance_sample.has_value()) return 2;

  dist::WorkerOptions options;
  options.listen = *listen;
  options.threads = *thread_count;
  options.heartbeat_interval_seconds = *heartbeat;
  options.once = cli.get_flag("once");
  if (const auto spec_text = cli.get("net-fault-inject");
      !spec_text.empty()) {
    const auto spec = dist::NetFaultSpec::parse(spec_text);
    if (!spec.has_value()) {
      std::fprintf(stderr, "--net-fault-inject: %s\n",
                   spec.error().to_string().c_str());
      return 2;
    }
    options.fault = *spec;
  }

  const auto profile_hz = parse_profile_hz(cli);
  if (!profile_hz.has_value()) return 2;

  // Worker-local telemetry sinks. Note the federation path needs none of
  // these: snapshots ship to the manager on heartbeats regardless, and
  // span collection is switched on by the task request itself.
  ObsSession obs_session(std::string(cli.get("metrics")),
                         std::string(cli.get("trace-events")), *progress,
                         std::string(cli.get("provenance")),
                         *provenance_sample, std::string(cli.get("profile")),
                         *profile_hz);

  dist::Worker worker(std::move(options));
  if (const auto status = worker.bind(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
    return 1;
  }
  // The shell harness scrapes this line for the ephemeral port.
  std::printf("worker listening on %s:%u\n", listen->host.c_str(),
              static_cast<unsigned>(worker.port()));
  std::fflush(stdout);

  g_signal_worker = &worker;
  install_stop_handlers();
  const auto status = worker.serve();
  g_signal_worker = nullptr;
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
    return 1;
  }
  const dist::WorkerStats& stats = worker.stats();
  std::printf("worker served %zu session(s): %zu task(s) done, %zu task "
              "error(s)%s\n",
              stats.sessions, stats.tasks_done, stats.task_errors,
              stats.killed_by_fault ? " (killed by fault injection)" : "");
  if (!obs_session.finish()) return 1;
  return 0;
}

int cmd_dispatch(int argc, char** argv) {
  util::CliParser cli("mosaic dispatch",
                      "distribute a batch run across a worker pool with "
                      "retry, reassignment and graceful degradation");
  cli.add_option("workers",
                 "comma-separated worker addresses (host:port,host:port)",
                 "");
  cli.add_option("shards",
                 "shard tasks to partition the corpus into (0 = one per "
                 "worker)", "0");
  cli.add_option("partials",
                 "directory for received partial artifacts "
                 "(results.shard-K.json)", "");
  cli.add_option("thresholds", "JSON thresholds config", "");
  cli.add_option("json", "write the merged JSON summary to this path", "");
  cli.add_flag("heatmap", "render the Jaccard heatmap");
  cli.add_option("task-deadline",
                 "wall-clock budget per task attempt in seconds "
                 "(0 = unlimited)", "300");
  cli.add_option("heartbeat-grace",
                 "declare a worker hung after this many silent seconds",
                 "5");
  cli.add_option("connect-timeout", "per-connect budget in seconds", "5");
  cli.add_option("max-attempts",
                 "assignments a task may consume before quarantine", "3");
  cli.add_option("reconnect-attempts",
                 "reconnects before a worker is declared lost", "2");
  cli.add_option("retries",
                 "per-file ingest retries forwarded to workers", "3");
  cli.add_option("deadline",
                 "per-file ingest budget in seconds forwarded to workers "
                 "(0 = unlimited)", "30");
  cli.add_option("threads",
                 "in-process threads for degraded mode (0 = hardware)", "0");
  cli.add_option("journal",
                 "append task outcomes to this resume journal (JSONL)", "");
  cli.add_flag("resume", "replay outcomes already in --journal");
  cli.add_flag("no-degraded",
               "fail instead of finishing in-process when every worker is "
               "lost");
  cli.add_option("abort-after-partials",
                 "testing: simulate a manager crash after N received "
                 "partials", "0");
  cli.add_option("metrics-port",
                 "serve live GET /metrics (Prometheus), /metrics.json, "
                 "/status, /healthz and /profile on 127.0.0.1:<port> while "
                 "the run is in flight (0 = ephemeral port, printed on "
                 "startup; empty = off)", "");
  cli.add_option("metrics-token",
                 "require `Authorization: Bearer <token>` on every endpoint "
                 "request (default: $MOSAIC_METRICS_TOKEN; empty = open)",
                 "");
  cli.add_option("health-rules",
                 "JSON rules file replacing the built-in fleet health rules "
                 "(see `mosaic health --print-rules`)", "");
  add_obs_cli_options(cli);
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;

  dist::DispatchOptions options;
  const auto workers_text = cli.get("workers");
  if (workers_text.empty()) {
    std::fprintf(stderr,
                 "mosaic dispatch: --workers is required (comma-separated "
                 "host:port list)\n");
    return 2;
  }
  auto workers = dist::parse_address_list(workers_text);
  if (!workers.has_value()) {
    std::fprintf(stderr, "--workers: %s\n",
                 workers.error().to_string().c_str());
    return 2;
  }
  options.workers = std::move(*workers);

  options.paths = cli.positional();
  if (options.paths.empty()) {
    std::fprintf(stderr, "mosaic dispatch: no input traces\n");
    return 2;
  }
  options.out_dir = std::string(cli.get("partials"));
  if (options.out_dir.empty()) {
    std::fprintf(stderr, "mosaic dispatch: --partials <dir> is required\n");
    return 2;
  }

  const auto non_negative_int = [&cli](std::string_view name)
      -> std::optional<std::int64_t> {
    const auto value = cli.get_int(name);
    if (!value.has_value() || *value < 0) {
      std::fprintf(stderr, "--%s must be a non-negative integer (got '%s')\n",
                   std::string(name).c_str(),
                   std::string(cli.get(name)).c_str());
      return std::nullopt;
    }
    return *value;
  };
  const auto shards = non_negative_int("shards");
  const auto max_attempts = non_negative_int("max-attempts");
  const auto reconnects = non_negative_int("reconnect-attempts");
  const auto retries = non_negative_int("retries");
  const auto abort_after = non_negative_int("abort-after-partials");
  if (!shards || !max_attempts || !reconnects || !retries || !abort_after) {
    return 2;
  }
  if (*max_attempts < 1) {
    std::fprintf(stderr, "--max-attempts must be at least 1\n");
    return 2;
  }
  const auto task_deadline = parse_seconds_or_zero(cli, "task-deadline");
  const auto grace = parse_positive_seconds(cli, "heartbeat-grace");
  const auto connect_timeout =
      parse_positive_seconds(cli, "connect-timeout");
  const auto file_deadline = parse_seconds_or_zero(cli, "deadline");
  if (!task_deadline || !grace || !connect_timeout || !file_deadline) {
    return 2;
  }
  const auto thread_count = parse_thread_count(cli);
  if (!thread_count.has_value()) return 2;
  const auto progress = parse_progress(cli);
  if (!progress.has_value()) return 2;
  const auto provenance_sample = parse_provenance_sample(cli);
  if (!provenance_sample.has_value()) return 2;

  options.shard_count = static_cast<std::size_t>(*shards);
  options.max_task_attempts = static_cast<std::size_t>(*max_attempts);
  options.reconnect_attempts = static_cast<std::size_t>(*reconnects);
  options.ingest_max_retries = static_cast<int>(*retries);
  options.abort_after_partials = static_cast<std::size_t>(*abort_after);
  options.task_deadline_seconds = *task_deadline;
  options.heartbeat_grace_seconds = *grace;
  options.connect_timeout_seconds = *connect_timeout;
  options.ingest_file_deadline_seconds = *file_deadline;
  options.degraded_threads = *thread_count;
  options.thresholds = load_thresholds(cli);
  options.journal_path = std::string(cli.get("journal"));
  options.resume = cli.get_flag("resume");
  if (options.resume && options.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal\n");
    return 2;
  }
  options.allow_degraded = !cli.get_flag("no-degraded");
  options.stop_flag = &g_stop_requested;

  // Fleet telemetry (DESIGN.md §15). The hub is always on — workers ship
  // snapshots on their heartbeats and the scheduler mirrors task states
  // onto its board — so /metrics and /status answer live the moment the
  // endpoint is up. --metrics and --trace-events switch from the
  // single-process writers to the *fleet* views: merged worker-labeled
  // metrics and the multi-lane clock-aligned Chrome trace.
  const std::string metrics_path(cli.get("metrics"));
  const std::string trace_path(cli.get("trace-events"));
  dist::TelemetryHub hub;
  options.telemetry = &hub;
  options.collect_spans = !trace_path.empty();
  if (!trace_path.empty()) obs::SpanTracer::global().enable();
  if (auto token = metrics_token_from_cli(cli); !token.empty()) {
    hub.set_auth_token(std::move(token));
  }
  auto health_rules = parse_health_rules(cli);
  if (!health_rules.has_value()) return 2;
  if (!health_rules->empty()) hub.set_health_rules(std::move(*health_rules));
  if (const auto port_text = cli.get("metrics-port"); !port_text.empty()) {
    const auto port = non_negative_int("metrics-port");
    if (!port) return 2;
    if (*port > 65535) {
      std::fprintf(stderr, "--metrics-port must be at most 65535\n");
      return 2;
    }
    const dist::Address endpoint{"127.0.0.1",
                                 static_cast<std::uint16_t>(*port)};
    if (const auto status = hub.start_endpoint(endpoint); !status.ok()) {
      std::fprintf(stderr, "--metrics-port: %s\n",
                   status.error().to_string().c_str());
      return 1;
    }
    obs::announce_http_endpoint("dispatch", endpoint.host,
                                hub.endpoint_port());
  }
  hub.start_progress(*progress);

  // Flushes the fleet sinks on every exit path (including abort /
  // quarantine early returns), mirroring what ObsSession does for the
  // single-process sinks.
  struct FleetFlush {
    dist::TelemetryHub& hub;
    std::string metrics_path;
    std::string trace_path;
    bool finished = false;
    bool ok = true;

    ~FleetFlush() { finish(); }

    bool finish() {
      if (finished) return ok;
      finished = true;
      hub.stop();
      if (!metrics_path.empty()) {
        if (const auto status = hub.write_fleet_metrics(metrics_path);
            !status.ok()) {
          std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
          ok = false;
        } else {
          std::printf("fleet metrics written to %s and %s.prom\n",
                      metrics_path.c_str(), metrics_path.c_str());
        }
      }
      if (!trace_path.empty()) {
        if (const auto status = hub.write_fleet_trace(trace_path);
            !status.ok()) {
          std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
          ok = false;
        } else {
          std::printf("fleet trace events written to %s\n",
                      trace_path.c_str());
        }
        obs::SpanTracer::global().disable();
      }
      return ok;
    }
  } fleet{hub, metrics_path, trace_path};

  const auto profile_hz = parse_profile_hz(cli);
  if (!profile_hz.has_value()) return 2;
  // The hub owns the fleet views of --metrics/--trace-events/--progress;
  // ObsSession keeps covering provenance and the manager-side profile
  // (collapsed stacks of the dispatch/merge path itself).
  ObsSession obs_session("", "", 0.0, std::string(cli.get("provenance")),
                         *provenance_sample, std::string(cli.get("profile")),
                         *profile_hz);
  install_stop_handlers();

  util::Stopwatch watch;
  auto result = dist::run_dispatch(options);
  if (!result.has_value()) {
    std::fprintf(stderr, "%s\n", result.error().to_string().c_str());
    return 2;
  }
  for (const dist::TaskOutcome& outcome : result->outcomes) {
    std::printf("shard %zu: %s via %s after %zu attempt(s)%s%s\n",
                outcome.shard, outcome.status.c_str(),
                outcome.worker.empty() ? "-" : outcome.worker.c_str(),
                outcome.attempts, outcome.error.empty() ? "" : " — ",
                outcome.error.c_str());
  }
  const dist::DispatchStats& stats = result->stats;
  std::printf("dispatch: %zu task(s) done in %s (%zu retried, %zu "
              "reassigned, %zu quarantined, %zu worker(s) lost, %zu run "
              "degraded, %zu resumed from journal)\n",
              stats.tasks_done,
              util::format_duration(watch.elapsed_seconds()).c_str(),
              stats.retries, stats.reassigned, stats.quarantined,
              stats.workers_lost, stats.degraded_tasks,
              stats.resumed_tasks);

  if (result->aborted) {
    std::fprintf(stderr,
                 "mosaic dispatch: interrupted with %zu shard(s) done; "
                 "re-run with --journal %s --resume to continue\n",
                 stats.tasks_done + stats.resumed_tasks,
                 options.journal_path.empty()
                     ? "<path>"
                     : options.journal_path.c_str());
    return 3;
  }
  if (!result->complete()) {
    std::fprintf(stderr,
                 "mosaic dispatch: %zu shard(s) quarantined — refusing to "
                 "merge an incomplete run\n",
                 stats.quarantined);
    return 1;
  }

  std::size_t artifact_count = 0;
  int exit_code = 0;
  auto merged = [&] {
    obs::ScopedTimerMs merge_timer(obs::Registry::global().histogram(
        obs::names::kDispatchMergeMs, obs::latency_buckets_ms(),
        "partial load + merge wall time on the manager"));
    return load_and_merge_partials(result->partial_paths, &artifact_count,
                                   &exit_code);
  }();
  if (!merged.has_value()) return exit_code;
  std::printf("merged %zu shard partial(s) from %s\n\n", artifact_count,
              options.out_dir.c_str());
  if (!print_batch_summary(merged->batch, cli)) return 1;
  if (!obs_session.finish()) return 1;
  if (!fleet.finish()) return 1;
  return 0;
}

int cmd_report(int argc, char** argv) {
  util::CliParser cli("mosaic report",
                      "write a markdown analysis report for a trace "
                      "directory");
  cli.add_option("thresholds", "JSON thresholds config", "");
  cli.add_option("out", "output markdown path", "mosaic_report.md");
  cli.add_option("top-pairs", "Jaccard pairs to list", "10");
  cli.add_option("threads", "worker threads (0 = hardware)", "0");
  cli.add_flag("confusion",
               "append an accuracy drill-down joining provenance records "
               "against --truth");
  cli.add_option("truth",
                 "ground-truth JSONL sidecar from `mosaic generate --truth`",
                 "");
  cli.add_option("straddling", "straddling cases to rank in the drill-down",
                 "20");
  cli.add_flag("from-partials",
               "treat the positional arguments as shard partial artifacts "
               "(files or directories of results.shard-*.json) and reduce "
               "them instead of ingesting traces");
  add_ingest_cli_options(cli);
  add_obs_cli_options(cli);
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;
  const bool from_partials = cli.get_flag("from-partials");
  std::vector<std::string> paths;
  if (from_partials) {
    if (cli.positional().empty()) {
      std::fprintf(stderr, "mosaic report: no partial artifacts\n");
      return 2;
    }
  } else {
    paths = expand_paths(cli.positional());
    if (paths.empty()) {
      std::fprintf(stderr, "mosaic report: no input traces\n");
      return 2;
    }
  }
  const auto thread_count = parse_thread_count(cli);
  if (!thread_count.has_value()) return 2;
  std::unique_ptr<ingest::FaultyFileReader> faulty;
  const auto options = make_ingest_options(cli, faulty);
  if (!options.has_value()) return 2;
  const auto progress = parse_progress(cli);
  if (!progress.has_value()) return 2;
  const auto provenance_sample = parse_provenance_sample(cli);
  if (!provenance_sample.has_value()) return 2;
  const bool confusion = cli.get_flag("confusion");
  const std::string truth_path{cli.get("truth")};
  if (confusion && truth_path.empty()) {
    std::fprintf(stderr, "--confusion requires --truth <file>\n");
    return 2;
  }
  const auto straddling_cap = cli.get_int("straddling");
  if (!straddling_cap.has_value() || *straddling_cap < 0) {
    std::fprintf(stderr, "--straddling must be a non-negative integer\n");
    return 2;
  }
  const auto profile_hz = parse_profile_hz(cli);
  if (!profile_hz.has_value()) return 2;
  ObsSession obs_session(std::string(cli.get("metrics")),
                         std::string(cli.get("trace-events")), *progress,
                         std::string(cli.get("provenance")),
                         *provenance_sample, std::string(cli.get("profile")),
                         *profile_hz);
  // The drill-down is computed from journal records, not by re-analyzing, so
  // --confusion needs the journal armed even without a --provenance dir. A
  // partials reduce never analyzes, so it reads the shard runs' recorded
  // provenance files instead.
  obs::ProvenanceJournal& journal = obs::ProvenanceJournal::global();
  const bool confusion_armed_journal =
      confusion && !from_partials && !journal.enabled();
  if (confusion_armed_journal) journal.enable(*provenance_sample);

  parallel::ThreadPool pool(*thread_count);
  core::BatchResult batch;
  std::size_t loaded = 0;
  std::vector<obs::TraceProvenance> partial_records;
  if (from_partials) {
    int exit_code = 0;
    auto merged =
        load_and_merge_partials(cli.positional(), nullptr, &exit_code);
    if (!merged.has_value()) return exit_code;
    batch = std::move(merged->batch);
    loaded = merged->ingest.loaded;
    if (confusion) {
      for (const std::string& path : merged->provenance_paths) {
        auto records = obs::read_provenance_jsonl(path);
        if (!records.has_value()) {
          std::fprintf(stderr, "%s\n", records.error().to_string().c_str());
          return 1;
        }
        for (obs::TraceProvenance& record : *records) {
          partial_records.push_back(std::move(record));
        }
      }
    }
  } else {
    auto ingested = ingest::ingest_paths(paths, *options, pool);
    if (!ingested.has_value()) {
      std::fprintf(stderr, "%s\n", ingested.error().to_string().c_str());
      return 2;
    }
    if (ingested->stats.aborted) {
      std::fprintf(stderr, "mosaic report: aborted after %zu files "
                           "(simulated crash)\n",
                   options->abort_after_files);
      return 3;
    }
    loaded = ingested->stats.loaded;
    batch = core::analyze_preprocessed(std::move(ingested->pre),
                                       load_thresholds(cli), &pool);
  }
  const report::CategoryDistribution distribution =
      report::aggregate_categories(batch);

  std::string md = "# MOSAIC analysis report\n\n";
  md += "Input: " + std::to_string(loaded) + " traces (" +
        std::to_string(batch.preprocess.load_failed) +
        " unreadable files evicted).\n\n";

  const auto& stats = batch.preprocess;
  md += "## Pre-processing funnel\n\n";
  {
    report::TextTable table({"stage", "count"});
    table.add_row({"input traces", std::to_string(stats.input_traces)});
    table.add_row({"load failures (evicted)",
                   std::to_string(stats.load_failed)});
    table.add_row({"corrupted (evicted)", std::to_string(stats.corrupted)});
    table.add_row({"valid", std::to_string(stats.valid)});
    table.add_row(
        {"unique applications retained", std::to_string(stats.retained)});
    md += table.render_markdown();
  }
  if (!stats.eviction_breakdown.empty()) {
    md += "\nEviction reasons:\n\n";
    for (const auto& [code, count] : stats.eviction_breakdown) {
      md += "- " + code + ": " + std::to_string(count) + "\n";
    }
    for (const auto& [kind, count] : stats.corruption_breakdown) {
      md += "  - corrupt-trace/" + kind + ": " + std::to_string(count) + "\n";
    }
  }

  md += "\n## Category distribution\n\n";
  md += "\"applications\" is the deduplicated single-run view; "
        "\"executions\" re-weights by valid runs per application.\n\n";
  {
    report::TextTable table({"category", "applications", "executions"});
    for (const core::Category category : core::all_categories()) {
      if (distribution.single[static_cast<std::size_t>(category)] == 0) {
        continue;
      }
      table.add_row(
          {std::string(core::category_name(category)),
           util::format_percent(distribution.single_fraction(category)),
           util::format_percent(distribution.weighted_fraction(category))});
    }
    md += table.render_markdown();
  }

  md += "\n## Strongest category correlations (Jaccard)\n\n```\n";
  md += report::top_pairs(
      report::jaccard_matrix(batch.results),
      static_cast<std::size_t>(cli.get_int("top-pairs").value_or(10)));
  md += "```\n";

  md += "\n## Periodic applications\n\n";
  {
    report::TextTable table(
        {"application", "kind", "period", "volume/occurrence", "busy"});
    std::size_t listed = 0;
    for (const core::TraceResult& result : batch.results) {
      for (const auto& [kind, analysis] :
           {std::pair<const char*, const core::KindAnalysis*>{
                "read", &result.read},
            {"write", &result.write}}) {
        if (!analysis->periodicity.periodic ||
            analysis->temporality.label == core::Temporality::kInsignificant) {
          continue;
        }
        if (++listed > 40) break;
        const core::PeriodicGroup& group = analysis->periodicity.dominant();
        char busy[16];
        std::snprintf(busy, sizeof busy, "%.1f%%", group.busy_ratio * 100.0);
        table.add_row({result.app_key, kind,
                       util::format_duration(group.period_seconds),
                       util::format_bytes(group.mean_bytes), busy});
      }
    }
    md += table.row_count() > 0 ? table.render_markdown()
                                : std::string("none detected\n");
  }

  if (confusion) {
    auto truths = sim::read_truth_jsonl(truth_path);
    if (!truths.has_value()) {
      std::fprintf(stderr, "%s\n", truths.error().to_string().c_str());
      return 1;
    }
    const std::vector<obs::TraceProvenance> records =
        from_partials ? std::move(partial_records) : journal.collect();
    const report::ConfusionReport drill = report::build_confusion(
        records, *truths, static_cast<std::size_t>(*straddling_cap));
    if (confusion_armed_journal) {
      journal.disable();
      journal.reset();
    }
    md += "\n## Accuracy drill-down\n\n";
    md += "Computed by joining the decision-provenance journal (1 in " +
          std::to_string(*provenance_sample) +
          " traces sampled) against the generator's ground-truth sidecar — "
          "no re-analysis.\n\n";
    md += report::render_confusion(drill);
    std::printf("confusion: joined %zu provenance record(s) against truth "
                "(%zu without a truth entry)\n",
                drill.joined, drill.missing_truth);
  }

  const std::string out_path{cli.get("out")};
  if (const auto status = report::write_text_to_file(md, out_path);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
    return 1;
  }
  std::printf("report written to %s (%zu applications)\n", out_path.c_str(),
              batch.results.size());
  if (!obs_session.finish()) return 1;
  return 0;
}

int cmd_explain(int argc, char** argv) {
  util::CliParser cli("mosaic explain",
                      "render the decision path behind one trace's "
                      "categories");
  cli.add_option("thresholds", "JSON thresholds config", "");
  cli.add_option("provenance",
                 "look the argument up as a trace id (job id or app key) in "
                 "this directory's provenance.jsonl instead of analyzing a "
                 "file", "");
  cli.add_flag("json", "emit the provenance record as pretty JSON");
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;
  if (cli.positional().size() != 1) {
    std::fprintf(stderr, "mosaic explain: exactly one trace file or trace "
                         "id\n");
    return 2;
  }
  const std::string target = cli.positional().front();

  std::optional<obs::TraceProvenance> record;
  std::error_code ec;
  if (std::filesystem::is_regular_file(target, ec)) {
    // Live path: run the full pipeline once with evidence capture forced on
    // (the journal's sampling gate is bypassed by the explicit overload).
    auto parsed = ingest::load_trace(target, ingest::IngestOptions{});
    if (!parsed.has_value()) {
      std::fprintf(stderr, "%s\n", parsed.error().to_string().c_str());
      return 1;
    }
    if (const auto validity = trace::validate(*parsed); !validity.valid()) {
      std::fprintf(stderr, "mosaic explain: %s is corrupted (%s)\n",
                   target.c_str(),
                   trace::corruption_kind_name(validity.kind));
      return 1;
    }
    const core::Analyzer analyzer(load_thresholds(cli));
    obs::TraceProvenance evidence;
    (void)analyzer.analyze(*parsed, &evidence);
    record = std::move(evidence);
  } else {
    // Recorded path: join against an earlier batch run's journal.
    const std::string dir{cli.get("provenance")};
    if (dir.empty()) {
      std::fprintf(stderr,
                   "mosaic explain: %s is not a trace file; pass "
                   "--provenance <dir> to look up a recorded trace id\n",
                   target.c_str());
      return 2;
    }
    auto records = obs::read_provenance_jsonl(dir + "/provenance.jsonl");
    if (!records.has_value()) {
      std::fprintf(stderr, "%s\n", records.error().to_string().c_str());
      return 1;
    }
    for (obs::TraceProvenance& candidate : *records) {
      if (candidate.app_key == target ||
          std::to_string(candidate.job_id) == target) {
        record = std::move(candidate);
        break;
      }
    }
    if (!record.has_value()) {
      std::fprintf(stderr,
                   "mosaic explain: no provenance record for '%s' in %s\n",
                   target.c_str(), dir.c_str());
      return 1;
    }
  }

  if (cli.get_flag("json")) {
    std::printf("%s\n", json::serialize(obs::provenance_to_json(*record),
                                        /*pretty=*/true)
                            .c_str());
  } else {
    std::fputs(obs::explain_text(*record).c_str(), stdout);
  }
  return 0;
}

int cmd_generate(int argc, char** argv) {
  util::CliParser cli("mosaic generate",
                      "write a synthetic Blue Waters-like population");
  cli.add_option("traces", "number of executions", "1000");
  cli.add_option("seed", "master seed", "20190410");
  cli.add_option("format", "text | mbt | mixed", "mbt");
  cli.add_option("corruption", "corrupted fraction", "0.32");
  cli.add_option("truth",
                 "write the planted ground-truth labels to this JSONL "
                 "sidecar (corrupted traces excluded)", "");
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;
  if (cli.positional().size() != 1) {
    std::fprintf(stderr, "mosaic generate: exactly one output directory\n");
    return 2;
  }
  const std::string directory = cli.positional().front();
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", directory.c_str(),
                 ec.message().c_str());
    return 1;
  }

  sim::PopulationConfig config;
  config.target_traces =
      static_cast<std::size_t>(cli.get_int("traces").value_or(1000));
  config.seed =
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(20190410));
  config.corruption_fraction = cli.get_double("corruption").value_or(0.32);
  const sim::Population population = sim::generate_population(config);

  const std::string format{cli.get("format")};
  std::size_t written = 0;
  for (std::size_t i = 0; i < population.traces.size(); ++i) {
    const trace::Trace& t = population.traces[i].trace;
    const std::string stem =
        directory + "/job_" + std::to_string(t.meta.job_id);
    const bool as_text = format == "text" || (format == "mixed" && i % 2 == 0);
    const util::Status status =
        as_text ? darshan::write_text_file(t, stem + ".darshan.txt")
                : darshan::write_mbt_file(t, stem + ".mbt");
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
      return 1;
    }
    ++written;
  }
  std::printf("wrote %zu traces (%zu applications) to %s\n", written,
              population.app_count, directory.c_str());
  if (const auto truth_path = cli.get("truth"); !truth_path.empty()) {
    const std::vector<sim::TruthRecord> records =
        sim::truth_records(population.traces);
    if (const auto status =
            sim::write_truth_jsonl(records, std::string(truth_path));
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
      return 1;
    }
    std::printf("truth labels (%zu record(s)) written to %s\n",
                records.size(), std::string(truth_path).c_str());
  }
  return 0;
}

int cmd_health(int argc, char** argv) {
  util::CliParser cli("mosaic health",
                      "evaluate health rules over a saved metrics JSON file "
                      "(exit 0 = ok/warn, 1 = fail)");
  cli.add_option("rules",
                 "JSON rules file replacing the built-in defaults", "");
  cli.add_flag("fleet",
               "use the fleet (dispatch manager) default rules instead of "
               "the process defaults");
  cli.add_flag("print-rules",
               "print the effective rules as JSON (a valid --rules file) "
               "and exit");
  cli.add_flag("json", "print the full report as JSON instead of text");
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;

  std::vector<obs::HealthRule> rules = cli.get_flag("fleet")
                                           ? obs::default_fleet_health_rules()
                                           : obs::default_health_rules();
  if (const auto rules_path = cli.get("rules"); !rules_path.empty()) {
    auto loaded = obs::load_health_rules(std::string(rules_path));
    if (!loaded.has_value()) {
      std::fprintf(stderr, "--rules: %s\n",
                   loaded.error().to_string().c_str());
      return 2;
    }
    rules = std::move(*loaded);
  }
  if (cli.get_flag("print-rules")) {
    std::printf("%s\n",
                json::serialize(obs::health_rules_to_json(rules)).c_str());
    return 0;
  }

  if (cli.positional().size() != 1) {
    std::fprintf(stderr,
                 "mosaic health: exactly one metrics JSON file expected "
                 "(the --metrics artifact of a previous run)\n");
    return 2;
  }
  const std::string& path = cli.positional().front();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "mosaic health: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = json::parse(text.str());
  if (!parsed.has_value()) {
    std::fprintf(stderr, "mosaic health: %s: %s\n", path.c_str(),
                 parsed.error().message.c_str());
    return 2;
  }
  auto snapshot = obs::snapshot_from_metrics_json(*parsed);
  if (!snapshot.has_value()) {
    std::fprintf(stderr, "mosaic health: %s: %s\n", path.c_str(),
                 snapshot.error().to_string().c_str());
    return 2;
  }

  const obs::HealthReport report = obs::evaluate_health(*snapshot, rules);
  if (cli.get_flag("json")) {
    std::printf("%s\n",
                json::serialize(obs::health_to_json(report)).c_str());
  } else {
    std::fputs(obs::health_text(report).c_str(), stdout);
  }
  return report.level == obs::HealthLevel::kFail ? 1 : 0;
}

int cmd_daemon(int argc, char** argv) {
  util::CliParser cli("mosaic daemon",
                      "always-on analysis service: categorize arriving "
                      "traces incrementally, serve cached results over "
                      "HTTP");
  cli.add_option("watch",
                 "comma-separated directories polled for new trace files",
                 "");
  cli.add_option("listen",
                 "host:port accepting `mosaic submit` connections (port 0 "
                 "binds an ephemeral port, printed on startup)", "");
  cli.add_option("poll-interval",
                 "seconds between watch-directory sweeps", "0.5");
  cli.add_option("cache-bytes",
                 "result-cache capacity in bytes; least recently used "
                 "analyses are evicted beyond this", "67108864");
  cli.add_option("spool-dir",
                 "directory for submitted trace bytes (default: a "
                 "per-process dir under the system temp dir)", "");
  cli.add_option("thresholds", "JSON thresholds config", "");
  cli.add_option("retries", "extra read attempts for transient I/O errors",
                 "3");
  cli.add_option("deadline",
                 "per-file read+retry+parse budget in seconds "
                 "(0 = unlimited)", "30");
  cli.add_option("metrics-port",
                 "serve /results, /explain/<trace-id>, /report and the "
                 "standard telemetry routes on 127.0.0.1:<port> "
                 "(0 = ephemeral, printed on startup)", "0");
  cli.add_option("metrics-token",
                 "require `Authorization: Bearer <token>` on the HTTP "
                 "endpoint (default: $MOSAIC_METRICS_TOKEN)", "");
  cli.add_option("health-rules",
                 "JSON health/SLO rules evaluated by /healthz", "");
  add_obs_cli_options(cli);
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;

  dist::DaemonOptions options;
  const std::string watch_text(cli.get("watch"));
  const std::string listen_text(cli.get("listen"));
  if (watch_text.empty() && listen_text.empty()) {
    std::fprintf(stderr,
                 "mosaic daemon: nothing to serve — pass --watch "
                 "<dir[,dir...]> to poll directories for new traces, or "
                 "--listen <host:port> to accept `mosaic submit` "
                 "connections\n");
    return 2;
  }
  if (!watch_text.empty() && !listen_text.empty()) {
    std::fprintf(stderr,
                 "mosaic daemon: --watch and --listen are mutually "
                 "exclusive — run one daemon per ingress (each serves its "
                 "own HTTP endpoint and result cache)\n");
    return 2;
  }
  for (const auto piece : util::split(watch_text, ',')) {
    const auto dir = util::trim(piece);
    if (dir.empty()) continue;
    std::error_code ec;
    if (!std::filesystem::is_directory(std::string(dir), ec)) {
      std::fprintf(stderr,
                   "--watch: %s is not a directory (create it first, or "
                   "check the comma-separated list for typos)\n",
                   std::string(dir).c_str());
      return 2;
    }
    options.watch_dirs.emplace_back(dir);
  }
  if (!watch_text.empty() && options.watch_dirs.empty()) {
    std::fprintf(stderr, "--watch: no directories in '%s'\n",
                 watch_text.c_str());
    return 2;
  }
  if (!listen_text.empty()) {
    const auto listen = dist::parse_address(listen_text);
    if (!listen.has_value()) {
      std::fprintf(stderr, "--listen: %s\n",
                   listen.error().to_string().c_str());
      return 2;
    }
    options.listen = *listen;
  }

  const auto poll = parse_positive_seconds(cli, "poll-interval");
  if (!poll.has_value()) return 2;
  options.poll_interval_seconds = *poll;
  const auto cache_bytes = cli.get_int("cache-bytes");
  if (!cache_bytes.has_value() || *cache_bytes < 0) {
    std::fprintf(stderr, "--cache-bytes must be a non-negative integer "
                         "(got '%s')\n",
                 std::string(cli.get("cache-bytes")).c_str());
    return 2;
  }
  options.cache_capacity_bytes = static_cast<std::size_t>(*cache_bytes);
  options.spool_dir = std::string(cli.get("spool-dir"));
  options.thresholds = load_thresholds(cli);

  const auto retries = cli.get_int("retries");
  if (!retries.has_value() || *retries < 0) {
    std::fprintf(stderr, "--retries must be a non-negative integer\n");
    return 2;
  }
  const auto deadline = parse_seconds_or_zero(cli, "deadline");
  if (!deadline.has_value()) return 2;
  options.ingest.max_retries = static_cast<int>(*retries);
  options.ingest.file_deadline_seconds = *deadline;

  const auto port = cli.get_int("metrics-port");
  if (!port.has_value() || *port < 0 || *port > 65535) {
    std::fprintf(stderr, "--metrics-port must be a port number, 0 for "
                         "ephemeral (got '%s')\n",
                 std::string(cli.get("metrics-port")).c_str());
    return 2;
  }
  options.http = dist::Address{"127.0.0.1",
                               static_cast<std::uint16_t>(*port)};
  options.auth_token = metrics_token_from_cli(cli);
  auto health_rules = parse_health_rules(cli);
  if (!health_rules.has_value()) return 2;
  options.health_rules = std::move(*health_rules);

  const auto progress = parse_progress(cli);
  if (!progress.has_value()) return 2;
  const auto provenance_sample = parse_provenance_sample(cli);
  if (!provenance_sample.has_value()) return 2;
  const auto profile_hz = parse_profile_hz(cli);
  if (!profile_hz.has_value()) return 2;
  // The session flushes the provenance journal and metrics sinks when run()
  // drains — the graceful half of SIGINT/SIGTERM handling.
  ObsSession obs_session(std::string(cli.get("metrics")),
                         std::string(cli.get("trace-events")), *progress,
                         std::string(cli.get("provenance")),
                         *provenance_sample, std::string(cli.get("profile")),
                         *profile_hz);

  install_stop_handlers();
  options.stop = &g_stop_requested;
  const std::string http_host = options.http.host;
  const std::string listen_host =
      options.listen.has_value() ? options.listen->host : std::string();

  dist::Daemon daemon(std::move(options));
  if (const auto status = daemon.start(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
    return 1;
  }
  obs::announce_http_endpoint("daemon", http_host, daemon.http_port());
  if (daemon.listen_port() != 0) {
    // The shell harness scrapes this line for the ephemeral port.
    std::printf("daemon accepting submissions on %s:%u\n",
                listen_host.c_str(),
                static_cast<unsigned>(daemon.listen_port()));
    std::fflush(stdout);
  }

  daemon.run();

  const dist::DaemonStats stats = daemon.stats();
  std::printf("daemon drained: %llu submission(s) (%llu analyzed, %llu "
              "cache hit(s), %llu rejected), %llu watch scan(s)\n",
              static_cast<unsigned long long>(stats.submissions),
              static_cast<unsigned long long>(stats.analyzed),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.scans));
  if (!obs_session.finish()) return 1;
  return 0;
}

int cmd_submit(int argc, char** argv) {
  util::CliParser cli("mosaic submit",
                      "ship trace files to a running `mosaic daemon`");
  cli.add_option("daemon",
                 "daemon submission address (host:port, as printed by "
                 "`mosaic daemon --listen`)", "");
  cli.add_option("timeout", "per-file reply budget in seconds", "10");
  add_log_cli_options(cli);
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  if (!apply_log_cli_options(cli)) return 2;
  if (cli.positional().empty()) {
    std::fprintf(stderr, "mosaic submit: at least one trace file\n");
    return 2;
  }
  const std::string address_text(cli.get("daemon"));
  if (address_text.empty()) {
    std::fprintf(stderr,
                 "mosaic submit: --daemon <host:port> is required (the "
                 "address a `mosaic daemon --listen` printed on startup)\n");
    return 2;
  }
  const auto address = dist::parse_address(address_text);
  if (!address.has_value()) {
    std::fprintf(stderr, "--daemon: %s\n",
                 address.error().to_string().c_str());
    return 2;
  }
  const auto timeout = parse_positive_seconds(cli, "timeout");
  if (!timeout.has_value()) return 2;

  int failures = 0;
  for (const std::string& path : cli.positional()) {
    const auto reply = dist::submit_trace_file(*address, path, *timeout);
    if (!reply.has_value()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   reply.error().to_string().c_str());
      ++failures;
      continue;
    }
    if (!reply->ok) {
      std::fprintf(stderr, "%s: rejected — %s\n", path.c_str(),
                   reply->error.c_str());
      ++failures;
      continue;
    }
    const std::string categories = reply->categories.empty()
                                       ? std::string("(none)")
                                       : util::join(reply->categories, ", ");
    std::printf("%s: trace %s (%s) -> %s%s\n", path.c_str(),
                reply->trace_id.c_str(), reply->app_key.c_str(),
                categories.c_str(), reply->cached ? " [cache hit]" : "");
  }
  return failures == 0 ? 0 : 1;
}

int cmd_thresholds(int argc, char** argv) {
  util::CliParser cli("mosaic thresholds",
                      "print or write the thresholds config");
  cli.add_option("write", "write the config to this path instead", "");
  cli.add_option("thresholds", "start from this config instead of defaults",
                 "");
  if (const auto status = cli.parse(argc, argv); !status.ok()) {
    return status.error().code == util::ErrorCode::kNotFound ? 0 : 2;
  }
  const core::Thresholds thresholds = load_thresholds(cli);
  if (const auto path = cli.get("write"); !path.empty()) {
    if (const auto status =
            core::write_thresholds_file(thresholds, std::string(path));
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
      return 1;
    }
    std::printf("thresholds written to %s\n", std::string(path).c_str());
    return 0;
  }
  std::fputs(json::serialize(core::thresholds_to_json(thresholds)).c_str(),
             stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    print_usage();
    return argc < 2 ? 2 : 0;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses its own options.
  argv[1] = argv[0];
  if (command == "analyze") return cmd_analyze(argc - 1, argv + 1);
  if (command == "explain") return cmd_explain(argc - 1, argv + 1);
  if (command == "report") return cmd_report(argc - 1, argv + 1);
  if (command == "batch") return cmd_batch(argc - 1, argv + 1);
  if (command == "merge") return cmd_merge(argc - 1, argv + 1);
  if (command == "dispatch") return cmd_dispatch(argc - 1, argv + 1);
  if (command == "worker") return cmd_worker(argc - 1, argv + 1);
  if (command == "daemon") return cmd_daemon(argc - 1, argv + 1);
  if (command == "submit") return cmd_submit(argc - 1, argv + 1);
  if (command == "generate") return cmd_generate(argc - 1, argv + 1);
  if (command == "health") return cmd_health(argc - 1, argv + 1);
  if (command == "thresholds") return cmd_thresholds(argc - 1, argv + 1);
  std::fprintf(stderr, "mosaic: unknown command '%s'\n\n", command.c_str());
  print_usage();
  return 2;
}
