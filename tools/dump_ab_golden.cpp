// Regenerates the A/B categorization goldens used by test_golden_ab.
//
// The perf work in src/cluster/ and src/core/ must keep categorization
// byte-identical; these goldens were captured from the pre-optimization
// pipeline and the integration test re-serializes the same populations and
// compares bytes. Run from anywhere:
//
//   ./build/tools/dump_ab_golden <output-dir>
//
// and commit the refreshed files only when an intentional behavior change
// (new threshold default, new category) is being made.
#include <cstdio>
#include <string>

#include "core/pipeline.hpp"
#include "json/json.hpp"
#include "report/json_output.hpp"
#include "sim/population.hpp"
#include "util/fs.hpp"

namespace {

using namespace mosaic;

std::string serialize_population(const core::Thresholds& thresholds) {
  sim::PopulationConfig config;
  // Large enough that the retained applications cover periodic archetypes
  // (checkpointing minute/hour cadences) on both detector backends.
  config.target_traces = 2000;
  config.seed = 20240711;
  sim::Population population = sim::generate_population(config);
  std::vector<trace::Trace> traces;
  traces.reserve(population.traces.size());
  for (sim::LabeledTrace& labeled : population.traces) {
    traces.push_back(std::move(labeled.trace));
  }
  parallel::ThreadPool pool(2);
  const core::BatchResult batch =
      core::analyze_population(std::move(traces), thresholds, &pool);
  return json::serialize(
             report::batch_to_json(batch, /*include_traces=*/true)) +
         "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];

  core::Thresholds meanshift;  // defaults: the paper's Mean-Shift backend
  core::Thresholds frequency;
  frequency.periodicity_backend = core::PeriodicityBackend::kFrequency;

  const struct {
    const char* name;
    const core::Thresholds& thresholds;
  } goldens[] = {
      {"ab_categorization_meanshift.json", meanshift},
      {"ab_categorization_frequency.json", frequency},
  };
  for (const auto& golden : goldens) {
    const std::string path = dir + "/" + golden.name;
    if (const auto status = util::write_file_atomic(
            path, serialize_population(golden.thresholds));
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().to_string().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
