#!/usr/bin/env python3
"""Perf-regression gate over BENCH_perf_pipeline.json.

Compares a freshly measured `bench/perf_pipeline --overhead-only` result
against the committed baseline and fails (exit 1) when either

  * end-to-end throughput (traces_per_second) dropped by more than
    --max-tps-drop-pct (default 15%), or
  * the instrumentation overhead (instrumentation.overhead_pct) exceeds
    --max-overhead-pct (default 10%) in absolute terms. The budget was
    recalibrated from 5% when the SoA/AVX2 kernel pass (plus dropping the
    harness's per-pass corpus copy) shrank the measured pass ~6x: the
    instrumentation surface costs the same ~10 us per 1000-trace pass in
    absolute terms, but is now a larger fraction of a much faster
    pipeline, or
  * steady-state allocations per trace (allocations.per_trace) grew more
    than --max-alloc-increase-pct (default 10%) plus a 2-allocation slack
    over the baseline. Skipped unless both files carry counted results, or
  * the sampling profiler breaks its budget: enabled at the default rate
    costs more than --max-profiler-on-pct (default 5%), or the disabled
    A/A null experiment (profiler.off_overhead_pct) strays outside
    ±--max-profiler-off-pct (default 3%) — the disabled hook is one relaxed
    atomic load per frame, so any off-cost beyond harness noise is a bug.
    Skipped when the current file has no "profiler" section, or
  * a SIMD kernel regressed: for every kernel in the "kernels" section of
    both files, dispatched cycles/byte must not exceed the baseline by more
    than --max-kernel-regression-pct (default 35%; TSC micro-timings are
    noisier than the end-to-end gate), and — when the current run dispatched
    to a vector level (simd_level != "scalar") — the kernel's
    scalar/dispatched speedup must stay above --min-kernel-speedup (default
    0.8), i.e. the vector path is never meaningfully slower than its scalar
    reference. The floor is deliberately below 1.0: the scalar references
    mirror the AVX2 lane structure for bit-identity, so the compiler can
    auto-vectorize some of them (sum in particular) to near-parity, and the
    TSC micro-timings jitter. Skipped per kernel when either side lacks the
    entry, and entirely when the two runs dispatched at different SIMD
    levels (e.g. the forced-scalar CI job against an AVX2 baseline): their
    cycles/byte measure different code paths, and forced-scalar speedup is
    ~1.0 by construction.

The throughput check is relative to the baseline machine's own numbers, so
a slower CI runner only trips it when the *ratio* moves; the overhead check
is absolute because the <5% budget is machine-independent by construction
(both sides of the ratio run on the same box). The allocation count is
near-deterministic (same population, one thread, warmed workspace), so its
budget is deliberately tight: a new per-trace allocation on the hot path is
exactly the regression the workspace model exists to prevent.

Usage:
    check_perf_regression.py <baseline.json> <current.json> [options]
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        sys.exit(f"check_perf_regression: cannot read {path}: {error}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_perf_pipeline.json")
    parser.add_argument("current", help="freshly measured result")
    parser.add_argument("--max-tps-drop-pct", type=float, default=15.0)
    parser.add_argument("--max-overhead-pct", type=float, default=10.0)
    parser.add_argument("--max-alloc-increase-pct", type=float, default=10.0)
    parser.add_argument("--max-profiler-on-pct", type=float, default=5.0)
    parser.add_argument("--max-profiler-off-pct", type=float, default=3.0)
    parser.add_argument("--max-kernel-regression-pct", type=float,
                        default=35.0)
    parser.add_argument("--min-kernel-speedup", type=float, default=0.8)
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    failures = []

    base_tps = float(baseline.get("traces_per_second", 0.0))
    cur_tps = float(current.get("traces_per_second", 0.0))
    drop_pct = (
        100.0 * (base_tps - cur_tps) / base_tps if base_tps > 0.0 else 0.0
    )
    print(
        f"traces/s: baseline {base_tps:,.0f}, current {cur_tps:,.0f} "
        f"(change {-drop_pct:+.1f}%)"
    )
    if drop_pct > args.max_tps_drop_pct:
        failures.append(
            f"throughput dropped {drop_pct:.1f}% "
            f"(budget {args.max_tps_drop_pct:.0f}%)"
        )

    overhead = float(
        current.get("instrumentation", {}).get("overhead_pct", 0.0)
    )
    print(
        f"instrumentation overhead: {overhead:.2f}% "
        f"(budget {args.max_overhead_pct:.0f}%)"
    )
    if overhead > args.max_overhead_pct:
        failures.append(
            f"instrumentation overhead {overhead:.2f}% exceeds "
            f"{args.max_overhead_pct:.0f}% budget"
        )

    base_allocs = baseline.get("allocations", {})
    cur_allocs = current.get("allocations", {})
    if base_allocs.get("counted") and cur_allocs.get("counted"):
        base_per = float(base_allocs.get("per_trace", 0.0))
        cur_per = float(cur_allocs.get("per_trace", 0.0))
        budget = base_per * (1.0 + args.max_alloc_increase_pct / 100.0) + 2.0
        print(
            f"allocations/trace: baseline {base_per:.2f}, "
            f"current {cur_per:.2f} (budget {budget:.2f})"
        )
        if cur_per > budget:
            failures.append(
                f"allocations per trace grew to {cur_per:.2f} "
                f"(budget {budget:.2f})"
            )
    else:
        print("allocations/trace: not counted on both sides, skipping")

    profiler = current.get("profiler")
    if profiler is not None:
        on_pct = float(profiler.get("enabled_overhead_pct", 0.0))
        off_pct = float(profiler.get("off_overhead_pct", 0.0))
        print(
            f"profiler overhead: off {off_pct:+.2f}% "
            f"(null budget ±{args.max_profiler_off_pct:.0f}%), "
            f"enabled {on_pct:.2f}% "
            f"(budget {args.max_profiler_on_pct:.0f}%)"
        )
        if abs(off_pct) > args.max_profiler_off_pct:
            failures.append(
                f"profiler-off A/A drift {off_pct:+.2f}% outside "
                f"±{args.max_profiler_off_pct:.0f}% — disabled hooks are "
                "not free or the harness is too noisy to gate"
            )
        if on_pct > args.max_profiler_on_pct:
            failures.append(
                f"profiler-enabled overhead {on_pct:.2f}% exceeds "
                f"{args.max_profiler_on_pct:.0f}% budget"
            )
    else:
        print("profiler overhead: no profiler section, skipping")

    base_kernels = baseline.get("kernels", {})
    cur_kernels = current.get("kernels", {})
    base_level = baseline.get("simd_level", "scalar")
    cur_level = current.get("simd_level", "scalar")
    if base_level != cur_level:
        # A forced-scalar (or differently-dispatched) run measures a
        # different code path than the baseline; its cycles/byte are not
        # comparable. The forced-scalar CI job still exercises the
        # throughput and overhead gates above.
        print(
            f"kernels: baseline level {base_level} vs current "
            f"{cur_level}, skipping cycles/byte comparison"
        )
    elif base_kernels and cur_kernels:
        for name, cur_entry in sorted(cur_kernels.items()):
            base_entry = base_kernels.get(name)
            if base_entry is None:
                print(f"kernel {name}: no baseline entry, skipping")
                continue
            base_cpb = float(base_entry.get("dispatched_cycles_per_byte", 0))
            cur_cpb = float(cur_entry.get("dispatched_cycles_per_byte", 0))
            speedup = float(cur_entry.get("speedup", 0.0))
            growth_pct = (
                100.0 * (cur_cpb - base_cpb) / base_cpb
                if base_cpb > 0.0
                else 0.0
            )
            print(
                f"kernel {name}: cycles/byte baseline {base_cpb:.3f}, "
                f"current {cur_cpb:.3f} (change {growth_pct:+.1f}%), "
                f"speedup {speedup:.2f}x"
            )
            if growth_pct > args.max_kernel_regression_pct:
                failures.append(
                    f"kernel {name} cycles/byte grew {growth_pct:.1f}% "
                    f"(budget {args.max_kernel_regression_pct:.0f}%)"
                )
            if cur_level != "scalar" and speedup < args.min_kernel_speedup:
                failures.append(
                    f"kernel {name} simd speedup {speedup:.2f}x below "
                    f"{args.min_kernel_speedup:.2f}x floor at level "
                    f"{cur_level}"
                )
    else:
        print("kernels: section missing on one side, skipping")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
