#include "darshan/binary_format.hpp"

#include <bit>
#include <cstring>
#include <fstream>

#include "util/fs.hpp"
#include "util/mmap.hpp"

namespace mosaic::darshan {

using trace::FileRecord;
using trace::Trace;
using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

namespace {

constexpr char kMagic[4] = {'M', 'B', 'T', '1'};

/// Append-only little-endian encoder.
class Writer {
 public:
  explicit Writer(std::vector<std::byte>& out) : out_(out) {}

  void u32(std::uint32_t value) { raw(&value, sizeof value); }
  void u64(std::uint64_t value) { raw(&value, sizeof value); }
  void i32(std::int32_t value) { raw(&value, sizeof value); }
  void f64(double value) { raw(&value, sizeof value); }
  void str(const std::string& text) {
    u32(static_cast<std::uint32_t>(text.size()));
    raw(text.data(), text.size());
  }

 private:
  void raw(const void* data, std::size_t size) {
    static_assert(std::endian::native == std::endian::little,
                  "MBT writer assumes a little-endian host");
    const auto* bytes = static_cast<const std::byte*>(data);
    out_.insert(out_.end(), bytes, bytes + size);
  }

  std::vector<std::byte>& out_;
};

/// Bounds-checked little-endian decoder.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::int32_t i32() { return read<std::int32_t>(); }
  double f64() { return read<double>(); }

  std::string str() {
    const std::uint32_t size = u32();
    if (!ok_ || pos_ + size > bytes_.size()) {
      ok_ = false;
      return {};
    }
    std::string text(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return text;
  }

 private:
  template <typename T>
  T read() {
    static_assert(std::endian::native == std::endian::little,
                  "MBT reader assumes a little-endian host");
    if (!ok_ || pos_ + sizeof(T) > bytes_.size()) {
      ok_ = false;
      return T{};
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

std::uint64_t fnv1a(std::string_view text) noexcept {
  return fnv1a(std::as_bytes(std::span{text.data(), text.size()}));
}

std::vector<std::byte> to_mbt(const Trace& trace) {
  std::vector<std::byte> out;
  out.reserve(64 + trace.files.size() * 128);
  Writer w(out);

  out.insert(out.end(), reinterpret_cast<const std::byte*>(kMagic),
             reinterpret_cast<const std::byte*>(kMagic) + sizeof kMagic);
  w.u32(kMbtVersion);

  w.u64(trace.meta.job_id);
  w.u32(trace.meta.nprocs);
  w.f64(trace.meta.start_time);
  w.f64(trace.meta.run_time);
  w.str(trace.meta.app_name);
  w.str(trace.meta.user);

  w.u32(static_cast<std::uint32_t>(trace.files.size()));
  for (const auto& file : trace.files) {
    w.u64(file.file_id);
    w.i32(file.rank);
    w.u64(file.bytes_read);
    w.u64(file.bytes_written);
    w.u64(file.reads);
    w.u64(file.writes);
    w.u64(file.opens);
    w.u64(file.closes);
    w.u64(file.seeks);
    w.f64(file.open_ts);
    w.f64(file.close_ts);
    w.f64(file.first_read_ts);
    w.f64(file.last_read_ts);
    w.f64(file.first_write_ts);
    w.f64(file.last_write_ts);
    w.str(file.file_name);
  }

  const std::uint64_t checksum = fnv1a(out);
  w.u64(checksum);
  return out;
}

Expected<Trace> parse_mbt(std::span<const std::byte> bytes) {
  const auto corrupt = [](std::string why) {
    return Error{ErrorCode::kCorruptTrace, "mbt: " + std::move(why)};
  };

  if (bytes.size() < sizeof kMagic + sizeof(std::uint32_t) + sizeof(std::uint64_t)) {
    return corrupt("truncated header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return corrupt("bad magic");
  }

  // Verify the trailer checksum before decoding anything else.
  const std::size_t body_size = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + body_size, sizeof stored_checksum);
  if (fnv1a(bytes.subspan(0, body_size)) != stored_checksum) {
    return corrupt("checksum mismatch");
  }

  Reader r(bytes.subspan(sizeof kMagic, body_size - sizeof kMagic));
  const std::uint32_t version = r.u32();
  if (version != kMbtVersion) {
    return corrupt("unsupported version " + std::to_string(version));
  }

  Trace trace;
  trace.meta.job_id = r.u64();
  trace.meta.nprocs = r.u32();
  trace.meta.start_time = r.f64();
  trace.meta.run_time = r.f64();
  trace.meta.app_name = r.str();
  trace.meta.user = r.str();

  const std::uint32_t nfiles = r.u32();
  if (!r.ok()) return corrupt("truncated job metadata");
  trace.files.reserve(nfiles);
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    FileRecord file;
    file.file_id = r.u64();
    file.rank = r.i32();
    file.bytes_read = r.u64();
    file.bytes_written = r.u64();
    file.reads = r.u64();
    file.writes = r.u64();
    file.opens = r.u64();
    file.closes = r.u64();
    file.seeks = r.u64();
    file.open_ts = r.f64();
    file.close_ts = r.f64();
    file.first_read_ts = r.f64();
    file.last_read_ts = r.f64();
    file.first_write_ts = r.f64();
    file.last_write_ts = r.f64();
    file.file_name = r.str();
    if (!r.ok()) return corrupt("truncated file record " + std::to_string(i));
    trace.files.push_back(std::move(file));
  }
  return trace;
}

Status write_mbt_file(const Trace& trace, const std::string& path) {
  // Staged + renamed: a killed `mosaic generate` must not leave a torn MBT
  // file whose truncated prefix would later be evicted as corrupt.
  const auto bytes = to_mbt(trace);
  return util::write_file_atomic(
      path, std::string_view(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size()));
}

Expected<Trace> read_mbt_file(const std::string& path) {
  // Zero-copy: parse_mbt walks the mapped pages directly instead of a heap
  // copy of the whole file (MappedFile falls back to a read when mmap is
  // unavailable, so this path works everywhere).
  auto mapped = util::MappedFile::open(path);
  if (!mapped.has_value()) return std::move(mapped).error();
  return parse_mbt(mapped->bytes());
}

}  // namespace mosaic::darshan
