// Reader/writer for the darshan-parser text format.
//
// `darshan-parser <log>` renders a binary Darshan log as a header of
// `# key: value` lines followed by tab-separated counter rows:
//
//   <module> <rank> <record id> <counter> <value> <file name> <mount> <fs>
//
// MOSAIC consumes the POSIX module counters listed in kRequiredCounters
// below. The writer emits exactly what the reader needs, so synthetic
// populations round-trip; the reader is tolerant of the extra counters and
// modules a real darshan-parser dump contains (they are skipped).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/trace.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"

namespace mosaic::darshan {

/// Parses a darshan-parser text document into a Trace.
/// Unknown modules/counters are ignored; missing job header fields default
/// (nprocs=1, run time required). Returns kParseError on malformed rows.
/// A finite `deadline` is checked every few thousand lines so a pathological
/// multi-gigabyte document cannot wedge an ingest worker; expiry returns
/// kTimeout.
[[nodiscard]] util::Expected<trace::Trace> parse_text(
    std::string_view text, const util::Deadline& deadline = {});

/// Reads and parses a text trace from `path`.
[[nodiscard]] util::Expected<trace::Trace> read_text_file(
    const std::string& path);

/// Serializes a Trace to darshan-parser text form (POSIX module only).
[[nodiscard]] std::string to_text(const trace::Trace& trace);

/// Writes `to_text(trace)` to `path`.
[[nodiscard]] util::Status write_text_file(const trace::Trace& trace,
                                           const std::string& path);

}  // namespace mosaic::darshan
