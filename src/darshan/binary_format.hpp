// Compact binary trace container (".mbt" — Mosaic Binary Trace).
//
// Real Darshan logs are binary; the Blue Waters dataset holds 462k of them.
// MBT plays that role for synthetic populations: a checksummed, little-endian,
// length-prefixed encoding of a Trace that is ~20x smaller than the text
// form and loads without parsing overhead. A corrupted (bit-flipped or
// truncated) file is detected via an FNV-1a trailer checksum — this feeds the
// eviction path of the pre-processing stage.
//
// Layout (all integers little-endian):
//   magic "MBT1" | u32 version | job meta | u32 nfiles | nfiles records
//   | u64 fnv1a checksum of everything before the trailer
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace mosaic::darshan {

/// Current MBT format version.
inline constexpr std::uint32_t kMbtVersion = 1;

/// Encodes a trace to the MBT byte layout.
[[nodiscard]] std::vector<std::byte> to_mbt(const trace::Trace& trace);

/// Decodes an MBT buffer. Truncation, bad magic, version mismatch and
/// checksum failure all return kCorruptTrace — callers treat them like any
/// other corrupted input (evict and count).
[[nodiscard]] util::Expected<trace::Trace> parse_mbt(
    std::span<const std::byte> bytes);

/// File round-trips.
[[nodiscard]] util::Status write_mbt_file(const trace::Trace& trace,
                                          const std::string& path);
[[nodiscard]] util::Expected<trace::Trace> read_mbt_file(
    const std::string& path);

/// FNV-1a 64-bit hash, exposed for tests and for file-id hashing.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept;

/// FNV-1a over a string (used to derive FileRecord::file_id from paths).
[[nodiscard]] std::uint64_t fnv1a(std::string_view text) noexcept;

}  // namespace mosaic::darshan
