#include "darshan/text_format.hpp"

#include <cinttypes>
#include <set>
#include <tuple>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/fs.hpp"
#include "util/strings.hpp"

namespace mosaic::darshan {

using trace::FileRecord;
using trace::Trace;
using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

namespace {

/// Counter slots the parser understands, applied to a FileRecord.
enum class Counter {
  kOpens,
  kCloses,
  kSeeks,
  kReads,
  kWrites,
  kBytesRead,
  kBytesWritten,
  kOpenStart,
  kCloseEnd,
  kReadStart,
  kReadEnd,
  kWriteStart,
  kWriteEnd,
};

/// Counter descriptor: additive counters accumulate (MPI-IO splits its call
/// counts into independent + collective rows).
struct CounterSpec {
  Counter counter;
  bool additive = false;
};

/// Understood counters across the POSIX, MPI-IO and STDIO modules (the three
/// APIs the paper names). Unknown counters are skipped.
const std::map<std::string_view, CounterSpec>& counter_table() {
  static const std::map<std::string_view, CounterSpec> table{
      // POSIX.
      {"POSIX_OPENS", {Counter::kOpens}},
      {"POSIX_CLOSES", {Counter::kCloses}},  // emitted by us; absent upstream
      {"POSIX_SEEKS", {Counter::kSeeks}},
      {"POSIX_READS", {Counter::kReads}},
      {"POSIX_WRITES", {Counter::kWrites}},
      {"POSIX_BYTES_READ", {Counter::kBytesRead}},
      {"POSIX_BYTES_WRITTEN", {Counter::kBytesWritten}},
      {"POSIX_F_OPEN_START_TIMESTAMP", {Counter::kOpenStart}},
      {"POSIX_F_CLOSE_END_TIMESTAMP", {Counter::kCloseEnd}},
      {"POSIX_F_READ_START_TIMESTAMP", {Counter::kReadStart}},
      {"POSIX_F_READ_END_TIMESTAMP", {Counter::kReadEnd}},
      {"POSIX_F_WRITE_START_TIMESTAMP", {Counter::kWriteStart}},
      {"POSIX_F_WRITE_END_TIMESTAMP", {Counter::kWriteEnd}},
      // MPI-IO: independent and collective call counts accumulate.
      {"MPIIO_INDEP_OPENS", {Counter::kOpens, true}},
      {"MPIIO_COLL_OPENS", {Counter::kOpens, true}},
      {"MPIIO_INDEP_READS", {Counter::kReads, true}},
      {"MPIIO_COLL_READS", {Counter::kReads, true}},
      {"MPIIO_INDEP_WRITES", {Counter::kWrites, true}},
      {"MPIIO_COLL_WRITES", {Counter::kWrites, true}},
      {"MPIIO_BYTES_READ", {Counter::kBytesRead}},
      {"MPIIO_BYTES_WRITTEN", {Counter::kBytesWritten}},
      {"MPIIO_F_OPEN_START_TIMESTAMP", {Counter::kOpenStart}},
      {"MPIIO_F_CLOSE_END_TIMESTAMP", {Counter::kCloseEnd}},
      {"MPIIO_F_READ_START_TIMESTAMP", {Counter::kReadStart}},
      {"MPIIO_F_READ_END_TIMESTAMP", {Counter::kReadEnd}},
      {"MPIIO_F_WRITE_START_TIMESTAMP", {Counter::kWriteStart}},
      {"MPIIO_F_WRITE_END_TIMESTAMP", {Counter::kWriteEnd}},
      // STDIO.
      {"STDIO_OPENS", {Counter::kOpens}},
      {"STDIO_SEEKS", {Counter::kSeeks}},
      {"STDIO_READS", {Counter::kReads}},
      {"STDIO_WRITES", {Counter::kWrites}},
      {"STDIO_BYTES_READ", {Counter::kBytesRead}},
      {"STDIO_BYTES_WRITTEN", {Counter::kBytesWritten}},
      {"STDIO_F_OPEN_START_TIMESTAMP", {Counter::kOpenStart}},
      {"STDIO_F_CLOSE_END_TIMESTAMP", {Counter::kCloseEnd}},
      {"STDIO_F_READ_START_TIMESTAMP", {Counter::kReadStart}},
      {"STDIO_F_READ_END_TIMESTAMP", {Counter::kReadEnd}},
      {"STDIO_F_WRITE_START_TIMESTAMP", {Counter::kWriteStart}},
      {"STDIO_F_WRITE_END_TIMESTAMP", {Counter::kWriteEnd}},
  };
  return table;
}

void apply_counter(FileRecord& record, const CounterSpec& spec, double value) {
  const auto as_u64 = [value] {
    return value < 0.0 ? 0ull : static_cast<std::uint64_t>(value);
  };
  const auto set_or_add = [&](std::uint64_t& member) {
    member = spec.additive ? member + as_u64() : as_u64();
  };
  switch (spec.counter) {
    case Counter::kOpens: set_or_add(record.opens); break;
    case Counter::kCloses: set_or_add(record.closes); break;
    case Counter::kSeeks: set_or_add(record.seeks); break;
    case Counter::kReads: set_or_add(record.reads); break;
    case Counter::kWrites: set_or_add(record.writes); break;
    case Counter::kBytesRead: set_or_add(record.bytes_read); break;
    case Counter::kBytesWritten: set_or_add(record.bytes_written); break;
    case Counter::kOpenStart: record.open_ts = value; break;
    case Counter::kCloseEnd: record.close_ts = value; break;
    case Counter::kReadStart: record.first_read_ts = value; break;
    case Counter::kReadEnd: record.last_read_ts = value; break;
    case Counter::kWriteStart: record.first_write_ts = value; break;
    case Counter::kWriteEnd: record.last_write_ts = value; break;
  }
}

/// Parses a `# key: value` header line into the job metadata.
void apply_header(Trace& out, std::string_view key, std::string_view value) {
  using util::parse_double;
  using util::parse_uint;
  if (key == "exe") {
    // darshan records the full command line; the app name is argv[0]'s
    // basename, matching how the paper groups runs of "the same application".
    const auto fields = util::split_whitespace(value);
    if (!fields.empty()) {
      std::string_view exe = fields.front();
      if (const auto slash = exe.rfind('/'); slash != std::string_view::npos) {
        exe = exe.substr(slash + 1);
      }
      out.meta.app_name = std::string(exe);
    }
  } else if (key == "uid") {
    out.meta.user = std::string(value);
  } else if (key == "jobid") {
    if (const auto v = parse_uint(value)) out.meta.job_id = *v;
  } else if (key == "nprocs") {
    if (const auto v = parse_uint(value)) {
      out.meta.nprocs = static_cast<std::uint32_t>(*v);
    }
  } else if (key == "start_time") {
    if (const auto v = parse_double(value)) out.meta.start_time = *v;
  } else if (key == "run time" || key == "run_time") {
    if (const auto v = parse_double(value)) out.meta.run_time = *v;
  }
}

}  // namespace

Expected<Trace> parse_text(std::string_view text,
                           const util::Deadline& deadline) {
  // Clock reads are syscall-cheap but not free; amortize over a batch of
  // lines (a line is tens of bytes, so this bounds overrun to ~100KB of
  // parsing past expiry).
  constexpr std::size_t kDeadlineCheckInterval = 4096;
  Trace out;
  // Records keyed by (module, record id, rank): darshan emits one row per
  // counter, and the same file appears once per instrumented API layer.
  std::map<std::tuple<std::string, std::uint64_t, std::int32_t>, std::size_t>
      record_index;
  // Remembered module of each parsed record (same order as out.files).
  std::vector<std::string> record_module;

  std::size_t line_number = 0;
  std::size_t cursor = 0;
  while (cursor <= text.size()) {
    const std::size_t eol = text.find('\n', cursor);
    const std::string_view line =
        text.substr(cursor, eol == std::string_view::npos ? std::string_view::npos
                                                          : eol - cursor);
    cursor = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    if (line_number % kDeadlineCheckInterval == 0 && deadline.expired()) {
      return Error{ErrorCode::kTimeout,
                   "parse deadline exceeded at line " +
                       std::to_string(line_number)};
    }

    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;

    if (trimmed.front() == '#') {
      const std::string_view body = util::trim(trimmed.substr(1));
      if (const auto colon = body.find(':'); colon != std::string_view::npos) {
        apply_header(out, util::trim(body.substr(0, colon)),
                     util::trim(body.substr(colon + 1)));
      }
      continue;
    }

    const auto fields = util::split_whitespace(trimmed);
    if (fields.size() < 5) {
      return Error{ErrorCode::kParseError,
                   "line " + std::to_string(line_number) +
                       ": expected >=5 fields, got " +
                       std::to_string(fields.size())};
    }
    const std::string_view module = fields[0];
    if (module != "POSIX" && module != "MPI-IO" && module != "MPIIO" &&
        module != "STDIO") {
      continue;  // LUSTRE, HEATMAP, ... are out of scope
    }

    const auto rank = util::parse_int(fields[1]);
    const auto record_id = util::parse_uint(fields[2]);
    const auto value = util::parse_double(fields[4]);
    if (!rank || !record_id || !value) {
      return Error{ErrorCode::kParseError,
                   "line " + std::to_string(line_number) + ": bad numeric field"};
    }
    const auto counter_it = counter_table().find(fields[3]);
    if (counter_it == counter_table().end()) continue;  // tolerated counter

    // MPI-IO appears as "MPI-IO" in darshan-parser output; normalize.
    const std::string module_key = module == "MPI-IO" ? "MPIIO"
                                                      : std::string(module);
    const auto key = std::make_tuple(module_key, *record_id,
                                     static_cast<std::int32_t>(*rank));
    auto [slot, inserted] = record_index.try_emplace(key, out.files.size());
    if (inserted) {
      FileRecord record;
      record.file_id = *record_id;
      record.rank = static_cast<std::int32_t>(*rank);
      if (fields.size() >= 6) record.file_name = std::string(fields[5]);
      out.files.push_back(std::move(record));
      record_module.push_back(module_key);
    }
    apply_counter(out.files[slot->second], counter_it->second, *value);
  }

  if (out.meta.run_time <= 0.0) {
    return Error{ErrorCode::kParseError, "missing or invalid 'run time' header"};
  }

  // A file accessed through MPI-IO is instrumented twice: once at the MPI-IO
  // layer and once at the POSIX layer underneath. Keeping both would double
  // count every byte, so the higher-level MPI-IO record wins and the aliased
  // POSIX record is dropped. STDIO targets distinct streams and stays.
  {
    std::set<std::pair<std::uint64_t, std::int32_t>> mpiio_keys;
    for (std::size_t i = 0; i < out.files.size(); ++i) {
      if (record_module[i] == "MPIIO") {
        mpiio_keys.emplace(out.files[i].file_id, out.files[i].rank);
      }
    }
    if (!mpiio_keys.empty()) {
      std::vector<FileRecord> kept;
      kept.reserve(out.files.size());
      for (std::size_t i = 0; i < out.files.size(); ++i) {
        if (record_module[i] == "POSIX" &&
            mpiio_keys.contains({out.files[i].file_id, out.files[i].rank})) {
          continue;
        }
        kept.push_back(std::move(out.files[i]));
      }
      out.files = std::move(kept);
    }
  }

  // Upstream darshan has no CLOSE counter; a clean record closes as often as
  // it opens.
  for (auto& record : out.files) {
    if (record.closes == 0) record.closes = record.opens;
  }
  return out;
}

Expected<Trace> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kIoError, "cannot open " + path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Error{ErrorCode::kIoError, "read failure on " + path};
  }
  return parse_text(buffer.str());
}

std::string to_text(const Trace& trace) {
  std::string out;
  out.reserve(256 + trace.files.size() * 512);
  char line[512];

  std::snprintf(line, sizeof line, "# darshan log version: 3.41\n");
  out += line;
  std::snprintf(line, sizeof line, "# exe: /usr/bin/%s\n",
                trace.meta.app_name.c_str());
  out += line;
  std::snprintf(line, sizeof line, "# uid: %s\n", trace.meta.user.c_str());
  out += line;
  std::snprintf(line, sizeof line, "# jobid: %" PRIu64 "\n", trace.meta.job_id);
  out += line;
  std::snprintf(line, sizeof line, "# start_time: %.0f\n",
                trace.meta.start_time);
  out += line;
  std::snprintf(line, sizeof line, "# nprocs: %u\n", trace.meta.nprocs);
  out += line;
  std::snprintf(line, sizeof line, "# run time: %.6f\n", trace.meta.run_time);
  out += line;
  out += "\n# <module> <rank> <record id> <counter> <value> <file name>\n";

  const auto emit = [&](const FileRecord& record, const char* counter,
                        double value) {
    const char* name =
        record.file_name.empty() ? "<unknown>" : record.file_name.c_str();
    std::snprintf(line, sizeof line,
                  "POSIX\t%d\t%" PRIu64 "\t%s\t%.6f\t%s\n", record.rank,
                  record.file_id, counter, value, name);
    out += line;
  };

  for (const auto& record : trace.files) {
    emit(record, "POSIX_OPENS", static_cast<double>(record.opens));
    emit(record, "POSIX_CLOSES", static_cast<double>(record.closes));
    emit(record, "POSIX_SEEKS", static_cast<double>(record.seeks));
    emit(record, "POSIX_READS", static_cast<double>(record.reads));
    emit(record, "POSIX_WRITES", static_cast<double>(record.writes));
    emit(record, "POSIX_BYTES_READ", static_cast<double>(record.bytes_read));
    emit(record, "POSIX_BYTES_WRITTEN",
         static_cast<double>(record.bytes_written));
    emit(record, "POSIX_F_OPEN_START_TIMESTAMP", record.open_ts);
    emit(record, "POSIX_F_CLOSE_END_TIMESTAMP", record.close_ts);
    emit(record, "POSIX_F_READ_START_TIMESTAMP", record.first_read_ts);
    emit(record, "POSIX_F_READ_END_TIMESTAMP", record.last_read_ts);
    emit(record, "POSIX_F_WRITE_START_TIMESTAMP", record.first_write_ts);
    emit(record, "POSIX_F_WRITE_END_TIMESTAMP", record.last_write_ts);
  }
  return out;
}

Status write_text_file(const Trace& trace, const std::string& path) {
  // Staged + renamed so a killed writer never leaves a torn half-trace that
  // a later ingest would count as one more corrupted input.
  return util::write_file_atomic(path, to_text(trace));
}

}  // namespace mosaic::darshan
