#include "darshan/io.hpp"

#include <algorithm>
#include <filesystem>

#include "darshan/binary_format.hpp"
#include "darshan/text_format.hpp"

namespace mosaic::darshan {

using util::Error;
using util::ErrorCode;
using util::Expected;

namespace fs = std::filesystem;

Expected<trace::Trace> read_trace_file(const std::string& path) {
  if (path.ends_with(".mbt")) return read_mbt_file(path);
  return read_text_file(path);
}

Expected<std::vector<std::string>> scan_trace_dir(const std::string& directory) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Error{ErrorCode::kNotFound, directory + " is not a directory"};
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().string();
    if (name.ends_with(".mbt") || name.ends_with(".txt")) {
      paths.push_back(name);
    }
  }
  if (ec) {
    return Error{ErrorCode::kIoError,
                 "scanning " + directory + ": " + ec.message()};
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace mosaic::darshan
