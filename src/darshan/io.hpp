// Unified trace loading: dispatch by file extension plus directory scans.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace mosaic::darshan {

/// Loads a trace from `path`: ".mbt" files decode as binary, everything else
/// parses as darshan-parser text.
[[nodiscard]] util::Expected<trace::Trace> read_trace_file(
    const std::string& path);

/// Lists trace files (".mbt", ".txt", ".darshan.txt") under `directory`,
/// sorted lexicographically for reproducible processing order.
[[nodiscard]] util::Expected<std::vector<std::string>> scan_trace_dir(
    const std::string& directory);

}  // namespace mosaic::darshan
