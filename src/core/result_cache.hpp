// Digest-keyed LRU cache of per-trace analysis results (DESIGN.md §17).
//
// The daemon's serving story: a trace re-submitted by a rerun (same file
// landing again, a client retrying) must not pay ingest + categorization a
// second time. The cache key is the same identity the dedup stage already
// computes (StreamingPreprocessor::ValidDigest — app key, job id, total
// bytes): two traces the batch pipeline would dedup are one cache entry
// here. Values are the serialized artifacts the daemon serves verbatim —
// the compact TraceResult JSON for /results and the pretty provenance JSON
// for /explain/<trace-id>, kept byte-identical to `mosaic explain --json`.
//
// Bounded by value bytes, not entry count, so the operator reasons in
// memory: inserts evict least-recently-used entries until the new total
// fits. Thread-safe (one mutex; the daemon's scan loop, submission
// sessions and HTTP handlers all touch it). lookup() and insert() feed the
// mosaic_cache_{hits,misses,evictions}_total counters and the
// mosaic_cache_{bytes,entries} gauges; peek() is a metrics-silent read for
// HTTP serving, so scrapes don't masquerade as submission traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <mutex>

namespace mosaic::core {

/// The serialized artifacts cached per trace.
struct CachedAnalysis {
  std::string trace_id;      ///< decimal job id — the /explain/<id> handle
  std::string app_key;
  std::string source_path;   ///< file the analysis was loaded from
  std::string result_json;   ///< compact TraceResult JSON (served in /results)
  std::string explain_json;  ///< pretty provenance JSON + trailing newline,
                             ///< byte-identical to `mosaic explain --json`

  /// Accounted size: the payload strings (the parts that scale with trace
  /// complexity), ignoring map/list overhead.
  [[nodiscard]] std::size_t bytes() const {
    return trace_id.size() + app_key.size() + source_path.size() +
           result_json.size() + explain_json.size();
  }
};

/// The cache key for a trace with the dedup-digest identity fields.
[[nodiscard]] std::string result_cache_key(const std::string& app_key,
                                           std::uint64_t job_id,
                                           std::uint64_t total_bytes);

/// Byte-bounded LRU over CachedAnalysis values. All methods thread-safe.
class ResultCache {
 public:
  /// `capacity_bytes` bounds the sum of CachedAnalysis::bytes() across
  /// entries. 0 keeps nothing: every lookup misses and every insert is
  /// evicted on the spot.
  explicit ResultCache(std::size_t capacity_bytes);

  /// Returns a copy of the entry and marks it most-recently-used. Counts a
  /// hit or a miss.
  [[nodiscard]] std::optional<CachedAnalysis> lookup(const std::string& key);

  /// Metrics-silent, recency-neutral read (HTTP serving path).
  [[nodiscard]] std::optional<CachedAnalysis> peek(
      const std::string& key) const;

  /// Inserts or replaces `key`, then evicts least-recently-used entries
  /// until the total fits the byte capacity. An entry larger than the whole
  /// capacity is dropped immediately (counted as an eviction).
  void insert(const std::string& key, CachedAnalysis value);

  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }

  // Per-instance counters (the process-global mosaic_cache_* series
  // aggregate across instances; tests read these for exactness).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  void evict_to_fit_locked();
  void note_eviction_locked(std::size_t entry_bytes);

  const std::size_t capacity_bytes_;

  mutable std::mutex mutex_;
  /// Front = most recently used.
  std::list<std::pair<std::string, CachedAnalysis>> order_;
  std::unordered_map<std::string, decltype(order_)::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mosaic::core
