// Pre-processing merges (paper §III-B2).
//
// (a) Concurrent operation merging: overlapping ops fuse into one. This
//     absorbs process desynchronization (many ranks writing the same
//     checkpoint slightly staggered) and cleans the trace for segmentation.
// (b) Neighbor merging: nearly-adjacent ops fuse when the gap is negligible
//     — under 0.1% of total execution time or under 1% of the neighbor's
//     duration — catching ranks that drifted past the overlap point.
//
// Both passes conserve total bytes and the union of covered time.
#pragma once

#include <span>
#include <vector>

#include "core/thresholds.hpp"
#include "trace/trace.hpp"

namespace mosaic::obs {
struct MergeProvenance;
}  // namespace mosaic::obs

namespace mosaic::core {

/// Fuses overlapping (or touching) operations. Input need not be sorted;
/// output is sorted by start and pairwise disjoint. Bytes sum; the rank
/// becomes kSharedRank when the merged ops came from different ranks.
[[nodiscard]] std::vector<trace::IoOp> merge_concurrent(
    std::vector<trace::IoOp> ops);

/// Fuses near-adjacent operations per the gap rule. Precondition: ops sorted
/// by start and pairwise disjoint (i.e. output of merge_concurrent).
/// `total_runtime` is the job's wall-clock duration.
[[nodiscard]] std::vector<trace::IoOp> merge_neighbors(
    std::vector<trace::IoOp> ops, double total_runtime,
    const Thresholds& thresholds = {});

/// Convenience: both passes in order. When `evidence` is non-null the merge
/// funnel (raw / after-concurrent / merged counts and covered seconds) is
/// recorded for the provenance journal.
[[nodiscard]] std::vector<trace::IoOp> merge_ops(
    std::vector<trace::IoOp> ops, double total_runtime,
    const Thresholds& thresholds = {}, obs::MergeProvenance* evidence = nullptr);

}  // namespace mosaic::core
