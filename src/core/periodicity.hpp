// Periodic-operation detection (paper §III-B3a).
//
// Segments are embedded as (duration, log1p(volume)) feature points, min-max
// scaled, and clustered with Mean-Shift. A cluster of size >= 2 whose raw
// durations and volumes agree within configured spreads is a periodic
// group — a trace can hold several (e.g. checkpointing *and* periodic input
// reads). Each group reports the period's order of magnitude, the per-op
// volume and the activity (busy-time) rate during the period.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "cluster/meanshift.hpp"
#include "core/columns.hpp"
#include "core/segmentation.hpp"
#include "core/thresholds.hpp"
#include "trace/trace.hpp"

namespace mosaic::obs {
struct PeriodicityProvenance;
}  // namespace mosaic::obs

namespace mosaic::core {

/// Order of magnitude of a detected period (paper Table I).
enum class PeriodMagnitude : std::uint8_t {
  kSecond,     ///< period <= 60 s
  kMinute,     ///< <= 1 h
  kHour,       ///< <= 24 h
  kDayOrMore,  ///< beyond
};

[[nodiscard]] const char* period_magnitude_name(PeriodMagnitude m) noexcept;

/// One detected periodic operation.
struct PeriodicGroup {
  double period_seconds = 0.0;   ///< mean segment length of the group
  double mean_bytes = 0.0;       ///< mean volume per occurrence
  double busy_ratio = 0.0;       ///< mean op_duration / period
  std::size_t occurrences = 0;   ///< segments in the group
  PeriodMagnitude magnitude = PeriodMagnitude::kSecond;
};

/// Periodicity verdict for one op kind of one trace.
struct PeriodicityResult {
  bool periodic = false;
  std::vector<PeriodicGroup> groups;  ///< accepted groups, largest first

  /// The strongest (most occurrences) group. Precondition: periodic.
  [[nodiscard]] const PeriodicGroup& dominant() const {
    MOSAIC_ASSERT(!groups.empty());
    return groups.front();
  }
};

/// Buckets a period into its magnitude using the thresholds' bounds.
[[nodiscard]] PeriodMagnitude classify_period_magnitude(
    double period_seconds, const Thresholds& thresholds = {}) noexcept;

/// Reusable scratch for both periodicity detectors. One instance per worker
/// thread; buffers keep their high-water capacity across traces so the
/// steady-state path stops allocating (DESIGN.md §12). Contents are an
/// implementation detail of the detectors.
struct PeriodicityWorkspace {
  cluster::PointSet points{2};        ///< (length, log1p bytes) embedding
  cluster::PointSet scaled{2};        ///< min-max scaled copy
  cluster::MeanShiftWorkspace mean_shift;  ///< clustering scratch
  cluster::MeanShiftResult clusters;       ///< clustering output, reused
  std::vector<std::pair<double, double>> samples;  ///< (time, bytes) spread
  std::vector<double> sample_times;    ///< columnar spread: sample times
  std::vector<double> sample_weights;  ///< columnar spread: sample weights
  std::vector<double> series;                      ///< binned activity signal
};

/// Runs the Mean-Shift detector over a trace's segments. When `evidence` is
/// non-null, the bandwidth, every cluster candidate with its CV acceptance
/// tests, and the verdict margin are recorded into evidence->mean_shift and
/// the top-level verdict fields.
[[nodiscard]] PeriodicityResult detect_periodicity(
    std::span<const Segment> segments, const Thresholds& thresholds = {},
    obs::PeriodicityProvenance* evidence = nullptr);

/// Workspace form of the Mean-Shift detector: all scratch comes from
/// `workspace`. Results are identical to the convenience form bit for bit.
[[nodiscard]] PeriodicityResult detect_periodicity(
    std::span<const Segment> segments, const Thresholds& thresholds,
    obs::PeriodicityProvenance* evidence, PeriodicityWorkspace& workspace);

/// Frequency-domain detector (paper SV future work): bins the merged op
/// stream into a volume-per-second activity signal, runs the FFT +
/// autocorrelation analysis, and converts significant peaks to
/// PeriodicGroups. Runs longer than thresholds.frequency_max_bins seconds
/// are binned coarser so the FFT cost per trace stays bounded.
/// When `evidence` is non-null, every spectral peak and its score test are
/// recorded into evidence->frequency and the top-level verdict fields (the
/// mean_shift sub-record is left untouched so the hybrid backend can layer
/// both).
[[nodiscard]] PeriodicityResult detect_periodicity_frequency(
    std::span<const trace::IoOp> merged_ops, double runtime,
    const Thresholds& thresholds = {},
    obs::PeriodicityProvenance* evidence = nullptr);

/// Workspace form of the frequency detector: the sample and series buffers
/// come from `workspace`. Results are identical to the convenience form bit
/// for bit.
[[nodiscard]] PeriodicityResult detect_periodicity_frequency(
    std::span<const trace::IoOp> merged_ops, double runtime,
    const Thresholds& thresholds, obs::PeriodicityProvenance* evidence,
    PeriodicityWorkspace& workspace);

/// Columnar form used by the analyzer hot path: reads the SoA mirror of the
/// merged stream, spreads samples into time/weight columns, and bins them
/// through the SIMD scatter kernel. Bit-identical to the span forms for the
/// same merged stream (same samples, same order, same arithmetic).
[[nodiscard]] PeriodicityResult detect_periodicity_frequency(
    const OpColumns& merged_ops, double runtime, const Thresholds& thresholds,
    obs::PeriodicityProvenance* evidence, PeriodicityWorkspace& workspace);

}  // namespace mosaic::core
