#include "core/metadata.hpp"

#include <algorithm>
#include <cmath>

#include "obs/provenance.hpp"
#include "util/simd.hpp"
#include "util/stats.hpp"

namespace mosaic::core {

namespace {

/// Normalized margin of `value` from `limit`, in [0, 1].
double boundary_margin(double value, double limit) {
  if (limit <= 0.0) return 1.0;
  return std::clamp(std::abs(limit - value) / limit, 0.0, 1.0);
}

/// Copies the verdict and its thresholds into the provenance record. The
/// confidence is the margin of the *closest* rule comparison: a trace whose
/// spike count sat right at the boundary explains itself as ambiguous even
/// when the other rules were clear-cut.
void record_metadata(obs::MetadataProvenance& evidence,
                     const MetadataResult& result, std::uint32_t nprocs,
                     const Thresholds& thresholds) {
  evidence.total_requests = result.total_requests;
  evidence.nprocs = nprocs;
  evidence.max_requests_per_second = result.max_requests_per_second;
  evidence.mean_requests_per_second = result.mean_requests_per_second;
  evidence.spike_seconds = result.spike_seconds;
  evidence.high_spike_threshold = thresholds.high_spike_requests;
  evidence.spike_threshold = thresholds.spike_requests;
  evidence.multiple_spike_count = thresholds.multiple_spike_count;
  evidence.high_density_mean_threshold = thresholds.high_density_mean_requests;
  evidence.insignificant = result.insignificant;
  evidence.high_spike = result.high_spike;
  evidence.multiple_spikes = result.multiple_spikes;
  evidence.high_density = result.high_density;
  if (result.insignificant) {
    evidence.confidence =
        boundary_margin(static_cast<double>(result.total_requests),
                        static_cast<double>(nprocs));
    return;
  }
  evidence.confidence = std::min(
      {boundary_margin(result.max_requests_per_second,
                       thresholds.high_spike_requests),
       boundary_margin(static_cast<double>(result.spike_seconds),
                       static_cast<double>(thresholds.multiple_spike_count)),
       boundary_margin(result.mean_requests_per_second,
                       thresholds.high_density_mean_requests)});
}

}  // namespace

MetadataResult classify_metadata(std::span<const trace::MetaEvent> events,
                                 double runtime, std::uint32_t nprocs,
                                 const Thresholds& thresholds,
                                 obs::MetadataProvenance* evidence) {
  util::Histogram histogram(0.0, 1.0, 1);
  return classify_metadata(events, runtime, nprocs, thresholds, evidence,
                           histogram);
}

MetadataResult classify_metadata(std::span<const trace::MetaEvent> events,
                                 double runtime, std::uint32_t nprocs,
                                 const Thresholds& thresholds,
                                 obs::MetadataProvenance* evidence,
                                 util::Histogram& histogram) {
  MOSAIC_ASSERT(runtime > 0.0);
  MetadataResult result;
  for (const trace::MetaEvent& event : events) {
    result.total_requests += event.requests;
  }
  result.mean_requests_per_second =
      static_cast<double>(result.total_requests) / runtime;

  // Below one request per rank the job barely touched the metadata server.
  if (result.total_requests < nprocs) {
    result.insignificant = true;
    if (evidence != nullptr) {
      record_metadata(*evidence, result, nprocs, thresholds);
    }
    return result;
  }
  result.insignificant = false;

  // Per-second request histogram.
  const auto seconds =
      static_cast<std::size_t>(std::max(1.0, std::ceil(runtime)));
  histogram.reset(0.0, static_cast<double>(seconds), seconds);
  for (const trace::MetaEvent& event : events) {
    histogram.add(event.time, static_cast<double>(event.requests));
  }

  // One fused SIMD pass over the per-second bins: the peak rate and the
  // spike-second count in a single sweep. Max and count-above-threshold are
  // order-independent-exact, so this matches the old scalar loop bit for bit
  // (bins are non-negative request counts, so the max is never below the
  // scalar loop's 0.0 starting value).
  std::size_t spike_seconds = 0;
  result.max_requests_per_second = util::simd::max_and_count_ge(
      histogram.counts(), thresholds.spike_requests, spike_seconds);
  result.spike_seconds = spike_seconds;

  result.high_spike =
      result.max_requests_per_second >= thresholds.high_spike_requests;
  result.multiple_spikes =
      result.spike_seconds >= thresholds.multiple_spike_count;
  result.high_density =
      result.spike_seconds >= thresholds.multiple_spike_count &&
      result.mean_requests_per_second >= thresholds.high_density_mean_requests;
  if (evidence != nullptr) {
    record_metadata(*evidence, result, nprocs, thresholds);
  }
  return result;
}

}  // namespace mosaic::core
