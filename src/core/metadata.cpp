#include "core/metadata.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace mosaic::core {

MetadataResult classify_metadata(std::span<const trace::MetaEvent> events,
                                 double runtime, std::uint32_t nprocs,
                                 const Thresholds& thresholds) {
  MOSAIC_ASSERT(runtime > 0.0);
  MetadataResult result;
  for (const trace::MetaEvent& event : events) {
    result.total_requests += event.requests;
  }
  result.mean_requests_per_second =
      static_cast<double>(result.total_requests) / runtime;

  // Below one request per rank the job barely touched the metadata server.
  if (result.total_requests < nprocs) {
    result.insignificant = true;
    return result;
  }
  result.insignificant = false;

  // Per-second request histogram.
  const auto seconds =
      static_cast<std::size_t>(std::max(1.0, std::ceil(runtime)));
  util::Histogram histogram(0.0, static_cast<double>(seconds), seconds);
  for (const trace::MetaEvent& event : events) {
    histogram.add(event.time, static_cast<double>(event.requests));
  }

  for (std::size_t i = 0; i < histogram.bin_count(); ++i) {
    const double requests = histogram.count(i);
    result.max_requests_per_second =
        std::max(result.max_requests_per_second, requests);
    if (requests >= thresholds.spike_requests) ++result.spike_seconds;
  }

  result.high_spike =
      result.max_requests_per_second >= thresholds.high_spike_requests;
  result.multiple_spikes =
      result.spike_seconds >= thresholds.multiple_spike_count;
  result.high_density =
      result.spike_seconds >= thresholds.multiple_spike_count &&
      result.mean_requests_per_second >= thresholds.high_density_mean_requests;
  return result;
}

}  // namespace mosaic::core
