#include "core/periodicity.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/fft.hpp"
#include "cluster/meanshift.hpp"
#include "util/stats.hpp"

namespace mosaic::core {

const char* period_magnitude_name(PeriodMagnitude m) noexcept {
  switch (m) {
    case PeriodMagnitude::kSecond: return "second";
    case PeriodMagnitude::kMinute: return "minute";
    case PeriodMagnitude::kHour: return "hour";
    case PeriodMagnitude::kDayOrMore: return "day_or_more";
  }
  return "unknown";
}

PeriodMagnitude classify_period_magnitude(double period_seconds,
                                          const Thresholds& thresholds) noexcept {
  // Half-open downward: a period of exactly one minute/hour/day belongs to
  // the larger bucket (an hourly checkpoint is periodic_hour).
  if (period_seconds < thresholds.period_second_max) {
    return PeriodMagnitude::kSecond;
  }
  if (period_seconds < thresholds.period_minute_max) {
    return PeriodMagnitude::kMinute;
  }
  if (period_seconds < thresholds.period_hour_max) {
    return PeriodMagnitude::kHour;
  }
  return PeriodMagnitude::kDayOrMore;
}

PeriodicityResult detect_periodicity(std::span<const Segment> segments,
                                     const Thresholds& thresholds) {
  PeriodicityResult result;
  if (segments.size() < thresholds.min_group_size) return result;

  // Feature embedding: (segment length, log1p(bytes)). The log tames the
  // many-orders-of-magnitude spread of I/O volumes so that min-max scaling
  // keeps both axes informative.
  cluster::PointSet points(2);
  for (const Segment& segment : segments) {
    const double features[2] = {segment.length,
                                std::log1p(static_cast<double>(segment.bytes))};
    points.add(features);
  }
  const cluster::PointSet scaled = cluster::min_max_scale(points);

  cluster::MeanShiftConfig config;
  config.bandwidth = thresholds.meanshift_bandwidth;
  const cluster::MeanShiftResult clusters = cluster::mean_shift(scaled, config);

  // Evaluate each cluster of sufficient size as a periodic-group candidate.
  for (std::size_t c = 0; c < clusters.cluster_sizes.size(); ++c) {
    if (clusters.cluster_sizes[c] < thresholds.min_group_size) continue;

    util::RunningStats durations;
    util::RunningStats volumes;
    util::RunningStats busy;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (clusters.labels[i] != c) continue;
      durations.add(segments[i].length);
      volumes.add(static_cast<double>(segments[i].bytes));
      busy.add(segments[i].busy_ratio());
    }

    // Min-max scaling is relative to the trace-wide range; one giant segment
    // can compress unrelated durations into one cluster. The raw-space CV
    // bounds reject such artifacts.
    if (durations.coefficient_of_variation() > thresholds.group_duration_cv) {
      continue;
    }
    if (volumes.coefficient_of_variation() > thresholds.group_volume_cv) {
      continue;
    }

    PeriodicGroup group;
    group.period_seconds = durations.mean();
    group.mean_bytes = volumes.mean();
    group.busy_ratio = busy.mean();
    group.occurrences = durations.count();
    group.magnitude = classify_period_magnitude(group.period_seconds, thresholds);
    result.groups.push_back(group);
  }

  std::sort(result.groups.begin(), result.groups.end(),
            [](const PeriodicGroup& a, const PeriodicGroup& b) {
              return a.occurrences > b.occurrences;
            });
  result.periodic = !result.groups.empty();
  return result;
}

PeriodicityResult detect_periodicity_frequency(
    std::span<const trace::IoOp> merged_ops, double runtime,
    const Thresholds& thresholds) {
  PeriodicityResult result;
  if (merged_ops.size() < thresholds.min_group_size + 1 || runtime <= 0.0) {
    return result;
  }

  // Bin the activity into a volume-per-second signal; coarsen the bins for
  // very long runs so the FFT stays bounded.
  const double bin_seconds = std::max(
      1.0, runtime / static_cast<double>(thresholds.frequency_max_bins));
  std::vector<std::pair<double, double>> samples;
  samples.reserve(merged_ops.size() * 2);
  double total_bytes = 0.0;
  double total_op_seconds = 0.0;
  double first_start = runtime;
  double last_start = 0.0;
  for (const trace::IoOp& op : merged_ops) {
    // Spread the op's bytes across its window at bin resolution so long
    // transfers are not mistaken for instant spikes.
    const auto spread = static_cast<std::size_t>(
        std::max(1.0, std::ceil(op.duration() / bin_seconds)));
    const double chunk =
        static_cast<double>(op.bytes) / static_cast<double>(spread);
    for (std::size_t i = 0; i < spread; ++i) {
      samples.emplace_back(op.start + (static_cast<double>(i) + 0.5) *
                                          op.duration() /
                                          static_cast<double>(spread),
                           chunk);
    }
    total_bytes += static_cast<double>(op.bytes);
    total_op_seconds += op.duration();
    first_start = std::min(first_start, op.start);
    last_start = std::max(last_start, op.start);
  }
  const std::vector<double> series =
      cluster::bin_series(samples, runtime, bin_seconds);

  cluster::DftDetectorConfig config;
  config.bin_seconds = bin_seconds;
  config.min_score = thresholds.frequency_min_score;
  const cluster::DftPeriodicity detected =
      cluster::detect_periodicity_dft(series, config);
  if (!detected.periodic) return result;

  const double active_span = std::max(last_start - first_start, bin_seconds);
  for (const cluster::SpectralPeak& peak : detected.peaks) {
    if (peak.score < thresholds.frequency_min_score) continue;
    PeriodicGroup group;
    group.period_seconds = peak.period_seconds;
    group.occurrences = static_cast<std::size_t>(
        std::max(1.0, std::floor(active_span / peak.period_seconds)));
    if (group.occurrences < thresholds.min_group_size) continue;
    // The signal view cannot attribute volume per peak; apportion the trace
    // totals across the occurrences (exact when one periodic op dominates).
    group.mean_bytes = total_bytes / static_cast<double>(group.occurrences);
    group.busy_ratio = std::clamp(
        total_op_seconds / static_cast<double>(group.occurrences) /
            group.period_seconds,
        0.0, 1.0);
    group.magnitude = classify_period_magnitude(group.period_seconds, thresholds);
    result.groups.push_back(group);
  }
  result.periodic = !result.groups.empty();
  return result;
}

}  // namespace mosaic::core
