#include "core/periodicity.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/fft.hpp"
#include "cluster/meanshift.hpp"
#include "obs/provenance.hpp"
#include "util/stats.hpp"

namespace mosaic::core {

namespace {

/// Normalized margin of `value` from `limit` on the side that passed (or
/// failed) the comparison, in [0, 1]. Used as the per-axis confidence: 0
/// means the statistic sat exactly on the decision boundary.
double boundary_margin(double value, double limit) {
  if (limit <= 0.0) return 1.0;
  const double margin = std::abs(limit - value) / limit;
  return std::clamp(margin, 0.0, 1.0);
}

/// Copies the accepted groups into the provenance record.
void record_groups(obs::PeriodicityProvenance& evidence,
                   const PeriodicityResult& result) {
  evidence.periodic = result.periodic;
  evidence.groups.clear();
  for (const PeriodicGroup& group : result.groups) {
    obs::PeriodicGroupProvenance g;
    g.period_seconds = group.period_seconds;
    g.mean_bytes = group.mean_bytes;
    g.busy_ratio = group.busy_ratio;
    g.occurrences = group.occurrences;
    g.magnitude = period_magnitude_name(group.magnitude);
    evidence.groups.push_back(std::move(g));
  }
}

}  // namespace

const char* period_magnitude_name(PeriodMagnitude m) noexcept {
  switch (m) {
    case PeriodMagnitude::kSecond: return "second";
    case PeriodMagnitude::kMinute: return "minute";
    case PeriodMagnitude::kHour: return "hour";
    case PeriodMagnitude::kDayOrMore: return "day_or_more";
  }
  return "unknown";
}

PeriodMagnitude classify_period_magnitude(double period_seconds,
                                          const Thresholds& thresholds) noexcept {
  // Half-open downward: a period of exactly one minute/hour/day belongs to
  // the larger bucket (an hourly checkpoint is periodic_hour).
  if (period_seconds < thresholds.period_second_max) {
    return PeriodMagnitude::kSecond;
  }
  if (period_seconds < thresholds.period_minute_max) {
    return PeriodMagnitude::kMinute;
  }
  if (period_seconds < thresholds.period_hour_max) {
    return PeriodMagnitude::kHour;
  }
  return PeriodMagnitude::kDayOrMore;
}

PeriodicityResult detect_periodicity(std::span<const Segment> segments,
                                     const Thresholds& thresholds,
                                     obs::PeriodicityProvenance* evidence) {
  PeriodicityWorkspace workspace;
  return detect_periodicity(segments, thresholds, evidence, workspace);
}

PeriodicityResult detect_periodicity(std::span<const Segment> segments,
                                     const Thresholds& thresholds,
                                     obs::PeriodicityProvenance* evidence,
                                     PeriodicityWorkspace& workspace) {
  PeriodicityResult result;
  if (evidence != nullptr) {
    evidence->mean_shift.ran = true;
    evidence->mean_shift.bandwidth = thresholds.meanshift_bandwidth;
    evidence->mean_shift.duration_cv_limit = thresholds.group_duration_cv;
    evidence->mean_shift.volume_cv_limit = thresholds.group_volume_cv;
    evidence->confidence = 1.0;  // no candidates: clearly non-periodic
  }
  if (segments.size() < thresholds.min_group_size) {
    if (evidence != nullptr) record_groups(*evidence, result);
    return result;
  }

  // Feature embedding: (segment length, log1p(bytes)). The log tames the
  // many-orders-of-magnitude spread of I/O volumes so that min-max scaling
  // keeps both axes informative.
  cluster::PointSet& points = workspace.points;
  points.reset(2);
  for (const Segment& segment : segments) {
    const double features[2] = {segment.length,
                                std::log1p(static_cast<double>(segment.bytes))};
    points.add(features);
  }
  cluster::min_max_scale(points, workspace.scaled);

  cluster::MeanShiftConfig config;
  config.bandwidth = thresholds.meanshift_bandwidth;
  cluster::mean_shift(workspace.scaled, config, workspace.mean_shift,
                      workspace.clusters);
  const cluster::MeanShiftResult& clusters = workspace.clusters;
  if (evidence != nullptr) {
    evidence->mean_shift.points = segments.size();
    evidence->mean_shift.iterations = clusters.total_iterations;
  }

  // Confidence: margin of the deciding statistic from its boundary. Accepted
  // groups contribute their tightest passing CV margin; a non-periodic
  // verdict is as confident as its *closest* rejected candidate was far from
  // passing.
  double accepted_margin = 1.0;
  double rejected_margin = 1.0;
  bool any_accepted = false;
  bool any_rejected = false;

  // Evaluate each cluster of sufficient size as a periodic-group candidate.
  for (std::size_t c = 0; c < clusters.cluster_sizes.size(); ++c) {
    if (clusters.cluster_sizes[c] < thresholds.min_group_size) {
      // Undersized clusters are uninteresting noise except for the near
      // misses (>= 2 points) worth showing in an explanation.
      if (evidence != nullptr && clusters.cluster_sizes[c] >= 2) {
        obs::MeanShiftCandidate candidate;
        candidate.size = clusters.cluster_sizes[c];
        candidate.center_length = clusters.modes[c][0];
        candidate.center_log_volume = clusters.modes[c][1];
        candidate.accepted = false;
        candidate.rejected_by = "group-size";
        evidence->mean_shift.candidates.push_back(std::move(candidate));
      }
      continue;
    }

    util::RunningStats durations;
    util::RunningStats volumes;
    util::RunningStats busy;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (clusters.labels[i] != c) continue;
      durations.add(segments[i].length);
      volumes.add(static_cast<double>(segments[i].bytes));
      busy.add(segments[i].busy_ratio());
    }

    const double duration_cv = durations.coefficient_of_variation();
    const double volume_cv = volumes.coefficient_of_variation();

    obs::MeanShiftCandidate candidate;
    if (evidence != nullptr) {
      candidate.size = durations.count();
      candidate.period_seconds = durations.mean();
      candidate.duration_cv = duration_cv;
      candidate.volume_cv = volume_cv;
      candidate.center_length = clusters.modes[c][0];
      candidate.center_log_volume = clusters.modes[c][1];
    }

    // Min-max scaling is relative to the trace-wide range; one giant segment
    // can compress unrelated durations into one cluster. The raw-space CV
    // bounds reject such artifacts.
    const bool duration_ok = duration_cv <= thresholds.group_duration_cv;
    const bool volume_ok = volume_cv <= thresholds.group_volume_cv;
    if (!duration_ok || !volume_ok) {
      any_rejected = true;
      const double violation =
          !duration_ok ? boundary_margin(duration_cv, thresholds.group_duration_cv)
                       : boundary_margin(volume_cv, thresholds.group_volume_cv);
      rejected_margin = std::min(rejected_margin, violation);
      if (evidence != nullptr) {
        candidate.accepted = false;
        candidate.rejected_by = !duration_ok ? "duration-cv" : "volume-cv";
        evidence->mean_shift.candidates.push_back(std::move(candidate));
      }
      continue;
    }

    any_accepted = true;
    accepted_margin = std::min(
        accepted_margin,
        std::min(boundary_margin(duration_cv, thresholds.group_duration_cv),
                 boundary_margin(volume_cv, thresholds.group_volume_cv)));
    if (evidence != nullptr) {
      candidate.accepted = true;
      evidence->mean_shift.candidates.push_back(std::move(candidate));
    }

    PeriodicGroup group;
    group.period_seconds = durations.mean();
    group.mean_bytes = volumes.mean();
    group.busy_ratio = busy.mean();
    group.occurrences = durations.count();
    group.magnitude = classify_period_magnitude(group.period_seconds, thresholds);
    result.groups.push_back(group);
  }

  std::sort(result.groups.begin(), result.groups.end(),
            [](const PeriodicGroup& a, const PeriodicGroup& b) {
              return a.occurrences > b.occurrences;
            });
  result.periodic = !result.groups.empty();
  if (evidence != nullptr) {
    if (any_accepted) {
      evidence->confidence = accepted_margin;
    } else if (any_rejected) {
      evidence->confidence = rejected_margin;
    }
    record_groups(*evidence, result);
  }
  return result;
}

PeriodicityResult detect_periodicity_frequency(
    std::span<const trace::IoOp> merged_ops, double runtime,
    const Thresholds& thresholds, obs::PeriodicityProvenance* evidence) {
  PeriodicityWorkspace workspace;
  return detect_periodicity_frequency(merged_ops, runtime, thresholds,
                                      evidence, workspace);
}

namespace {

/// Trace-level aggregates of the merged stream, accumulated while the
/// activity samples are spread. Shared by the span and columnar forms.
struct FrequencySignal {
  double total_bytes = 0.0;
  double total_op_seconds = 0.0;
  double first_start = 0.0;
  double last_start = 0.0;
};

}  // namespace

/// Shared second half of the frequency detector: DFT over the binned series,
/// peak-to-group conversion, evidence capture. Defined after the public
/// overloads, which only differ in how they build the series.
static PeriodicityResult finish_frequency(const std::vector<double>& series,
                                          double bin_seconds,
                                          const FrequencySignal& signal,
                                          const Thresholds& thresholds,
                                          obs::PeriodicityProvenance* evidence);

PeriodicityResult detect_periodicity_frequency(
    std::span<const trace::IoOp> merged_ops, double runtime,
    const Thresholds& thresholds, obs::PeriodicityProvenance* evidence,
    PeriodicityWorkspace& workspace) {
  if (evidence != nullptr) {
    evidence->frequency.ran = true;
    evidence->frequency.min_score = thresholds.frequency_min_score;
    evidence->confidence = 1.0;  // no signal at all: clearly non-periodic
  }
  if (merged_ops.size() < thresholds.min_group_size + 1 || runtime <= 0.0) {
    PeriodicityResult result;
    if (evidence != nullptr) record_groups(*evidence, result);
    return result;
  }

  // Bin the activity into a volume-per-second signal; coarsen the bins for
  // very long runs so the FFT stays bounded.
  const double bin_seconds = std::max(
      1.0, runtime / static_cast<double>(thresholds.frequency_max_bins));
  std::vector<std::pair<double, double>>& samples = workspace.samples;
  samples.clear();
  samples.reserve(merged_ops.size() * 2);
  FrequencySignal signal;
  signal.first_start = runtime;
  signal.last_start = 0.0;
  for (const trace::IoOp& op : merged_ops) {
    // Spread the op's bytes across its window at bin resolution so long
    // transfers are not mistaken for instant spikes.
    const auto spread = static_cast<std::size_t>(
        std::max(1.0, std::ceil(op.duration() / bin_seconds)));
    const double chunk =
        static_cast<double>(op.bytes) / static_cast<double>(spread);
    for (std::size_t i = 0; i < spread; ++i) {
      samples.emplace_back(op.start + (static_cast<double>(i) + 0.5) *
                                          op.duration() /
                                          static_cast<double>(spread),
                           chunk);
    }
    signal.total_bytes += static_cast<double>(op.bytes);
    signal.total_op_seconds += op.duration();
    signal.first_start = std::min(signal.first_start, op.start);
    signal.last_start = std::max(signal.last_start, op.start);
  }
  cluster::bin_series(samples, runtime, bin_seconds, workspace.series);
  return finish_frequency(workspace.series, bin_seconds, signal, thresholds,
                          evidence);
}

PeriodicityResult detect_periodicity_frequency(
    const OpColumns& merged_ops, double runtime, const Thresholds& thresholds,
    obs::PeriodicityProvenance* evidence, PeriodicityWorkspace& workspace) {
  if (evidence != nullptr) {
    evidence->frequency.ran = true;
    evidence->frequency.min_score = thresholds.frequency_min_score;
    evidence->confidence = 1.0;  // no signal at all: clearly non-periodic
  }
  if (merged_ops.size() < thresholds.min_group_size + 1 || runtime <= 0.0) {
    PeriodicityResult result;
    if (evidence != nullptr) record_groups(*evidence, result);
    return result;
  }

  const double bin_seconds = std::max(
      1.0, runtime / static_cast<double>(thresholds.frequency_max_bins));
  std::vector<double>& times = workspace.sample_times;
  std::vector<double>& weights = workspace.sample_weights;
  times.clear();
  weights.clear();
  times.reserve(merged_ops.size() * 2);
  weights.reserve(merged_ops.size() * 2);
  FrequencySignal signal;
  signal.first_start = runtime;
  signal.last_start = 0.0;
  const std::size_t n = merged_ops.size();
  for (std::size_t op = 0; op < n; ++op) {
    const double start = merged_ops.start[op];
    const double duration = merged_ops.end[op] - start;
    const double op_bytes = merged_ops.bytes[op];
    // Same spread arithmetic as the span form, element for element, so the
    // two forms produce the identical sample stream.
    const auto spread = static_cast<std::size_t>(
        std::max(1.0, std::ceil(duration / bin_seconds)));
    const double chunk = op_bytes / static_cast<double>(spread);
    for (std::size_t i = 0; i < spread; ++i) {
      times.push_back(start + (static_cast<double>(i) + 0.5) * duration /
                                  static_cast<double>(spread));
      weights.push_back(chunk);
    }
    signal.total_bytes += op_bytes;
    signal.total_op_seconds += duration;
    signal.first_start = std::min(signal.first_start, start);
    signal.last_start = std::max(signal.last_start, start);
  }
  cluster::bin_series(times.data(), weights.data(), times.size(), runtime,
                      bin_seconds, workspace.series);
  return finish_frequency(workspace.series, bin_seconds, signal, thresholds,
                          evidence);
}

static PeriodicityResult finish_frequency(
    const std::vector<double>& series, double bin_seconds,
    const FrequencySignal& signal, const Thresholds& thresholds,
    obs::PeriodicityProvenance* evidence) {
  PeriodicityResult result;
  const double total_bytes = signal.total_bytes;
  const double total_op_seconds = signal.total_op_seconds;
  const double first_start = signal.first_start;
  const double last_start = signal.last_start;

  cluster::DftDetectorConfig config;
  config.bin_seconds = bin_seconds;
  config.min_score = thresholds.frequency_min_score;
  const cluster::DftPeriodicity detected =
      cluster::detect_periodicity_dft(series, config);
  if (evidence != nullptr) {
    evidence->frequency.bin_seconds = bin_seconds;
  }

  const double active_span = std::max(last_start - first_start, bin_seconds);
  double best_score = 0.0;
  if (detected.periodic) {
    for (const cluster::SpectralPeak& peak : detected.peaks) {
      best_score = std::max(best_score, peak.score);
      obs::FrequencyPeak peak_evidence;
      peak_evidence.period_seconds = peak.period_seconds;
      peak_evidence.score = peak.score;
      if (peak.score < thresholds.frequency_min_score) {
        if (evidence != nullptr) {
          evidence->frequency.peaks.push_back(peak_evidence);
        }
        continue;
      }
      PeriodicGroup group;
      group.period_seconds = peak.period_seconds;
      group.occurrences = static_cast<std::size_t>(
          std::max(1.0, std::floor(active_span / peak.period_seconds)));
      peak_evidence.occurrences = group.occurrences;
      if (group.occurrences < thresholds.min_group_size) {
        if (evidence != nullptr) {
          evidence->frequency.peaks.push_back(peak_evidence);
        }
        continue;
      }
      // The signal view cannot attribute volume per peak; apportion the trace
      // totals across the occurrences (exact when one periodic op dominates).
      group.mean_bytes = total_bytes / static_cast<double>(group.occurrences);
      group.busy_ratio = std::clamp(
          total_op_seconds / static_cast<double>(group.occurrences) /
              group.period_seconds,
          0.0, 1.0);
      group.magnitude =
          classify_period_magnitude(group.period_seconds, thresholds);
      result.groups.push_back(group);
      if (evidence != nullptr) {
        peak_evidence.accepted = true;
        evidence->frequency.peaks.push_back(peak_evidence);
      }
    }
  }
  result.periodic = !result.groups.empty();
  if (evidence != nullptr) {
    // Verdict margin: how far the strongest comb score sat from min_score,
    // on whichever side the verdict landed.
    evidence->confidence = best_score > 0.0
                               ? boundary_margin(best_score,
                                                 thresholds.frequency_min_score)
                               : 1.0;
    record_groups(*evidence, result);
  }
  return result;
}

}  // namespace mosaic::core
