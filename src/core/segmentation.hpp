// Trace segmentation (paper §III-B3a, upper half of Fig. 2).
//
// After merging, the op stream is cut into segments: segment i spans from
// the start of op i to the start of op i+1. Each segment carries the
// duration and byte volume of its originating op, the two features the
// Mean-Shift periodicity detector clusters on. The final op has no
// successor, hence no period evidence, and yields no segment.
#pragma once

#include <span>
#include <vector>

#include "core/columns.hpp"
#include "trace/trace.hpp"

namespace mosaic::core {

/// One inter-operation segment.
struct Segment {
  double start = 0.0;        ///< start of the originating op
  double length = 0.0;       ///< op i start -> op i+1 start (> 0)
  double op_duration = 0.0;  ///< duration of the originating op
  std::uint64_t bytes = 0;   ///< bytes moved by the originating op

  /// Fraction of the segment spent doing I/O — the "activity rate during
  /// the period" of §III-B3a, and the basis of the busy-time categories.
  [[nodiscard]] double busy_ratio() const noexcept {
    return length > 0.0 ? op_duration / length : 0.0;
  }
};

/// Builds segments from sorted, disjoint ops (output of merging).
/// n ops -> n-1 segments; fewer than two ops -> empty.
[[nodiscard]] std::vector<Segment> segment_ops(
    std::span<const trace::IoOp> ops);

/// As above, but writes into `out` (cleared first, capacity reused) — the
/// allocation-free form used by the analyzer workspace.
void segment_ops(std::span<const trace::IoOp> ops, std::vector<Segment>& out);

/// Columnar form: reads the SoA mirror of the merged stream instead of the
/// IoOp records. Produces bit-identical segments (same subtractions on the
/// same values), just from unit-stride columns.
void segment_ops(const OpColumns& ops, std::vector<Segment>& out);

}  // namespace mosaic::core
