// Runtime-configurable thresholds of the MOSAIC classifiers.
//
// The paper sets these empirically on one month of Blue Waters traces and
// validates them by sampling (§III-B3a); it explicitly requires that they be
// modifiable to widen or narrow what gets categorized (§III-A). Defaults
// below are the paper's published values where given, and the documented
// empirical choices elsewhere.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mosaic::core {

/// Periodicity detection backend (paper SV lists signal-processing
/// techniques as short-term future work; kFrequency implements them).
enum class PeriodicityBackend : std::uint8_t {
  kMeanShift,  ///< segmentation + Mean-Shift clustering (the paper's method)
  kFrequency,  ///< FFT/autocorrelation over the binned activity signal
  kHybrid,     ///< Mean-Shift first; frequency as a fallback when it is mute
};

struct Thresholds {
  // --- Insignificance (§III-A) ---------------------------------------------
  /// Reads or writes below this volume make the trace read_/write_
  /// insignificant. Paper: 100 MB.
  std::uint64_t min_bytes = 100ull * 1000 * 1000;

  // --- Neighbor merging (§III-B2b) -----------------------------------------
  /// Merge neighboring ops when the gap is below this fraction of the total
  /// execution time. Paper: 0.1%.
  double neighbor_gap_runtime_fraction = 0.001;
  /// ... or below this fraction of the nearby merged op's duration. Paper: 1%.
  double neighbor_gap_op_fraction = 0.01;

  // --- Temporality (§III-B3b) ----------------------------------------------
  /// Number of equal execution-time chunks. Paper: 4.
  std::size_t temporality_chunks = 4;
  /// A chunk dominates when it holds more than this factor times the bytes of
  /// every other chunk. Paper: 2x.
  double dominance_factor = 2.0;
  /// Coefficient of variation across chunks below which behavior is steady.
  /// Paper: 25%.
  double steady_cv = 0.25;

  // --- Periodicity (§III-B3a) ----------------------------------------------
  /// Mean-Shift bandwidth in min-max-scaled (duration, log-volume) space.
  /// Empirical (the paper refined it on one month of traces).
  double meanshift_bandwidth = 0.12;
  /// Minimum segments per group: the paper accepts groups "strictly greater
  /// than 1".
  std::size_t min_group_size = 2;
  /// Post-clustering sanity bound: a periodic group's segment durations must
  /// agree to this relative spread (CV). Guards against min-max scaling
  /// collapsing unrelated durations when one giant segment stretches the
  /// range. Empirical.
  double group_duration_cv = 0.35;
  /// Same bound for per-op volumes inside a group. Empirical.
  double group_volume_cv = 0.5;
  /// Busy-time ratio (op duration / period) at or above which the behavior is
  /// periodic_high_busy_time; below is low. The paper observes 96% of
  /// periodic writers below 25%.
  double busy_ratio_split = 0.25;
  /// Period magnitude bucket bounds, in seconds (half-open downward: a
  /// period of exactly one hour is periodic_hour).
  double period_second_max = 60.0;      ///< [0, 60)    -> periodic_second
  double period_minute_max = 3600.0;    ///< [60, 1h)   -> periodic_minute
  double period_hour_max = 86400.0;     ///< [1h, 24h)  -> periodic_hour
                                        ///< beyond     -> periodic_day_or_more

  // --- Metadata (§III-B3c) --------------------------------------------------
  /// One-second burst above which a trace has metadata_high_spike. Paper: 250
  /// requests in one second (derived from Mistral saturating near 3000 req/s).
  double high_spike_requests = 250.0;
  /// A "spike" is a second with at least this many requests. Paper: 50.
  double spike_requests = 50.0;
  /// Spike count needed for metadata_multiple_spikes and high_density. Paper: 5.
  std::size_t multiple_spike_count = 5;
  /// Average requests/second over the execution for high_density. Paper: 50.
  double high_density_mean_requests = 50.0;
  // Insignificant metadata load: fewer metadata ops than ranks (§III-A);
  // the comparison is structural, no constant needed.

  // --- Periodicity backend (paper SV future work) ---------------------------
  /// Which detector drives the periodic categories.
  PeriodicityBackend periodicity_backend = PeriodicityBackend::kMeanShift;
  /// Minimum normalized autocorrelation confidence for the frequency
  /// backend.
  double frequency_min_score = 0.15;
  /// Upper bound on the activity-series length for the frequency backend;
  /// longer runs use coarser bins (bounds FFT cost per trace).
  std::size_t frequency_max_bins = 4096;

  // --- Op extraction --------------------------------------------------------
  /// Zero-length access windows are widened to this duration (seconds).
  double min_op_width = 1e-3;
};

}  // namespace mosaic::core
