// Structure-of-arrays view of a merged operation stream.
//
// The per-trace hot path (segmentation, frequency periodicity, temporality)
// used to walk the array-of-structs IoOp buffer field by field; every kernel
// touched 40-byte records to read one or two doubles. OpColumns transposes
// the merged stream once — start, end and byte columns in contiguous memory —
// so the downstream kernels stream cache lines of exactly the data they
// consume and the SIMD reductions (util/simd.hpp) get unit-stride input.
// Populated by AnalyzerWorkspace right after the merge stage; buffers keep
// their high-water capacity across traces like every other workspace member
// (DESIGN.md §12, §18).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace mosaic::core {

/// Columnar (SoA) mirror of a merged, start-sorted op stream.
struct OpColumns {
  std::vector<double> start;        ///< op start timestamps
  std::vector<double> end;          ///< op end timestamps (end >= start)
  std::vector<double> bytes;        ///< op byte counts as doubles — exact:
                                    ///< merged byte counts stay below 2^53
  std::vector<std::uint64_t> bytes_u64;  ///< the same counts, unwidened

  [[nodiscard]] std::size_t size() const noexcept { return start.size(); }
  [[nodiscard]] bool empty() const noexcept { return start.empty(); }

  /// Transposes `ops` into the columns (cleared first, capacity reused).
  void assign(std::span<const trace::IoOp> ops) {
    const std::size_t n = ops.size();
    start.resize(n);
    end.resize(n);
    bytes.resize(n);
    bytes_u64.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      start[i] = ops[i].start;
      end[i] = ops[i].end;
      bytes[i] = static_cast<double>(ops[i].bytes);
      bytes_u64[i] = ops[i].bytes;
    }
  }

  void clear() noexcept {
    start.clear();
    end.clear();
    bytes.clear();
    bytes_u64.clear();
  }

  /// Duration of op i (the IoOp::duration identity on columns).
  [[nodiscard]] double duration(std::size_t i) const noexcept {
    return end[i] - start[i];
  }
};

}  // namespace mosaic::core
