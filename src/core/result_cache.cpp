#include "core/result_cache.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace mosaic::core {

namespace {

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Gauge& bytes;
  obs::Gauge& entries;

  static CacheMetrics& get() {
    static auto& registry = obs::Registry::global();
    static CacheMetrics metrics{
        registry.counter(obs::names::kCacheHits,
                         "result-cache lookups answered without re-analysis"),
        registry.counter(obs::names::kCacheMisses,
                         "result-cache lookups that required analysis"),
        registry.counter(obs::names::kCacheEvictions,
                         "result-cache entries evicted to fit the byte "
                         "capacity"),
        registry.gauge(obs::names::kCacheBytes,
                       "bytes of cached analysis artifacts"),
        registry.gauge(obs::names::kCacheEntries,
                       "entries in the analysis result cache"),
    };
    return metrics;
  }
};

}  // namespace

std::string result_cache_key(const std::string& app_key,
                             std::uint64_t job_id,
                             std::uint64_t total_bytes) {
  // '|' never appears in sanitized app keys, so the concatenation is
  // unambiguous.
  return app_key + "|" + std::to_string(job_id) + "|" +
         std::to_string(total_bytes);
}

ResultCache::ResultCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

std::optional<CachedAnalysis> ResultCache::lookup(const std::string& key) {
  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    CacheMetrics::get().misses.add();
    return std::nullopt;
  }
  ++hits_;
  CacheMetrics::get().hits.add();
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

std::optional<CachedAnalysis> ResultCache::peek(const std::string& key) const {
  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second->second;
}

void ResultCache::note_eviction_locked(std::size_t entry_bytes) {
  bytes_ -= entry_bytes;
  ++evictions_;
  CacheMetrics::get().evictions.add();
}

void ResultCache::evict_to_fit_locked() {
  while (bytes_ > capacity_bytes_ && !order_.empty()) {
    const auto& [key, value] = order_.back();
    note_eviction_locked(value.bytes());
    index_.erase(key);
    order_.pop_back();
  }
  CacheMetrics::get().bytes.set(static_cast<std::int64_t>(bytes_));
  CacheMetrics::get().entries.set(static_cast<std::int64_t>(order_.size()));
}

void ResultCache::insert(const std::string& key, CachedAnalysis value) {
  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Replace in place, keeping the entry most-recently-used. Not an
    // eviction: the identity stays cached.
    bytes_ -= it->second->second.bytes();
    it->second->second = std::move(value);
    bytes_ += it->second->second.bytes();
    order_.splice(order_.begin(), order_, it->second);
  } else {
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    bytes_ += order_.front().second.bytes();
  }
  evict_to_fit_locked();
}

std::size_t ResultCache::entries() const {
  const std::scoped_lock lock(mutex_);
  return order_.size();
}

std::size_t ResultCache::bytes() const {
  const std::scoped_lock lock(mutex_);
  return bytes_;
}

std::uint64_t ResultCache::hits() const {
  const std::scoped_lock lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const std::scoped_lock lock(mutex_);
  return misses_;
}

std::uint64_t ResultCache::evictions() const {
  const std::scoped_lock lock(mutex_);
  return evictions_;
}

}  // namespace mosaic::core
