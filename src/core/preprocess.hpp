// Trace pre-processing (paper §III-B1, steps (1) of Fig. 1; evaluated in
// Fig. 3).
//
// Two reductions run before categorization:
//   1. Validity check — corrupted traces (e.g. deallocation recorded past the
//      end of execution) are evicted. Blue Waters 2019: 32% evicted.
//   2. Application dedup — all executions of the same application by the
//      same user are assumed to share categories; only the heaviest (most
//      I/O-intensive) trace per (user, app) is analyzed. Blue Waters 2019:
//      8% of valid traces retained.
// The runs-per-application map is kept so reports can re-weight single-run
// results to the full execution set ("all runs" columns of Tables II/III).
//
// Two drivers exist:
//   - preprocess(): one-shot over an in-memory vector (tests, library use);
//   - StreamingPreprocessor: incremental folding for the fault-tolerant
//     ingest path, which streams files through a bounded window and also
//     counts loads that failed before validation (io-error, parse-error, …)
//     so the funnel covers every file scanned, not just the parseable ones.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace mosaic::core {

/// Funnel counters matching paper Fig. 3, extended with pre-validity load
/// failures so `input_traces` equals the number of files scanned.
struct PreprocessStats {
  std::size_t input_traces = 0;
  std::size_t load_failed = 0;      ///< evicted before validation (io/parse/…)
  std::size_t corrupted = 0;        ///< evicted by the validity check
  std::size_t valid = 0;            ///< input - load_failed - corrupted
  std::size_t unique_applications = 0;
  std::size_t retained = 0;         ///< == unique_applications
  /// Validity eviction reasons, keyed by CorruptionKind name.
  std::map<std::string, std::size_t> corruption_breakdown;
  /// All evictions keyed by util::ErrorCode name ("io-error", "parse-error",
  /// "corrupt-trace", "not-found", "timeout"). corrupted + load_failed in sum.
  std::map<std::string, std::size_t> eviction_breakdown;
};

/// Pre-processing output: the retained traces plus bookkeeping.
struct PreprocessResult {
  std::vector<trace::Trace> retained;
  /// Source path of retained[i] — the dedup tiebreak identity a sharded
  /// batch records into its partial artifact so the merge can replay the
  /// cross-shard dedup. Empty strings when the one-shot driver was fed
  /// in-memory traces that never had files.
  std::vector<std::string> retained_paths;
  /// Valid executions per application key (user/app), including the retained
  /// one. Drives the "all runs" weighting in reports.
  std::map<std::string, std::size_t> runs_per_app;
  PreprocessStats stats;
};

/// Runs both reductions. Consumes the input vector (traces are moved out).
[[nodiscard]] PreprocessResult preprocess(std::vector<trace::Trace> traces,
                                          double validity_slack_seconds = 1.0);

/// Non-consuming variant: validates and deduplicates by reference, copying
/// only the retained winners (typically a small fraction of the input — Blue
/// Waters 2019: 8% of valid traces). Produces the exact same result as the
/// consuming overload on the same input. Use this when the caller keeps the
/// population alive (repeated analyses, serving cached populations): it
/// avoids deep-copying the evicted majority just to throw it away.
[[nodiscard]] PreprocessResult preprocess(std::span<const trace::Trace> traces,
                                          double validity_slack_seconds = 1.0);

/// Incremental validity + dedup folding with O(unique applications) state.
///
/// The ingest pipeline feeds traces (and failures) one at a time; only the
/// current heaviest trace per application key is kept in memory. Journal
/// replay can fold a file by digest alone — if the digest wins dedup, the
/// file is re-read lazily in finish(). Retention is made deterministic
/// regardless of arrival order: heavier total_bytes wins, ties break on
/// smaller job id, then smaller source path; retained traces are emitted
/// sorted by application key.
class StreamingPreprocessor {
 public:
  /// Stand-in for a valid trace whose contents are not in memory: just
  /// enough to run dedup without re-reading the file.
  struct ValidDigest {
    std::string path;
    std::string app_key;
    std::uint64_t total_bytes = 0;
    std::uint64_t job_id = 0;
  };

  explicit StreamingPreprocessor(double validity_slack_seconds = 1.0)
      : slack_(validity_slack_seconds) {}

  /// Validates and folds one parsed trace; invalid traces are evicted and
  /// counted. The returned report says why (kNone when kept for dedup).
  trace::ValidityReport add_trace(trace::Trace trace, std::string source_path);

  /// Folds a file that failed before validation (io/parse/not-found/timeout).
  void add_load_failure(util::ErrorCode code);

  /// Replays a journaled valid file without re-reading it.
  void add_valid_digest(ValidDigest digest);

  /// Replays a journaled eviction. `corruption_kind` is empty unless the
  /// eviction came from the validity check.
  void add_journaled_eviction(std::string_view code_name,
                              std::string_view corruption_kind);

  /// Inputs folded so far (traces, digests and failures).
  [[nodiscard]] std::size_t input_count() const noexcept {
    return stats_.input_traces;
  }

  /// Resolves digest-only dedup winners through `reload` (a failure there
  /// demotes the file to an eviction) and returns the final funnel result
  /// with retained traces sorted by application key. The preprocessor is
  /// consumed.
  [[nodiscard]] PreprocessResult finish(
      const std::function<util::Expected<trace::Trace>(const std::string&)>&
          reload = {});

 private:
  /// Dedup slot: the digest always describes the current winner; `trace` is
  /// engaged unless the winner came from journal replay.
  struct Slot {
    ValidDigest digest;
    std::optional<trace::Trace> trace;
  };

  [[nodiscard]] static bool digest_wins(const ValidDigest& challenger,
                                        const ValidDigest& incumbent) noexcept;
  void fold_valid(ValidDigest digest, std::optional<trace::Trace> trace);

  double slack_;
  std::map<std::string, Slot> heaviest_;  // app key -> current winner
  std::map<std::string, std::size_t> runs_per_app_;
  PreprocessStats stats_;
};

}  // namespace mosaic::core
