// Trace pre-processing (paper §III-B1, steps (1) of Fig. 1; evaluated in
// Fig. 3).
//
// Two reductions run before categorization:
//   1. Validity check — corrupted traces (e.g. deallocation recorded past the
//      end of execution) are evicted. Blue Waters 2019: 32% evicted.
//   2. Application dedup — all executions of the same application by the
//      same user are assumed to share categories; only the heaviest (most
//      I/O-intensive) trace per (user, app) is analyzed. Blue Waters 2019:
//      8% of valid traces retained.
// The runs-per-application map is kept so reports can re-weight single-run
// results to the full execution set ("all runs" columns of Tables II/III).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mosaic::core {

/// Funnel counters matching paper Fig. 3.
struct PreprocessStats {
  std::size_t input_traces = 0;
  std::size_t corrupted = 0;        ///< evicted by the validity check
  std::size_t valid = 0;            ///< input - corrupted
  std::size_t unique_applications = 0;
  std::size_t retained = 0;         ///< == unique_applications
  /// Eviction reasons, keyed by CorruptionKind name.
  std::map<std::string, std::size_t> corruption_breakdown;
};

/// Pre-processing output: the retained traces plus bookkeeping.
struct PreprocessResult {
  std::vector<trace::Trace> retained;
  /// Valid executions per application key (user/app), including the retained
  /// one. Drives the "all runs" weighting in reports.
  std::map<std::string, std::size_t> runs_per_app;
  PreprocessStats stats;
};

/// Runs both reductions. Consumes the input vector (traces are moved out).
[[nodiscard]] PreprocessResult preprocess(std::vector<trace::Trace> traces,
                                          double validity_slack_seconds = 1.0);

}  // namespace mosaic::core
