// The MOSAIC category model (paper Table I).
//
// A trace is described by a *set* of non-exclusive categories drawn from
// three axes: temporality (when reads/writes happen), periodicity (repeated
// operations, their period magnitude and busy time) and metadata impact.
// Reads and writes are classified independently (paper §III-A), so the flat
// category space carries a read_/write_ prefix on the first two axes —
// matching the labels the paper's Fig. 5 heatmap uses ("read on start",
// "periodic write", ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace mosaic::core {

/// Flat category identifiers. Keep kCategoryCount in sync.
enum class Category : std::uint8_t {
  // Temporality, read.
  kReadOnStart,
  kReadOnEnd,
  kReadAfterStart,
  kReadBeforeEnd,
  kReadAfterStartBeforeEnd,
  kReadSteady,
  kReadInsignificant,
  kReadUnclassified,
  // Temporality, write.
  kWriteOnStart,
  kWriteOnEnd,
  kWriteAfterStart,
  kWriteBeforeEnd,
  kWriteAfterStartBeforeEnd,
  kWriteSteady,
  kWriteInsignificant,
  kWriteUnclassified,
  // Periodicity, read.
  kReadPeriodic,
  kReadPeriodicSecond,
  kReadPeriodicMinute,
  kReadPeriodicHour,
  kReadPeriodicDayOrMore,
  kReadPeriodicLowBusyTime,
  kReadPeriodicHighBusyTime,
  // Periodicity, write.
  kWritePeriodic,
  kWritePeriodicSecond,
  kWritePeriodicMinute,
  kWritePeriodicHour,
  kWritePeriodicDayOrMore,
  kWritePeriodicLowBusyTime,
  kWritePeriodicHighBusyTime,
  // Metadata impact.
  kMetadataHighSpike,
  kMetadataMultipleSpikes,
  kMetadataHighDensity,
  kMetadataInsignificantLoad,
};

/// Number of distinct categories.
inline constexpr std::size_t kCategoryCount = 34;

/// Snake-case name as used in reports, e.g. "read_on_start".
[[nodiscard]] std::string_view category_name(Category category) noexcept;

/// Inverse of category_name; nullopt for unknown names.
[[nodiscard]] std::optional<Category> category_from_name(
    std::string_view name) noexcept;

/// Axis a category belongs to.
enum class CategoryAxis : std::uint8_t { kTemporality, kPeriodicity, kMetadata };

[[nodiscard]] CategoryAxis category_axis(Category category) noexcept;

/// The non-exclusive set of categories assigned to one trace.
/// Implemented as a fixed-width bitmask over Category.
class CategorySet {
 public:
  constexpr CategorySet() = default;

  void insert(Category category) noexcept {
    bits_ |= bit(category);
  }
  void erase(Category category) noexcept { bits_ &= ~bit(category); }
  [[nodiscard]] bool contains(Category category) const noexcept {
    return (bits_ & bit(category)) != 0;
  }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept;

  /// Set algebra used by the Jaccard report.
  [[nodiscard]] CategorySet intersect(const CategorySet& other) const noexcept {
    CategorySet out;
    out.bits_ = bits_ & other.bits_;
    return out;
  }
  [[nodiscard]] CategorySet unite(const CategorySet& other) const noexcept {
    CategorySet out;
    out.bits_ = bits_ | other.bits_;
    return out;
  }

  friend bool operator==(const CategorySet&, const CategorySet&) = default;

  /// Members in enum order.
  [[nodiscard]] std::vector<Category> to_vector() const;

  /// Comma-free list of category names, sorted by enum order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Raw bitmask (bit i == static_cast<Category>(i) present).
  [[nodiscard]] std::uint64_t raw() const noexcept { return bits_; }

 private:
  static constexpr std::uint64_t bit(Category category) noexcept {
    return 1ull << static_cast<unsigned>(category);
  }
  std::uint64_t bits_ = 0;
};

/// All categories in enum order (for report iteration).
[[nodiscard]] const std::vector<Category>& all_categories();

}  // namespace mosaic::core
