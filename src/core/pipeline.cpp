#include "core/pipeline.hpp"

#include <cstdarg>
#include <cstdio>
#include <utility>

#include "core/merge.hpp"
#include "core/segmentation.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/provenance.hpp"
#include "obs/stage.hpp"

namespace mosaic::core {

namespace {

/// Appends one printf-formatted rule line to the trace (no-op when null).
__attribute__((format(printf, 2, 3))) void trace_rule(
    std::vector<std::string>* rule_trace, const char* fmt, ...) {
  if (rule_trace == nullptr) return;
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  rule_trace->emplace_back(buffer);
}

/// Per-stage instruments, resolved once; the hot path pays one relaxed load
/// per stage plus two steady_clock reads, nothing else.
struct StageMetrics {
  obs::Histogram& merge_ms;
  obs::Histogram& segment_ms;
  obs::Histogram& periodicity_ms;
  obs::Histogram& temporality_ms;
  obs::Histogram& metadata_ms;
  obs::Histogram& categorize_ms;
  obs::Histogram& analyze_ms;
  obs::Counter& traces_analyzed;

  static StageMetrics& get() {
    static auto& registry = obs::Registry::global();
    static const auto buckets = obs::latency_buckets_ms();
    static StageMetrics metrics{
        registry.histogram(obs::names::kStageMergeMs, buckets,
                           "merge_ops stage latency (ms)"),
        registry.histogram(obs::names::kStageSegmentMs, buckets,
                           "segment_ops stage latency (ms)"),
        registry.histogram(obs::names::kStagePeriodicityMs, buckets,
                           "periodicity detection stage latency (ms)"),
        registry.histogram(obs::names::kStageTemporalityMs, buckets,
                           "temporality classification stage latency (ms)"),
        registry.histogram(obs::names::kStageMetadataMs, buckets,
                           "metadata classification stage latency (ms)"),
        registry.histogram(obs::names::kStageCategorizeMs, buckets,
                           "category flattening stage latency (ms)"),
        registry.histogram(obs::names::kStageAnalyzeMs, buckets,
                           "full per-trace analysis latency (ms)"),
        registry.counter(obs::names::kTracesAnalyzed,
                         "traces fully analyzed by the pipeline"),
    };
    return metrics;
  }
};

/// Periodicity label block for one kind, gated on significance.
void flatten_periodicity(CategorySet& out, trace::OpKind kind,
                         const KindAnalysis& analysis,
                         const Thresholds& thresholds,
                         std::vector<std::string>* rule_trace) {
  const char* kind_name = kind == trace::OpKind::kRead ? "read" : "write";
  if (analysis.temporality.label == Temporality::kInsignificant) {
    if (analysis.periodicity.periodic) {
      trace_rule(rule_trace,
                 "[%s] periodicity suppressed: kind volume is insignificant",
                 kind_name);
    }
    return;
  }
  const PeriodicityResult& periodicity = analysis.periodicity;
  if (!periodicity.periodic) {
    trace_rule(rule_trace, "[%s] not periodic: no category", kind_name);
    return;
  }

  const bool read = kind == trace::OpKind::kRead;
  out.insert(read ? Category::kReadPeriodic : Category::kWritePeriodic);
  trace_rule(rule_trace, "[%s] periodic: %zu group(s) -> %s_periodic",
             kind_name, periodicity.groups.size(), kind_name);

  // Categories are non-exclusive: a trace with two periodic operations of
  // different magnitudes carries both magnitude labels.
  for (const PeriodicGroup& group : periodicity.groups) {
    trace_rule(rule_trace,
               "[%s] periodic group: period %.3gs (x%zu) -> %s_periodic_%s",
               kind_name, group.period_seconds, group.occurrences, kind_name,
               period_magnitude_name(group.magnitude));
    switch (group.magnitude) {
      case PeriodMagnitude::kSecond:
        out.insert(read ? Category::kReadPeriodicSecond
                        : Category::kWritePeriodicSecond);
        break;
      case PeriodMagnitude::kMinute:
        out.insert(read ? Category::kReadPeriodicMinute
                        : Category::kWritePeriodicMinute);
        break;
      case PeriodMagnitude::kHour:
        out.insert(read ? Category::kReadPeriodicHour
                        : Category::kWritePeriodicHour);
        break;
      case PeriodMagnitude::kDayOrMore:
        out.insert(read ? Category::kReadPeriodicDayOrMore
                        : Category::kWritePeriodicDayOrMore);
        break;
    }
  }

  // Busy time follows the dominant periodic operation.
  const double busy = periodicity.dominant().busy_ratio;
  if (busy >= thresholds.busy_ratio_split) {
    out.insert(read ? Category::kReadPeriodicHighBusyTime
                    : Category::kWritePeriodicHighBusyTime);
    trace_rule(rule_trace,
               "[%s] busy ratio %.3f >= %.3f -> %s_periodic_high_busy_time",
               kind_name, busy, thresholds.busy_ratio_split, kind_name);
  } else {
    out.insert(read ? Category::kReadPeriodicLowBusyTime
                    : Category::kWritePeriodicLowBusyTime);
    trace_rule(rule_trace,
               "[%s] busy ratio %.3f < %.3f -> %s_periodic_low_busy_time",
               kind_name, busy, thresholds.busy_ratio_split, kind_name);
  }
}

}  // namespace

CategorySet flatten_categories(const KindAnalysis& read,
                               const KindAnalysis& write,
                               const MetadataResult& metadata,
                               const Thresholds& thresholds,
                               std::vector<std::string>* rule_trace) {
  CategorySet out;
  const Category read_temporality =
      temporality_category(trace::OpKind::kRead, read.temporality.label);
  const Category write_temporality =
      temporality_category(trace::OpKind::kWrite, write.temporality.label);
  out.insert(read_temporality);
  out.insert(write_temporality);
  trace_rule(rule_trace, "[read] temporality %s -> %s",
             temporality_name(read.temporality.label),
             std::string(category_name(read_temporality)).c_str());
  trace_rule(rule_trace, "[write] temporality %s -> %s",
             temporality_name(write.temporality.label),
             std::string(category_name(write_temporality)).c_str());
  flatten_periodicity(out, trace::OpKind::kRead, read, thresholds, rule_trace);
  flatten_periodicity(out, trace::OpKind::kWrite, write, thresholds,
                      rule_trace);

  if (metadata.insignificant) {
    out.insert(Category::kMetadataInsignificantLoad);
    trace_rule(rule_trace,
               "[metadata] %llu request(s), fewer than one per rank -> "
               "metadata_insignificant_load",
               static_cast<unsigned long long>(metadata.total_requests));
  } else {
    if (metadata.high_spike) {
      out.insert(Category::kMetadataHighSpike);
      trace_rule(rule_trace,
                 "[metadata] peak %.0f req/s >= %.0f -> metadata_high_spike",
                 metadata.max_requests_per_second,
                 thresholds.high_spike_requests);
    }
    if (metadata.multiple_spikes) {
      out.insert(Category::kMetadataMultipleSpikes);
      trace_rule(rule_trace,
                 "[metadata] %zu spike second(s) >= %zu -> "
                 "metadata_multiple_spikes",
                 metadata.spike_seconds, thresholds.multiple_spike_count);
    }
    if (metadata.high_density) {
      out.insert(Category::kMetadataHighDensity);
      trace_rule(rule_trace,
                 "[metadata] mean %.1f req/s >= %.0f with %zu spike(s) -> "
                 "metadata_high_density",
                 metadata.mean_requests_per_second,
                 thresholds.high_density_mean_requests,
                 metadata.spike_seconds);
    }
    if (!metadata.high_spike && !metadata.multiple_spikes &&
        !metadata.high_density) {
      trace_rule(rule_trace,
                 "[metadata] significant load but no spike rule fired");
    }
  }
  return out;
}

KindAnalysis Analyzer::analyze_ops(std::vector<trace::IoOp> ops,
                                   double runtime,
                                   obs::KindProvenance* evidence,
                                   bool stage_detail) const {
  AnalyzerWorkspace workspace;
  workspace.ops = std::move(ops);
  return analyze_ops_impl(workspace, runtime, evidence, stage_detail);
}

KindAnalysis Analyzer::analyze_ops_impl(AnalyzerWorkspace& workspace,
                                        double runtime,
                                        obs::KindProvenance* evidence,
                                        bool stage_detail) const {
  std::vector<trace::IoOp>& ops = workspace.ops;
  KindAnalysis analysis;
  analysis.raw_ops = ops.size();
  StageMetrics& metrics = StageMetrics::get();

  {
    const obs::StageScope stage(stage_detail, metrics.merge_ms, "merge");
    ops = merge_ops(std::move(ops), runtime, thresholds_,
                    evidence != nullptr ? &evidence->merge : nullptr);
  }
  analysis.merged_ops = ops.size();
  // One transpose into the SoA arena; segmentation, frequency periodicity
  // and temporality all consume the columns from here on (DESIGN.md §18).
  workspace.columns.assign(ops);

  obs::PeriodicityProvenance* periodicity_evidence =
      evidence != nullptr ? &evidence->periodicity : nullptr;

  // Mean-Shift periodicity runs over segments, so the segmentation stage is
  // only timed on the backends that need it.
  const auto segment = [&]() -> std::span<const Segment> {
    const obs::StageScope stage(stage_detail, metrics.segment_ms, "segment");
    segment_ops(workspace.columns, workspace.segments);
    if (evidence != nullptr) evidence->segments = workspace.segments.size();
    return workspace.segments;
  };
  {
    const obs::StageScope stage(stage_detail, metrics.periodicity_ms,
                                "periodicity");
    switch (thresholds_.periodicity_backend) {
      case PeriodicityBackend::kMeanShift:
        analysis.periodicity =
            detect_periodicity(segment(), thresholds_, periodicity_evidence,
                               workspace.periodicity);
        if (evidence != nullptr) evidence->periodicity.backend = "mean-shift";
        break;
      case PeriodicityBackend::kFrequency:
        analysis.periodicity = detect_periodicity_frequency(
            workspace.columns, runtime, thresholds_, periodicity_evidence,
            workspace.periodicity);
        if (evidence != nullptr) evidence->periodicity.backend = "frequency";
        break;
      case PeriodicityBackend::kHybrid:
        analysis.periodicity =
            detect_periodicity(segment(), thresholds_, periodicity_evidence,
                               workspace.periodicity);
        if (!analysis.periodicity.periodic) {
          analysis.periodicity = detect_periodicity_frequency(
              workspace.columns, runtime, thresholds_, periodicity_evidence,
              workspace.periodicity);
        }
        if (evidence != nullptr) evidence->periodicity.backend = "hybrid";
        break;
    }
  }
  {
    const obs::StageScope stage(stage_detail, metrics.temporality_ms,
                                "temporality");
    analysis.temporality =
        classify_temporality(workspace.columns, runtime, thresholds_,
                             evidence != nullptr ? &evidence->temporality
                                                 : nullptr);
  }
  return analysis;
}

KindAnalysis Analyzer::analyze_kind(const trace::Trace& trace,
                                    trace::OpKind kind,
                                    obs::KindProvenance* evidence,
                                    bool stage_detail,
                                    AnalyzerWorkspace& workspace) const {
  trace::extract_ops(trace, kind, thresholds_.min_op_width, workspace.ops);
  return analyze_ops_impl(workspace, trace.meta.run_time, evidence,
                          stage_detail);
}

TraceResult Analyzer::analyze(const trace::Trace& trace) const {
  AnalyzerWorkspace workspace;
  return analyze(trace, workspace);
}

TraceResult Analyzer::analyze(const trace::Trace& trace,
                              AnalyzerWorkspace& workspace) const {
  // Journal gate: one relaxed load when provenance is off; when on, one in
  // every sample_every traces pays the capture cost.
  obs::ProvenanceJournal& journal = obs::ProvenanceJournal::global();
  if (journal.should_sample()) {
    obs::TraceProvenance evidence;
    TraceResult result = analyze_impl(trace, &evidence, workspace);
    journal.record(std::move(evidence));
    return result;
  }
  return analyze_impl(trace, nullptr, workspace);
}

TraceResult Analyzer::analyze(const trace::Trace& trace,
                              obs::TraceProvenance* evidence) const {
  AnalyzerWorkspace workspace;
  return analyze_impl(trace, evidence, workspace);
}

TraceResult Analyzer::analyze_impl(const trace::Trace& trace,
                                   obs::TraceProvenance* evidence,
                                   AnalyzerWorkspace& workspace) const {
  StageMetrics& metrics = StageMetrics::get();

  // All latency scopes — the whole-trace "analyze" scope here and the
  // per-stage detail scopes (merge x2, segment x2, periodicity x2,
  // temporality x2, metadata, categorize) — are sampled 1-in-32 per thread:
  // the histograms keep an unbiased latency distribution while the
  // un-sampled majority of traces pays two relaxed loads per scope and no
  // clock read. The rate is tuned against the <10% instrumentation budget
  // that bench/perf_pipeline pins — after the zero-alloc workspace pass a
  // trace analyzes in about a microsecond, so timing every trace (and
  // force-detailing every provenance-sampled trace, as earlier revisions
  // did) cost more than the analysis stages being timed. Provenance capture
  // no longer implies timing detail: the journal records the decision path,
  // the histograms record latency, and the two sample independently.
  // The first trace on each thread is always detailed (tick starts at 0) so
  // short runs still populate every stage series.
  constexpr std::uint32_t kStageDetailMask = 32 - 1;
  thread_local std::uint32_t stage_detail_tick = 0;
  const bool stage_detail = (stage_detail_tick++ & kStageDetailMask) == 0;
  const obs::StageScope analyze_scope(stage_detail, metrics.analyze_ms,
                                      "analyze");

  TraceResult result;
  result.app_key = trace.app_key();
  result.job_id = trace.meta.job_id;
  result.runtime = trace.meta.run_time;
  result.nprocs = trace.meta.nprocs;
  result.bytes_read = trace.total_bytes_read();
  result.bytes_written = trace.total_bytes_written();
  if (evidence != nullptr) {
    evidence->app_key = result.app_key;
    evidence->job_id = result.job_id;
    evidence->runtime = result.runtime;
    evidence->nprocs = result.nprocs;
  }

  result.read =
      analyze_kind(trace, trace::OpKind::kRead,
                   evidence != nullptr ? &evidence->read : nullptr,
                   stage_detail, workspace);
  result.write =
      analyze_kind(trace, trace::OpKind::kWrite,
                   evidence != nullptr ? &evidence->write : nullptr,
                   stage_detail, workspace);
  {
    const obs::StageScope stage(stage_detail, metrics.metadata_ms,
                                "metadata");
    trace::metadata_timeline(trace, workspace.meta_timeline);
    result.metadata = classify_metadata(
        workspace.meta_timeline, trace.meta.run_time, trace.meta.nprocs,
        thresholds_, evidence != nullptr ? &evidence->metadata : nullptr,
        workspace.meta_histogram);
  }
  {
    const obs::StageScope stage(stage_detail, metrics.categorize_ms,
                                "categorize");
    result.categories = flatten_categories(
        result.read, result.write, result.metadata, thresholds_,
        evidence != nullptr ? &evidence->rules : nullptr);
  }
  if (evidence != nullptr) {
    for (const Category category : result.categories.to_vector()) {
      evidence->categories.emplace_back(category_name(category));
    }
  }
  metrics.traces_analyzed.add();
  return result;
}

BatchResult analyze_population(std::vector<trace::Trace> traces,
                               const Thresholds& thresholds,
                               parallel::ThreadPool* pool) {
  return analyze_preprocessed(preprocess(std::move(traces)), thresholds, pool);
}

BatchResult analyze_population(std::span<const trace::Trace> traces,
                               const Thresholds& thresholds,
                               parallel::ThreadPool* pool) {
  return analyze_preprocessed(preprocess(traces), thresholds, pool);
}

BatchResult analyze_preprocessed(PreprocessResult pre,
                                 const Thresholds& thresholds,
                                 parallel::ThreadPool* pool) {
  BatchResult batch;
  batch.preprocess = pre.stats;
  batch.runs_per_app = std::move(pre.runs_per_app);

  const Analyzer analyzer(thresholds);
  batch.results.resize(pre.retained.size());
  if (pool != nullptr) {
    // One workspace per pool worker: parallel_for chunks only ever run on
    // pool threads, so worker_index() selects a private workspace with no
    // synchronization, and each worker's buffers reach their high-water
    // capacity after a handful of traces.
    std::vector<AnalyzerWorkspace> workspaces(pool->thread_count());
    parallel::parallel_for(
        *pool, pre.retained.size(), [&](std::size_t begin, std::size_t end) {
          const std::size_t worker = parallel::ThreadPool::worker_index();
          MOSAIC_ASSERT(worker < workspaces.size());
          AnalyzerWorkspace& workspace = workspaces[worker];
          for (std::size_t i = begin; i < end; ++i) {
            batch.results[i] = analyzer.analyze(pre.retained[i], workspace);
          }
        });
  } else {
    AnalyzerWorkspace workspace;
    for (std::size_t i = 0; i < pre.retained.size(); ++i) {
      batch.results[i] = analyzer.analyze(pre.retained[i], workspace);
    }
  }
  return batch;
}

}  // namespace mosaic::core
