#include "core/pipeline.hpp"

#include <cstdarg>
#include <cstdio>
#include <utility>

#include "core/merge.hpp"
#include "core/segmentation.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/provenance.hpp"
#include "obs/stage.hpp"

namespace mosaic::core {

namespace {

/// Appends one printf-formatted rule line to the trace (no-op when null).
__attribute__((format(printf, 2, 3))) void trace_rule(
    std::vector<std::string>* rule_trace, const char* fmt, ...) {
  if (rule_trace == nullptr) return;
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  rule_trace->emplace_back(buffer);
}

/// Per-stage instruments, resolved once; the hot path pays one relaxed load
/// per stage plus two steady_clock reads, nothing else.
struct StageMetrics {
  obs::Histogram& merge_ms;
  obs::Histogram& segment_ms;
  obs::Histogram& periodicity_ms;
  obs::Histogram& temporality_ms;
  obs::Histogram& metadata_ms;
  obs::Histogram& categorize_ms;
  obs::Histogram& analyze_ms;
  obs::Counter& traces_analyzed;

  static StageMetrics& get() {
    static auto& registry = obs::Registry::global();
    static const auto buckets = obs::latency_buckets_ms();
    static StageMetrics metrics{
        registry.histogram(obs::names::kStageMergeMs, buckets,
                           "merge_ops stage latency (ms)"),
        registry.histogram(obs::names::kStageSegmentMs, buckets,
                           "segment_ops stage latency (ms)"),
        registry.histogram(obs::names::kStagePeriodicityMs, buckets,
                           "periodicity detection stage latency (ms)"),
        registry.histogram(obs::names::kStageTemporalityMs, buckets,
                           "temporality classification stage latency (ms)"),
        registry.histogram(obs::names::kStageMetadataMs, buckets,
                           "metadata classification stage latency (ms)"),
        registry.histogram(obs::names::kStageCategorizeMs, buckets,
                           "category flattening stage latency (ms)"),
        registry.histogram(obs::names::kStageAnalyzeMs, buckets,
                           "full per-trace analysis latency (ms)"),
        registry.counter(obs::names::kTracesAnalyzed,
                         "traces fully analyzed by the pipeline"),
    };
    return metrics;
  }
};

/// Periodicity label block for one kind, gated on significance.
void flatten_periodicity(CategorySet& out, trace::OpKind kind,
                         const KindAnalysis& analysis,
                         const Thresholds& thresholds,
                         std::vector<std::string>* rule_trace) {
  const char* kind_name = kind == trace::OpKind::kRead ? "read" : "write";
  if (analysis.temporality.label == Temporality::kInsignificant) {
    if (analysis.periodicity.periodic) {
      trace_rule(rule_trace,
                 "[%s] periodicity suppressed: kind volume is insignificant",
                 kind_name);
    }
    return;
  }
  const PeriodicityResult& periodicity = analysis.periodicity;
  if (!periodicity.periodic) {
    trace_rule(rule_trace, "[%s] not periodic: no category", kind_name);
    return;
  }

  const bool read = kind == trace::OpKind::kRead;
  out.insert(read ? Category::kReadPeriodic : Category::kWritePeriodic);
  trace_rule(rule_trace, "[%s] periodic: %zu group(s) -> %s_periodic",
             kind_name, periodicity.groups.size(), kind_name);

  // Categories are non-exclusive: a trace with two periodic operations of
  // different magnitudes carries both magnitude labels.
  for (const PeriodicGroup& group : periodicity.groups) {
    trace_rule(rule_trace,
               "[%s] periodic group: period %.3gs (x%zu) -> %s_periodic_%s",
               kind_name, group.period_seconds, group.occurrences, kind_name,
               period_magnitude_name(group.magnitude));
    switch (group.magnitude) {
      case PeriodMagnitude::kSecond:
        out.insert(read ? Category::kReadPeriodicSecond
                        : Category::kWritePeriodicSecond);
        break;
      case PeriodMagnitude::kMinute:
        out.insert(read ? Category::kReadPeriodicMinute
                        : Category::kWritePeriodicMinute);
        break;
      case PeriodMagnitude::kHour:
        out.insert(read ? Category::kReadPeriodicHour
                        : Category::kWritePeriodicHour);
        break;
      case PeriodMagnitude::kDayOrMore:
        out.insert(read ? Category::kReadPeriodicDayOrMore
                        : Category::kWritePeriodicDayOrMore);
        break;
    }
  }

  // Busy time follows the dominant periodic operation.
  const double busy = periodicity.dominant().busy_ratio;
  if (busy >= thresholds.busy_ratio_split) {
    out.insert(read ? Category::kReadPeriodicHighBusyTime
                    : Category::kWritePeriodicHighBusyTime);
    trace_rule(rule_trace,
               "[%s] busy ratio %.3f >= %.3f -> %s_periodic_high_busy_time",
               kind_name, busy, thresholds.busy_ratio_split, kind_name);
  } else {
    out.insert(read ? Category::kReadPeriodicLowBusyTime
                    : Category::kWritePeriodicLowBusyTime);
    trace_rule(rule_trace,
               "[%s] busy ratio %.3f < %.3f -> %s_periodic_low_busy_time",
               kind_name, busy, thresholds.busy_ratio_split, kind_name);
  }
}

}  // namespace

CategorySet flatten_categories(const KindAnalysis& read,
                               const KindAnalysis& write,
                               const MetadataResult& metadata,
                               const Thresholds& thresholds,
                               std::vector<std::string>* rule_trace) {
  CategorySet out;
  const Category read_temporality =
      temporality_category(trace::OpKind::kRead, read.temporality.label);
  const Category write_temporality =
      temporality_category(trace::OpKind::kWrite, write.temporality.label);
  out.insert(read_temporality);
  out.insert(write_temporality);
  trace_rule(rule_trace, "[read] temporality %s -> %s",
             temporality_name(read.temporality.label),
             std::string(category_name(read_temporality)).c_str());
  trace_rule(rule_trace, "[write] temporality %s -> %s",
             temporality_name(write.temporality.label),
             std::string(category_name(write_temporality)).c_str());
  flatten_periodicity(out, trace::OpKind::kRead, read, thresholds, rule_trace);
  flatten_periodicity(out, trace::OpKind::kWrite, write, thresholds,
                      rule_trace);

  if (metadata.insignificant) {
    out.insert(Category::kMetadataInsignificantLoad);
    trace_rule(rule_trace,
               "[metadata] %llu request(s), fewer than one per rank -> "
               "metadata_insignificant_load",
               static_cast<unsigned long long>(metadata.total_requests));
  } else {
    if (metadata.high_spike) {
      out.insert(Category::kMetadataHighSpike);
      trace_rule(rule_trace,
                 "[metadata] peak %.0f req/s >= %.0f -> metadata_high_spike",
                 metadata.max_requests_per_second,
                 thresholds.high_spike_requests);
    }
    if (metadata.multiple_spikes) {
      out.insert(Category::kMetadataMultipleSpikes);
      trace_rule(rule_trace,
                 "[metadata] %zu spike second(s) >= %zu -> "
                 "metadata_multiple_spikes",
                 metadata.spike_seconds, thresholds.multiple_spike_count);
    }
    if (metadata.high_density) {
      out.insert(Category::kMetadataHighDensity);
      trace_rule(rule_trace,
                 "[metadata] mean %.1f req/s >= %.0f with %zu spike(s) -> "
                 "metadata_high_density",
                 metadata.mean_requests_per_second,
                 thresholds.high_density_mean_requests,
                 metadata.spike_seconds);
    }
    if (!metadata.high_spike && !metadata.multiple_spikes &&
        !metadata.high_density) {
      trace_rule(rule_trace,
                 "[metadata] significant load but no spike rule fired");
    }
  }
  return out;
}

KindAnalysis Analyzer::analyze_ops(std::vector<trace::IoOp> ops,
                                   double runtime,
                                   obs::KindProvenance* evidence,
                                   bool stage_detail) const {
  KindAnalysis analysis;
  analysis.raw_ops = ops.size();
  StageMetrics& metrics = StageMetrics::get();

  {
    const obs::StageScope stage(stage_detail, metrics.merge_ms, "merge");
    ops = merge_ops(std::move(ops), runtime, thresholds_,
                    evidence != nullptr ? &evidence->merge : nullptr);
  }
  analysis.merged_ops = ops.size();

  obs::PeriodicityProvenance* periodicity_evidence =
      evidence != nullptr ? &evidence->periodicity : nullptr;

  // Mean-Shift periodicity runs over segments, so the segmentation stage is
  // only timed on the backends that need it.
  const auto segment = [&] {
    const obs::StageScope stage(stage_detail, metrics.segment_ms, "segment");
    auto segments = segment_ops(ops);
    if (evidence != nullptr) evidence->segments = segments.size();
    return segments;
  };
  {
    const obs::StageScope stage(stage_detail, metrics.periodicity_ms,
                                "periodicity");
    switch (thresholds_.periodicity_backend) {
      case PeriodicityBackend::kMeanShift:
        analysis.periodicity =
            detect_periodicity(segment(), thresholds_, periodicity_evidence);
        if (evidence != nullptr) evidence->periodicity.backend = "mean-shift";
        break;
      case PeriodicityBackend::kFrequency:
        analysis.periodicity = detect_periodicity_frequency(
            ops, runtime, thresholds_, periodicity_evidence);
        if (evidence != nullptr) evidence->periodicity.backend = "frequency";
        break;
      case PeriodicityBackend::kHybrid:
        analysis.periodicity =
            detect_periodicity(segment(), thresholds_, periodicity_evidence);
        if (!analysis.periodicity.periodic) {
          analysis.periodicity = detect_periodicity_frequency(
              ops, runtime, thresholds_, periodicity_evidence);
        }
        if (evidence != nullptr) evidence->periodicity.backend = "hybrid";
        break;
    }
  }
  {
    const obs::StageScope stage(stage_detail, metrics.temporality_ms,
                                "temporality");
    analysis.temporality =
        classify_temporality(ops, runtime, thresholds_,
                             evidence != nullptr ? &evidence->temporality
                                                 : nullptr);
  }
  return analysis;
}

KindAnalysis Analyzer::analyze_kind(const trace::Trace& trace,
                                    trace::OpKind kind,
                                    obs::KindProvenance* evidence,
                                    bool stage_detail) const {
  return analyze_ops(trace::extract_ops(trace, kind, thresholds_.min_op_width),
                     trace.meta.run_time, evidence, stage_detail);
}

TraceResult Analyzer::analyze(const trace::Trace& trace) const {
  // Journal gate: one relaxed load when provenance is off; when on, one in
  // every sample_every traces pays the capture cost.
  obs::ProvenanceJournal& journal = obs::ProvenanceJournal::global();
  if (journal.should_sample()) {
    obs::TraceProvenance evidence;
    TraceResult result = analyze(trace, &evidence);
    journal.record(std::move(evidence));
    return result;
  }
  return analyze(trace, nullptr);
}

TraceResult Analyzer::analyze(const trace::Trace& trace,
                              obs::TraceProvenance* evidence) const {
  StageMetrics& metrics = StageMetrics::get();
  MOSAIC_STAGE(metrics.analyze_ms, "analyze");

  // Per-stage detail (six more scopes: merge x2, segment x2, periodicity x2,
  // temporality x2, metadata, categorize) is sampled 1-in-8 per thread: the
  // stage histograms keep an unbiased latency distribution while the
  // un-sampled majority of traces pays only the whole-trace scope above.
  // The first trace on each thread is always detailed (tick starts at 0) so
  // short runs still populate every stage series, and evidence-capturing
  // calls are always detailed so `mosaic explain` timings line up with the
  // recorded decision path.
  constexpr std::uint32_t kStageDetailMask = 8 - 1;
  thread_local std::uint32_t stage_detail_tick = 0;
  const bool stage_detail =
      evidence != nullptr || (stage_detail_tick++ & kStageDetailMask) == 0;

  TraceResult result;
  result.app_key = trace.app_key();
  result.job_id = trace.meta.job_id;
  result.runtime = trace.meta.run_time;
  result.nprocs = trace.meta.nprocs;
  result.bytes_read = trace.total_bytes_read();
  result.bytes_written = trace.total_bytes_written();
  if (evidence != nullptr) {
    evidence->app_key = result.app_key;
    evidence->job_id = result.job_id;
    evidence->runtime = result.runtime;
    evidence->nprocs = result.nprocs;
  }

  result.read =
      analyze_kind(trace, trace::OpKind::kRead,
                   evidence != nullptr ? &evidence->read : nullptr,
                   stage_detail);
  result.write =
      analyze_kind(trace, trace::OpKind::kWrite,
                   evidence != nullptr ? &evidence->write : nullptr,
                   stage_detail);
  {
    const obs::StageScope stage(stage_detail, metrics.metadata_ms,
                                "metadata");
    result.metadata = classify_metadata(
        trace::metadata_timeline(trace), trace.meta.run_time,
        trace.meta.nprocs, thresholds_,
        evidence != nullptr ? &evidence->metadata : nullptr);
  }
  {
    const obs::StageScope stage(stage_detail, metrics.categorize_ms,
                                "categorize");
    result.categories = flatten_categories(
        result.read, result.write, result.metadata, thresholds_,
        evidence != nullptr ? &evidence->rules : nullptr);
  }
  if (evidence != nullptr) {
    for (const Category category : result.categories.to_vector()) {
      evidence->categories.emplace_back(category_name(category));
    }
  }
  metrics.traces_analyzed.add();
  return result;
}

BatchResult analyze_population(std::vector<trace::Trace> traces,
                               const Thresholds& thresholds,
                               parallel::ThreadPool* pool) {
  return analyze_preprocessed(preprocess(std::move(traces)), thresholds, pool);
}

BatchResult analyze_preprocessed(PreprocessResult pre,
                                 const Thresholds& thresholds,
                                 parallel::ThreadPool* pool) {
  BatchResult batch;
  batch.preprocess = pre.stats;
  batch.runs_per_app = std::move(pre.runs_per_app);

  const Analyzer analyzer(thresholds);
  batch.results.resize(pre.retained.size());
  if (pool != nullptr) {
    parallel::parallel_for(
        *pool, pre.retained.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            batch.results[i] = analyzer.analyze(pre.retained[i]);
          }
        });
  } else {
    for (std::size_t i = 0; i < pre.retained.size(); ++i) {
      batch.results[i] = analyzer.analyze(pre.retained[i]);
    }
  }
  return batch;
}

}  // namespace mosaic::core
