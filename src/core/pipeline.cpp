#include "core/pipeline.hpp"

#include "core/merge.hpp"
#include "core/segmentation.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"

namespace mosaic::core {

namespace {

/// Per-stage instruments, resolved once; the hot path pays one relaxed load
/// per stage plus two steady_clock reads, nothing else.
struct StageMetrics {
  obs::Histogram& merge_ms;
  obs::Histogram& segment_ms;
  obs::Histogram& periodicity_ms;
  obs::Histogram& temporality_ms;
  obs::Histogram& metadata_ms;
  obs::Histogram& categorize_ms;
  obs::Histogram& analyze_ms;
  obs::Counter& traces_analyzed;

  static StageMetrics& get() {
    static auto& registry = obs::Registry::global();
    static const auto buckets = obs::latency_buckets_ms();
    static StageMetrics metrics{
        registry.histogram(obs::names::kStageMergeMs, buckets,
                           "merge_ops stage latency (ms)"),
        registry.histogram(obs::names::kStageSegmentMs, buckets,
                           "segment_ops stage latency (ms)"),
        registry.histogram(obs::names::kStagePeriodicityMs, buckets,
                           "periodicity detection stage latency (ms)"),
        registry.histogram(obs::names::kStageTemporalityMs, buckets,
                           "temporality classification stage latency (ms)"),
        registry.histogram(obs::names::kStageMetadataMs, buckets,
                           "metadata classification stage latency (ms)"),
        registry.histogram(obs::names::kStageCategorizeMs, buckets,
                           "category flattening stage latency (ms)"),
        registry.histogram(obs::names::kStageAnalyzeMs, buckets,
                           "full per-trace analysis latency (ms)"),
        registry.counter(obs::names::kTracesAnalyzed,
                         "traces fully analyzed by the pipeline"),
    };
    return metrics;
  }
};

/// Periodicity label block for one kind, gated on significance.
void flatten_periodicity(CategorySet& out, trace::OpKind kind,
                         const KindAnalysis& analysis,
                         const Thresholds& thresholds) {
  if (analysis.temporality.label == Temporality::kInsignificant) return;
  const PeriodicityResult& periodicity = analysis.periodicity;
  if (!periodicity.periodic) return;

  const bool read = kind == trace::OpKind::kRead;
  out.insert(read ? Category::kReadPeriodic : Category::kWritePeriodic);

  // Categories are non-exclusive: a trace with two periodic operations of
  // different magnitudes carries both magnitude labels.
  for (const PeriodicGroup& group : periodicity.groups) {
    switch (group.magnitude) {
      case PeriodMagnitude::kSecond:
        out.insert(read ? Category::kReadPeriodicSecond
                        : Category::kWritePeriodicSecond);
        break;
      case PeriodMagnitude::kMinute:
        out.insert(read ? Category::kReadPeriodicMinute
                        : Category::kWritePeriodicMinute);
        break;
      case PeriodMagnitude::kHour:
        out.insert(read ? Category::kReadPeriodicHour
                        : Category::kWritePeriodicHour);
        break;
      case PeriodMagnitude::kDayOrMore:
        out.insert(read ? Category::kReadPeriodicDayOrMore
                        : Category::kWritePeriodicDayOrMore);
        break;
    }
  }

  // Busy time follows the dominant periodic operation.
  const double busy = periodicity.dominant().busy_ratio;
  if (busy >= thresholds.busy_ratio_split) {
    out.insert(read ? Category::kReadPeriodicHighBusyTime
                    : Category::kWritePeriodicHighBusyTime);
  } else {
    out.insert(read ? Category::kReadPeriodicLowBusyTime
                    : Category::kWritePeriodicLowBusyTime);
  }
}

}  // namespace

CategorySet flatten_categories(const KindAnalysis& read,
                               const KindAnalysis& write,
                               const MetadataResult& metadata,
                               const Thresholds& thresholds) {
  CategorySet out;
  out.insert(temporality_category(trace::OpKind::kRead, read.temporality.label));
  out.insert(
      temporality_category(trace::OpKind::kWrite, write.temporality.label));
  flatten_periodicity(out, trace::OpKind::kRead, read, thresholds);
  flatten_periodicity(out, trace::OpKind::kWrite, write, thresholds);

  if (metadata.insignificant) {
    out.insert(Category::kMetadataInsignificantLoad);
  } else {
    if (metadata.high_spike) out.insert(Category::kMetadataHighSpike);
    if (metadata.multiple_spikes) out.insert(Category::kMetadataMultipleSpikes);
    if (metadata.high_density) out.insert(Category::kMetadataHighDensity);
  }
  return out;
}

KindAnalysis Analyzer::analyze_ops(std::vector<trace::IoOp> ops,
                                   double runtime) const {
  KindAnalysis analysis;
  analysis.raw_ops = ops.size();
  StageMetrics& metrics = StageMetrics::get();

  {
    MOSAIC_SPAN("merge");
    const obs::ScopedTimerMs timer(metrics.merge_ms);
    ops = merge_ops(std::move(ops), runtime, thresholds_);
  }
  analysis.merged_ops = ops.size();

  // Mean-Shift periodicity runs over segments, so the segmentation stage is
  // only timed on the backends that need it.
  const auto segment = [&] {
    MOSAIC_SPAN("segment");
    const obs::ScopedTimerMs timer(metrics.segment_ms);
    return segment_ops(ops);
  };
  {
    MOSAIC_SPAN("periodicity");
    const obs::ScopedTimerMs timer(metrics.periodicity_ms);
    switch (thresholds_.periodicity_backend) {
      case PeriodicityBackend::kMeanShift:
        analysis.periodicity = detect_periodicity(segment(), thresholds_);
        break;
      case PeriodicityBackend::kFrequency:
        analysis.periodicity =
            detect_periodicity_frequency(ops, runtime, thresholds_);
        break;
      case PeriodicityBackend::kHybrid:
        analysis.periodicity = detect_periodicity(segment(), thresholds_);
        if (!analysis.periodicity.periodic) {
          analysis.periodicity =
              detect_periodicity_frequency(ops, runtime, thresholds_);
        }
        break;
    }
  }
  {
    MOSAIC_SPAN("temporality");
    const obs::ScopedTimerMs timer(metrics.temporality_ms);
    analysis.temporality = classify_temporality(ops, runtime, thresholds_);
  }
  return analysis;
}

KindAnalysis Analyzer::analyze_kind(const trace::Trace& trace,
                                    trace::OpKind kind) const {
  return analyze_ops(trace::extract_ops(trace, kind, thresholds_.min_op_width),
                     trace.meta.run_time);
}

TraceResult Analyzer::analyze(const trace::Trace& trace) const {
  StageMetrics& metrics = StageMetrics::get();
  MOSAIC_SPAN("analyze");
  const obs::ScopedTimerMs analyze_timer(metrics.analyze_ms);

  TraceResult result;
  result.app_key = trace.app_key();
  result.job_id = trace.meta.job_id;
  result.runtime = trace.meta.run_time;
  result.nprocs = trace.meta.nprocs;
  result.bytes_read = trace.total_bytes_read();
  result.bytes_written = trace.total_bytes_written();

  result.read = analyze_kind(trace, trace::OpKind::kRead);
  result.write = analyze_kind(trace, trace::OpKind::kWrite);
  {
    MOSAIC_SPAN("metadata");
    const obs::ScopedTimerMs timer(metrics.metadata_ms);
    result.metadata =
        classify_metadata(trace::metadata_timeline(trace), trace.meta.run_time,
                          trace.meta.nprocs, thresholds_);
  }
  {
    MOSAIC_SPAN("categorize");
    const obs::ScopedTimerMs timer(metrics.categorize_ms);
    result.categories = flatten_categories(result.read, result.write,
                                           result.metadata, thresholds_);
  }
  metrics.traces_analyzed.add();
  return result;
}

BatchResult analyze_population(std::vector<trace::Trace> traces,
                               const Thresholds& thresholds,
                               parallel::ThreadPool* pool) {
  return analyze_preprocessed(preprocess(std::move(traces)), thresholds, pool);
}

BatchResult analyze_preprocessed(PreprocessResult pre,
                                 const Thresholds& thresholds,
                                 parallel::ThreadPool* pool) {
  BatchResult batch;
  batch.preprocess = pre.stats;
  batch.runs_per_app = std::move(pre.runs_per_app);

  const Analyzer analyzer(thresholds);
  batch.results.resize(pre.retained.size());
  if (pool != nullptr) {
    parallel::parallel_for(
        *pool, pre.retained.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            batch.results[i] = analyzer.analyze(pre.retained[i]);
          }
        });
  } else {
    for (std::size_t i = 0; i < pre.retained.size(); ++i) {
      batch.results[i] = analyzer.analyze(pre.retained[i]);
    }
  }
  return batch;
}

}  // namespace mosaic::core
