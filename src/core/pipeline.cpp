#include "core/pipeline.hpp"

#include "core/merge.hpp"
#include "core/segmentation.hpp"

namespace mosaic::core {

namespace {

/// Periodicity label block for one kind, gated on significance.
void flatten_periodicity(CategorySet& out, trace::OpKind kind,
                         const KindAnalysis& analysis,
                         const Thresholds& thresholds) {
  if (analysis.temporality.label == Temporality::kInsignificant) return;
  const PeriodicityResult& periodicity = analysis.periodicity;
  if (!periodicity.periodic) return;

  const bool read = kind == trace::OpKind::kRead;
  out.insert(read ? Category::kReadPeriodic : Category::kWritePeriodic);

  // Categories are non-exclusive: a trace with two periodic operations of
  // different magnitudes carries both magnitude labels.
  for (const PeriodicGroup& group : periodicity.groups) {
    switch (group.magnitude) {
      case PeriodMagnitude::kSecond:
        out.insert(read ? Category::kReadPeriodicSecond
                        : Category::kWritePeriodicSecond);
        break;
      case PeriodMagnitude::kMinute:
        out.insert(read ? Category::kReadPeriodicMinute
                        : Category::kWritePeriodicMinute);
        break;
      case PeriodMagnitude::kHour:
        out.insert(read ? Category::kReadPeriodicHour
                        : Category::kWritePeriodicHour);
        break;
      case PeriodMagnitude::kDayOrMore:
        out.insert(read ? Category::kReadPeriodicDayOrMore
                        : Category::kWritePeriodicDayOrMore);
        break;
    }
  }

  // Busy time follows the dominant periodic operation.
  const double busy = periodicity.dominant().busy_ratio;
  if (busy >= thresholds.busy_ratio_split) {
    out.insert(read ? Category::kReadPeriodicHighBusyTime
                    : Category::kWritePeriodicHighBusyTime);
  } else {
    out.insert(read ? Category::kReadPeriodicLowBusyTime
                    : Category::kWritePeriodicLowBusyTime);
  }
}

}  // namespace

CategorySet flatten_categories(const KindAnalysis& read,
                               const KindAnalysis& write,
                               const MetadataResult& metadata,
                               const Thresholds& thresholds) {
  CategorySet out;
  out.insert(temporality_category(trace::OpKind::kRead, read.temporality.label));
  out.insert(
      temporality_category(trace::OpKind::kWrite, write.temporality.label));
  flatten_periodicity(out, trace::OpKind::kRead, read, thresholds);
  flatten_periodicity(out, trace::OpKind::kWrite, write, thresholds);

  if (metadata.insignificant) {
    out.insert(Category::kMetadataInsignificantLoad);
  } else {
    if (metadata.high_spike) out.insert(Category::kMetadataHighSpike);
    if (metadata.multiple_spikes) out.insert(Category::kMetadataMultipleSpikes);
    if (metadata.high_density) out.insert(Category::kMetadataHighDensity);
  }
  return out;
}

KindAnalysis Analyzer::analyze_ops(std::vector<trace::IoOp> ops,
                                   double runtime) const {
  KindAnalysis analysis;
  analysis.raw_ops = ops.size();

  ops = merge_ops(std::move(ops), runtime, thresholds_);
  analysis.merged_ops = ops.size();

  switch (thresholds_.periodicity_backend) {
    case PeriodicityBackend::kMeanShift:
      analysis.periodicity =
          detect_periodicity(segment_ops(ops), thresholds_);
      break;
    case PeriodicityBackend::kFrequency:
      analysis.periodicity =
          detect_periodicity_frequency(ops, runtime, thresholds_);
      break;
    case PeriodicityBackend::kHybrid:
      analysis.periodicity =
          detect_periodicity(segment_ops(ops), thresholds_);
      if (!analysis.periodicity.periodic) {
        analysis.periodicity =
            detect_periodicity_frequency(ops, runtime, thresholds_);
      }
      break;
  }
  analysis.temporality = classify_temporality(ops, runtime, thresholds_);
  return analysis;
}

KindAnalysis Analyzer::analyze_kind(const trace::Trace& trace,
                                    trace::OpKind kind) const {
  return analyze_ops(trace::extract_ops(trace, kind, thresholds_.min_op_width),
                     trace.meta.run_time);
}

TraceResult Analyzer::analyze(const trace::Trace& trace) const {
  TraceResult result;
  result.app_key = trace.app_key();
  result.job_id = trace.meta.job_id;
  result.runtime = trace.meta.run_time;
  result.nprocs = trace.meta.nprocs;
  result.bytes_read = trace.total_bytes_read();
  result.bytes_written = trace.total_bytes_written();

  result.read = analyze_kind(trace, trace::OpKind::kRead);
  result.write = analyze_kind(trace, trace::OpKind::kWrite);
  result.metadata =
      classify_metadata(trace::metadata_timeline(trace), trace.meta.run_time,
                        trace.meta.nprocs, thresholds_);
  result.categories = flatten_categories(result.read, result.write,
                                         result.metadata, thresholds_);
  return result;
}

BatchResult analyze_population(std::vector<trace::Trace> traces,
                               const Thresholds& thresholds,
                               parallel::ThreadPool* pool) {
  return analyze_preprocessed(preprocess(std::move(traces)), thresholds, pool);
}

BatchResult analyze_preprocessed(PreprocessResult pre,
                                 const Thresholds& thresholds,
                                 parallel::ThreadPool* pool) {
  BatchResult batch;
  batch.preprocess = pre.stats;
  batch.runs_per_app = std::move(pre.runs_per_app);

  const Analyzer analyzer(thresholds);
  batch.results.resize(pre.retained.size());
  if (pool != nullptr) {
    parallel::parallel_for(
        *pool, pre.retained.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            batch.results[i] = analyzer.analyze(pre.retained[i]);
          }
        });
  } else {
    for (std::size_t i = 0; i < pre.retained.size(); ++i) {
      batch.results[i] = analyzer.analyze(pre.retained[i]);
    }
  }
  return batch;
}

}  // namespace mosaic::core
