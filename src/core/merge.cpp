#include "core/merge.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/provenance.hpp"

namespace mosaic::core {

using trace::IoOp;

namespace {

double covered_seconds(const std::vector<IoOp>& ops) {
  double total = 0.0;
  for (const IoOp& op : ops) total += op.duration();
  return total;
}

/// Folds `op` into `acc`: widens the window, sums bytes, demotes the rank to
/// shared when sources disagree.
void fold(IoOp& acc, const IoOp& op) {
  acc.start = std::min(acc.start, op.start);
  acc.end = std::max(acc.end, op.end);
  acc.bytes += op.bytes;
  if (acc.rank != op.rank) acc.rank = trace::kSharedRank;
}

}  // namespace

std::vector<IoOp> merge_concurrent(std::vector<IoOp> ops) {
  if (ops.size() <= 1) return ops;
  std::sort(ops.begin(), ops.end(), [](const IoOp& a, const IoOp& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.end < b.end;
  });
  // In-place compaction: the write cursor trails the read cursor, so each op
  // folds into (or is placed after) the last surviving op without a second
  // buffer — merging never allocates on the steady-state batch path.
  std::size_t last = 0;
  for (std::size_t i = 1; i < ops.size(); ++i) {
    if (ops[i].start <= ops[last].end) {
      fold(ops[last], ops[i]);
    } else {
      ops[++last] = ops[i];
    }
  }
  ops.resize(last + 1);
  return ops;
}

std::vector<IoOp> merge_neighbors(std::vector<IoOp> ops, double total_runtime,
                                  const Thresholds& thresholds) {
  if (ops.size() <= 1) return ops;
  const double runtime_gap =
      thresholds.neighbor_gap_runtime_fraction * total_runtime;

  // Same in-place compaction as merge_concurrent.
  std::size_t last = 0;
  for (std::size_t i = 1; i < ops.size(); ++i) {
    const IoOp& next = ops[i];
    MOSAIC_ASSERT(next.start >= ops[last].end);  // disjoint, sorted input
    const double gap = next.start - ops[last].end;
    // The "nearby merged operation" is the running fusion on the left; using
    // its (possibly already grown) duration mirrors the iterative behavior
    // the paper describes for slowly sliding desynchronization.
    const double op_gap =
        thresholds.neighbor_gap_op_fraction * ops[last].duration();
    if (gap < runtime_gap || gap < op_gap) {
      fold(ops[last], next);
    } else {
      ops[++last] = next;
    }
  }
  ops.resize(last + 1);
  return ops;
}

std::vector<IoOp> merge_ops(std::vector<IoOp> ops, double total_runtime,
                            const Thresholds& thresholds,
                            obs::MergeProvenance* evidence) {
  if (evidence == nullptr) {
    return merge_neighbors(merge_concurrent(std::move(ops)), total_runtime,
                           thresholds);
  }
  evidence->raw_ops = static_cast<std::uint64_t>(ops.size());
  evidence->covered_seconds_before = covered_seconds(ops);
  std::vector<IoOp> concurrent = merge_concurrent(std::move(ops));
  evidence->after_concurrent = static_cast<std::uint64_t>(concurrent.size());
  std::vector<IoOp> merged =
      merge_neighbors(std::move(concurrent), total_runtime, thresholds);
  evidence->merged_ops = static_cast<std::uint64_t>(merged.size());
  evidence->covered_seconds_after = covered_seconds(merged);
  return merged;
}

}  // namespace mosaic::core
