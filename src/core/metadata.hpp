// Metadata-impact characterization (paper §III-B3c).
//
// The metadata request timeline (OPEN+SEEK at op start, CLOSE at op end —
// Darshan never timestamps SEEKs, so MOSAIC co-locates them with OPENs) is
// binned per second. Three rules, with thresholds derived from the
// MDWorkbench study of the Mistral metadata server:
//   high_spike      — >= 250 requests within one second, at least once
//   multiple_spikes — >= 5 seconds with >= 50 requests
//   high_density    — >= 5 spikes AND an execution-wide mean >= 50 req/s
// Traces issuing fewer metadata requests than they have ranks carry
// insignificant_load instead (paper §III-A).
#pragma once

#include <cstdint>
#include <span>

#include "core/thresholds.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace mosaic::obs {
struct MetadataProvenance;
}  // namespace mosaic::obs

namespace mosaic::core {

/// Metadata classification plus the measurements behind it.
struct MetadataResult {
  bool insignificant = true;
  bool high_spike = false;
  bool multiple_spikes = false;
  bool high_density = false;

  std::uint64_t total_requests = 0;
  double max_requests_per_second = 0.0;
  std::size_t spike_seconds = 0;  ///< seconds at/above the spike threshold
  double mean_requests_per_second = 0.0;
};

/// Classifies a metadata timeline for a job of `runtime` seconds on
/// `nprocs` ranks. Events outside [0, runtime] clamp into the edge seconds.
/// When `evidence` is non-null the measured ratios, every threshold the
/// rules compared them with, and the closest comparison's margin are
/// recorded.
[[nodiscard]] MetadataResult classify_metadata(
    std::span<const trace::MetaEvent> events, double runtime,
    std::uint32_t nprocs, const Thresholds& thresholds = {},
    obs::MetadataProvenance* evidence = nullptr);

/// Workspace form: the per-second request histogram (one bin per runtime
/// second, the dominant scratch allocation of this stage) reuses
/// `histogram`'s storage. Results are identical to the convenience form.
[[nodiscard]] MetadataResult classify_metadata(
    std::span<const trace::MetaEvent> events, double runtime,
    std::uint32_t nprocs, const Thresholds& thresholds,
    obs::MetadataProvenance* evidence, util::Histogram& histogram);

}  // namespace mosaic::core
