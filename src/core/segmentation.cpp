#include "core/segmentation.hpp"

namespace mosaic::core {

std::vector<Segment> segment_ops(std::span<const trace::IoOp> ops) {
  std::vector<Segment> segments;
  segment_ops(ops, segments);
  return segments;
}

void segment_ops(std::span<const trace::IoOp> ops,
                 std::vector<Segment>& segments) {
  segments.clear();
  if (ops.size() < 2) return;
  segments.reserve(ops.size() - 1);
  for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
    MOSAIC_ASSERT(ops[i + 1].start >= ops[i].start);
    Segment segment;
    segment.start = ops[i].start;
    segment.length = ops[i + 1].start - ops[i].start;
    segment.op_duration = ops[i].duration();
    segment.bytes = ops[i].bytes;
    segments.push_back(segment);
  }
}

void segment_ops(const OpColumns& ops, std::vector<Segment>& segments) {
  segments.clear();
  const std::size_t n = ops.size();
  if (n < 2) return;
  segments.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    MOSAIC_ASSERT(ops.start[i + 1] >= ops.start[i]);
    Segment segment;
    segment.start = ops.start[i];
    segment.length = ops.start[i + 1] - ops.start[i];
    segment.op_duration = ops.end[i] - ops.start[i];
    segment.bytes = ops.bytes_u64[i];
    segments.push_back(segment);
  }
}

}  // namespace mosaic::core
