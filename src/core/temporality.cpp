#include "core/temporality.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace mosaic::core {

const char* temporality_name(Temporality label) noexcept {
  switch (label) {
    case Temporality::kInsignificant: return "insignificant";
    case Temporality::kOnStart: return "on_start";
    case Temporality::kAfterStart: return "after_start";
    case Temporality::kBeforeEnd: return "before_end";
    case Temporality::kOnEnd: return "on_end";
    case Temporality::kAfterStartBeforeEnd: return "after_start_before_end";
    case Temporality::kSteady: return "steady";
    case Temporality::kUnclassified: return "unclassified";
  }
  return "unknown";
}

Category temporality_category(trace::OpKind kind, Temporality label) noexcept {
  const bool read = kind == trace::OpKind::kRead;
  switch (label) {
    case Temporality::kOnStart:
      return read ? Category::kReadOnStart : Category::kWriteOnStart;
    case Temporality::kOnEnd:
      return read ? Category::kReadOnEnd : Category::kWriteOnEnd;
    case Temporality::kAfterStart:
      return read ? Category::kReadAfterStart : Category::kWriteAfterStart;
    case Temporality::kBeforeEnd:
      return read ? Category::kReadBeforeEnd : Category::kWriteBeforeEnd;
    case Temporality::kAfterStartBeforeEnd:
      return read ? Category::kReadAfterStartBeforeEnd
                  : Category::kWriteAfterStartBeforeEnd;
    case Temporality::kSteady:
      return read ? Category::kReadSteady : Category::kWriteSteady;
    case Temporality::kInsignificant:
      return read ? Category::kReadInsignificant : Category::kWriteInsignificant;
    case Temporality::kUnclassified:
      return read ? Category::kReadUnclassified : Category::kWriteUnclassified;
  }
  return Category::kReadUnclassified;
}

std::vector<double> chunk_volumes(std::span<const trace::IoOp> ops,
                                  double runtime, std::size_t chunks) {
  MOSAIC_ASSERT(runtime > 0.0);
  MOSAIC_ASSERT(chunks >= 1);
  std::vector<double> volumes(chunks, 0.0);
  const double chunk_len = runtime / static_cast<double>(chunks);
  for (const trace::IoOp& op : ops) {
    // Clamp the window into the job; corrupted inputs were evicted earlier,
    // but the slack-tolerant validator admits small excursions.
    const double start = std::clamp(op.start, 0.0, runtime);
    const double end = std::clamp(op.end, 0.0, runtime);
    const double duration = end - start;
    if (duration <= 0.0) {
      // Degenerate window: attribute everything to the containing chunk.
      auto index = static_cast<std::size_t>(
          std::min(start / chunk_len, static_cast<double>(chunks - 1)));
      volumes[index] += static_cast<double>(op.bytes);
      continue;
    }
    const auto first_chunk = static_cast<std::size_t>(
        std::min(start / chunk_len, static_cast<double>(chunks - 1)));
    const auto last_chunk = static_cast<std::size_t>(
        std::min(end / chunk_len, static_cast<double>(chunks - 1)));
    for (std::size_t c = first_chunk; c <= last_chunk; ++c) {
      const double chunk_start = static_cast<double>(c) * chunk_len;
      const double chunk_end = chunk_start + chunk_len;
      const double overlap =
          std::min(end, chunk_end) - std::max(start, chunk_start);
      if (overlap <= 0.0) continue;
      volumes[c] += static_cast<double>(op.bytes) * (overlap / duration);
    }
  }
  return volumes;
}

Temporality classify_chunks(std::span<const double> chunks, double total_bytes,
                            const Thresholds& thresholds) {
  if (total_bytes < static_cast<double>(thresholds.min_bytes)) {
    return Temporality::kInsignificant;
  }
  MOSAIC_ASSERT(chunks.size() >= 4);

  if (util::coefficient_of_variation(chunks) < thresholds.steady_cv) {
    return Temporality::kSteady;
  }

  // Single-chunk dominance: strictly more than `dominance_factor` times
  // every other chunk.
  const double factor = thresholds.dominance_factor;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i] <= 0.0) continue;
    bool dominates = true;
    for (std::size_t j = 0; j < chunks.size(); ++j) {
      if (j != i && chunks[i] <= factor * chunks[j]) {
        dominates = false;
        break;
      }
    }
    if (!dominates) continue;
    if (i == 0) return Temporality::kOnStart;
    if (i == chunks.size() - 1) return Temporality::kOnEnd;
    if (i == 1) return Temporality::kAfterStart;
    if (i == chunks.size() - 2) return Temporality::kBeforeEnd;
    // With more than four chunks an interior dominance maps to the middle
    // label below.
    return Temporality::kAfterStartBeforeEnd;
  }

  // Middle dominance: the interior chunks jointly outweigh the extremes.
  double middle = 0.0;
  for (std::size_t i = 1; i + 1 < chunks.size(); ++i) middle += chunks[i];
  const double extremes = chunks.front() + chunks.back();
  if (middle > factor * extremes) {
    return Temporality::kAfterStartBeforeEnd;
  }

  return Temporality::kUnclassified;
}

TemporalityResult classify_temporality(std::span<const trace::IoOp> ops,
                                       double runtime,
                                       const Thresholds& thresholds) {
  TemporalityResult result;
  result.chunk_bytes = chunk_volumes(ops, runtime, thresholds.temporality_chunks);
  for (const trace::IoOp& op : ops) {
    result.total_bytes += static_cast<double>(op.bytes);
  }
  result.label =
      classify_chunks(result.chunk_bytes, result.total_bytes, thresholds);
  return result;
}

}  // namespace mosaic::core
