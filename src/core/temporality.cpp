#include "core/temporality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/provenance.hpp"
#include "util/simd.hpp"
#include "util/stats.hpp"

namespace mosaic::core {

namespace {

/// Normalized margin of `value` from `limit`, in [0, 1]; 0 means the
/// statistic sat exactly on the decision boundary.
double boundary_margin(double value, double limit) {
  if (limit <= 0.0) return 1.0;
  return std::clamp(std::abs(limit - value) / limit, 0.0, 1.0);
}

}  // namespace

const char* temporality_name(Temporality label) noexcept {
  switch (label) {
    case Temporality::kInsignificant: return "insignificant";
    case Temporality::kOnStart: return "on_start";
    case Temporality::kAfterStart: return "after_start";
    case Temporality::kBeforeEnd: return "before_end";
    case Temporality::kOnEnd: return "on_end";
    case Temporality::kAfterStartBeforeEnd: return "after_start_before_end";
    case Temporality::kSteady: return "steady";
    case Temporality::kUnclassified: return "unclassified";
  }
  return "unknown";
}

Category temporality_category(trace::OpKind kind, Temporality label) noexcept {
  const bool read = kind == trace::OpKind::kRead;
  switch (label) {
    case Temporality::kOnStart:
      return read ? Category::kReadOnStart : Category::kWriteOnStart;
    case Temporality::kOnEnd:
      return read ? Category::kReadOnEnd : Category::kWriteOnEnd;
    case Temporality::kAfterStart:
      return read ? Category::kReadAfterStart : Category::kWriteAfterStart;
    case Temporality::kBeforeEnd:
      return read ? Category::kReadBeforeEnd : Category::kWriteBeforeEnd;
    case Temporality::kAfterStartBeforeEnd:
      return read ? Category::kReadAfterStartBeforeEnd
                  : Category::kWriteAfterStartBeforeEnd;
    case Temporality::kSteady:
      return read ? Category::kReadSteady : Category::kWriteSteady;
    case Temporality::kInsignificant:
      return read ? Category::kReadInsignificant : Category::kWriteInsignificant;
    case Temporality::kUnclassified:
      return read ? Category::kReadUnclassified : Category::kWriteUnclassified;
  }
  return Category::kReadUnclassified;
}

std::vector<double> chunk_volumes(std::span<const trace::IoOp> ops,
                                  double runtime, std::size_t chunks) {
  MOSAIC_ASSERT(runtime > 0.0);
  MOSAIC_ASSERT(chunks >= 1);
  std::vector<double> volumes(chunks, 0.0);
  const double chunk_len = runtime / static_cast<double>(chunks);
  for (const trace::IoOp& op : ops) {
    // Clamp the window into the job; corrupted inputs were evicted earlier,
    // but the slack-tolerant validator admits small excursions.
    const double start = std::clamp(op.start, 0.0, runtime);
    const double end = std::clamp(op.end, 0.0, runtime);
    const double duration = end - start;
    if (duration <= 0.0) {
      // Degenerate window: attribute everything to the containing chunk.
      auto index = static_cast<std::size_t>(
          std::min(start / chunk_len, static_cast<double>(chunks - 1)));
      volumes[index] += static_cast<double>(op.bytes);
      continue;
    }
    const auto first_chunk = static_cast<std::size_t>(
        std::min(start / chunk_len, static_cast<double>(chunks - 1)));
    const auto last_chunk = static_cast<std::size_t>(
        std::min(end / chunk_len, static_cast<double>(chunks - 1)));
    for (std::size_t c = first_chunk; c <= last_chunk; ++c) {
      const double chunk_start = static_cast<double>(c) * chunk_len;
      const double chunk_end = chunk_start + chunk_len;
      const double overlap =
          std::min(end, chunk_end) - std::max(start, chunk_start);
      if (overlap <= 0.0) continue;
      volumes[c] += static_cast<double>(op.bytes) * (overlap / duration);
    }
  }
  return volumes;
}

Temporality classify_chunks(std::span<const double> chunks, double total_bytes,
                            const Thresholds& thresholds,
                            obs::TemporalityProvenance* evidence) {
  // The verdict's margin from the rule boundary that decided it; for the
  // unclassified tail, the distance to the *nearest* rule that almost fired
  // (the paper's 8% error concentrates exactly in these straddling cases).
  const auto conclude = [&](Temporality label, const char* rule,
                            double confidence,
                            std::int64_t dominant_chunk = -1) {
    if (evidence != nullptr) {
      evidence->chunk_bytes.assign(chunks.begin(), chunks.end());
      evidence->total_bytes = total_bytes;
      evidence->min_bytes_threshold =
          static_cast<double>(thresholds.min_bytes);
      evidence->chunk_cv = chunks.empty()
                               ? 0.0
                               : util::coefficient_of_variation(chunks);
      evidence->steady_cv_threshold = thresholds.steady_cv;
      evidence->dominance_factor = thresholds.dominance_factor;
      evidence->dominant_chunk = dominant_chunk;
      evidence->rule = rule;
      evidence->label = temporality_name(label);
      evidence->confidence = std::clamp(confidence, 0.0, 1.0);
    }
    return label;
  };

  if (total_bytes < static_cast<double>(thresholds.min_bytes)) {
    return conclude(
        Temporality::kInsignificant, "insignificant",
        boundary_margin(total_bytes,
                        static_cast<double>(thresholds.min_bytes)));
  }
  MOSAIC_ASSERT(chunks.size() >= 4);

  const double cv = util::coefficient_of_variation(chunks);
  if (cv < thresholds.steady_cv) {
    return conclude(Temporality::kSteady, "steady",
                    boundary_margin(cv, thresholds.steady_cv));
  }

  // Single-chunk dominance: strictly more than `dominance_factor` times
  // every other chunk. The dominance ratio of chunk i is its tightest lead
  // over any other chunk; the verdict margin is that ratio's distance from
  // the factor.
  const double factor = thresholds.dominance_factor;
  double best_ratio = 0.0;  // closest miss, for the unclassified margin
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i] <= 0.0) continue;
    double ratio = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < chunks.size(); ++j) {
      if (j == i) continue;
      ratio = chunks[j] > 0.0 ? std::min(ratio, chunks[i] / chunks[j]) : ratio;
    }
    best_ratio = std::max(best_ratio, std::isfinite(ratio) ? ratio : factor * 2.0);
    if (ratio <= factor) continue;
    const double margin =
        std::isfinite(ratio) ? boundary_margin(ratio, factor) : 1.0;
    const auto chunk_index = static_cast<std::int64_t>(i);
    if (i == 0) {
      return conclude(Temporality::kOnStart, "chunk-dominance", margin,
                      chunk_index);
    }
    if (i == chunks.size() - 1) {
      return conclude(Temporality::kOnEnd, "chunk-dominance", margin,
                      chunk_index);
    }
    if (i == 1) {
      return conclude(Temporality::kAfterStart, "chunk-dominance", margin,
                      chunk_index);
    }
    if (i == chunks.size() - 2) {
      return conclude(Temporality::kBeforeEnd, "chunk-dominance", margin,
                      chunk_index);
    }
    // With more than four chunks an interior dominance maps to the middle
    // label below.
    return conclude(Temporality::kAfterStartBeforeEnd, "chunk-dominance",
                    margin, chunk_index);
  }

  // Middle dominance: the interior chunks jointly outweigh the extremes.
  double middle = 0.0;
  for (std::size_t i = 1; i + 1 < chunks.size(); ++i) middle += chunks[i];
  const double extremes = chunks.front() + chunks.back();
  const double middle_ratio =
      extremes > 0.0 ? middle / extremes : std::numeric_limits<double>::infinity();
  if (middle_ratio > factor) {
    return conclude(Temporality::kAfterStartBeforeEnd, "middle-dominance",
                    std::isfinite(middle_ratio)
                        ? boundary_margin(middle_ratio, factor)
                        : 1.0);
  }

  // Nothing fired: the margin is the distance to whichever rule came
  // closest — low values flag the straddling cases.
  const double near_steady = boundary_margin(cv, thresholds.steady_cv);
  const double near_dominance = boundary_margin(best_ratio, factor);
  const double near_middle =
      std::isfinite(middle_ratio) ? boundary_margin(middle_ratio, factor) : 1.0;
  return conclude(Temporality::kUnclassified, "unclassified",
                  std::min({near_steady, near_dominance, near_middle}));
}

TemporalityResult classify_temporality(std::span<const trace::IoOp> ops,
                                       double runtime,
                                       const Thresholds& thresholds,
                                       obs::TemporalityProvenance* evidence) {
  TemporalityResult result;
  result.chunk_bytes = chunk_volumes(ops, runtime, thresholds.temporality_chunks);
  for (const trace::IoOp& op : ops) {
    result.total_bytes += static_cast<double>(op.bytes);
  }
  result.label = classify_chunks(result.chunk_bytes, result.total_bytes,
                                 thresholds, evidence);
  return result;
}

namespace {

/// Columnar chunk attribution: the same floating-point operations as
/// chunk_volumes, element for element, read from the SoA columns.
std::vector<double> chunk_volumes_columnar(const OpColumns& ops,
                                           double runtime,
                                           std::size_t chunks) {
  MOSAIC_ASSERT(runtime > 0.0);
  MOSAIC_ASSERT(chunks >= 1);
  std::vector<double> volumes(chunks, 0.0);
  const double chunk_len = runtime / static_cast<double>(chunks);
  const std::size_t n = ops.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double start = std::clamp(ops.start[i], 0.0, runtime);
    const double end = std::clamp(ops.end[i], 0.0, runtime);
    const double op_bytes = ops.bytes[i];
    const double duration = end - start;
    if (duration <= 0.0) {
      const auto index = static_cast<std::size_t>(
          std::min(start / chunk_len, static_cast<double>(chunks - 1)));
      volumes[index] += op_bytes;
      continue;
    }
    const auto first_chunk = static_cast<std::size_t>(
        std::min(start / chunk_len, static_cast<double>(chunks - 1)));
    const auto last_chunk = static_cast<std::size_t>(
        std::min(end / chunk_len, static_cast<double>(chunks - 1)));
    for (std::size_t c = first_chunk; c <= last_chunk; ++c) {
      const double chunk_start = static_cast<double>(c) * chunk_len;
      const double chunk_end = chunk_start + chunk_len;
      const double overlap =
          std::min(end, chunk_end) - std::max(start, chunk_start);
      if (overlap <= 0.0) continue;
      volumes[c] += op_bytes * (overlap / duration);
    }
  }
  return volumes;
}

}  // namespace

TemporalityResult classify_temporality(const OpColumns& ops, double runtime,
                                       const Thresholds& thresholds,
                                       obs::TemporalityProvenance* evidence) {
  TemporalityResult result;
  result.chunk_bytes =
      chunk_volumes_columnar(ops, runtime, thresholds.temporality_chunks);
  // Lane sum over integer-valued doubles: exact, hence bit-identical to the
  // sequential accumulation of the span form.
  result.total_bytes = util::simd::sum(ops.bytes);
  result.label = classify_chunks(result.chunk_bytes, result.total_bytes,
                                 thresholds, evidence);
  return result;
}

}  // namespace mosaic::core
