// Temporality characterization (paper §III-B3b, lower half of Fig. 2).
//
// The execution is split into four equal time chunks; each merged op's bytes
// are attributed to the chunks it overlaps (proportional to overlap,
// assuming a uniform transfer rate inside the window). The chunk profile
// then maps to a label: a dominant first chunk means {read,write}_on_start,
// a flat profile (CV < 25%) means steady, and so on.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/categories.hpp"
#include "core/columns.hpp"
#include "core/thresholds.hpp"
#include "trace/trace.hpp"

namespace mosaic::obs {
struct TemporalityProvenance;
}  // namespace mosaic::obs

namespace mosaic::core {

/// Per-kind temporality label.
enum class Temporality : std::uint8_t {
  kInsignificant,          ///< volume below Thresholds::min_bytes
  kOnStart,                ///< first chunk dominates
  kAfterStart,             ///< second chunk dominates
  kBeforeEnd,              ///< third chunk dominates
  kOnEnd,                  ///< last chunk dominates
  kAfterStartBeforeEnd,    ///< middle chunks dominate the extremes
  kSteady,                 ///< near-uniform volume across chunks
  kUnclassified,           ///< none of the rules fired (the paper's ~2% tail)
};

[[nodiscard]] const char* temporality_name(Temporality label) noexcept;

/// Flattens (kind, label) into the report category space, e.g.
/// (kWrite, kOnEnd) -> Category::kWriteOnEnd.
[[nodiscard]] Category temporality_category(trace::OpKind kind,
                                            Temporality label) noexcept;

/// Classifier output: the label plus the chunk volumes that produced it
/// (kept for reports and for the accuracy post-mortem).
struct TemporalityResult {
  Temporality label = Temporality::kInsignificant;
  std::vector<double> chunk_bytes;  ///< size == Thresholds::temporality_chunks
  double total_bytes = 0.0;
};

/// Splits `runtime` into chunks and attributes each op's bytes to them by
/// overlap fraction. Ops are clamped into [0, runtime].
[[nodiscard]] std::vector<double> chunk_volumes(
    std::span<const trace::IoOp> ops, double runtime, std::size_t chunks);

/// Applies the rule system to a chunk profile.
/// Rule order: insignificant -> steady -> single-chunk dominance ->
/// middle dominance -> unclassified.
/// When `evidence` is non-null the chunk statistics, the rule that fired and
/// the verdict's margin from the nearest decision boundary are recorded.
[[nodiscard]] Temporality classify_chunks(
    std::span<const double> chunks, double total_bytes,
    const Thresholds& thresholds = {},
    obs::TemporalityProvenance* evidence = nullptr);

/// End-to-end: chunk profile + rules for one op kind of one trace.
[[nodiscard]] TemporalityResult classify_temporality(
    std::span<const trace::IoOp> ops, double runtime,
    const Thresholds& thresholds = {},
    obs::TemporalityProvenance* evidence = nullptr);

/// Columnar form used by the analyzer hot path: the chunk attribution walks
/// the SoA columns and the total-byte reduction is the SIMD lane sum (exact —
/// byte counts are integer-valued doubles, so any association yields the
/// same bits as the sequential loop). Results are bit-identical to the span
/// form.
[[nodiscard]] TemporalityResult classify_temporality(
    const OpColumns& ops, double runtime, const Thresholds& thresholds = {},
    obs::TemporalityProvenance* evidence = nullptr);

}  // namespace mosaic::core
