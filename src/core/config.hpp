// Threshold configuration I/O.
//
// The paper requires the categorization thresholds to be modifiable
// (§III-A: "the above-mentioned threshold can be modified in MOSAIC to
// extend or narrow the amount of I/O activities to categorize"). This
// module round-trips the full Thresholds struct through JSON so deployments
// can version their tuning alongside their data.
#pragma once

#include <string>

#include "core/thresholds.hpp"
#include "json/json.hpp"
#include "util/error.hpp"

namespace mosaic::core {

/// Serializes every threshold to a flat JSON object (stable key names).
[[nodiscard]] json::Value thresholds_to_json(const Thresholds& thresholds);

/// Builds a Thresholds from JSON. Missing keys keep their defaults; unknown
/// keys are an error (a typo must not silently fall back to a default).
/// Values are validated for basic sanity (positivity, enum range).
[[nodiscard]] util::Expected<Thresholds> thresholds_from_json(
    const json::Value& value);

/// File convenience wrappers.
[[nodiscard]] util::Status write_thresholds_file(const Thresholds& thresholds,
                                                 const std::string& path);
[[nodiscard]] util::Expected<Thresholds> read_thresholds_file(
    const std::string& path);

/// Backend name mapping ("mean_shift", "frequency", "hybrid").
[[nodiscard]] const char* periodicity_backend_name(
    PeriodicityBackend backend) noexcept;

}  // namespace mosaic::core
