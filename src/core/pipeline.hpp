// The end-to-end MOSAIC pipeline (paper Fig. 1).
//
//   validity check + dedup  ->  per-kind merging  ->  segmentation +
//   Mean-Shift periodicity  ->  4-chunk temporality  ->  metadata rules
//   ->  category set
//
// Analyzer handles one trace; analyze_population drives the whole dataset,
// optionally in parallel, and keeps the pre-processing funnel and the
// runs-per-application weights needed by the reports.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/categories.hpp"
#include "core/columns.hpp"
#include "core/metadata.hpp"
#include "core/periodicity.hpp"
#include "core/preprocess.hpp"
#include "core/temporality.hpp"
#include "core/thresholds.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/trace.hpp"

namespace mosaic::obs {
struct KindProvenance;
struct TraceProvenance;
}  // namespace mosaic::obs

namespace mosaic::core {

/// Analysis of one op kind (read or write) of one trace.
struct KindAnalysis {
  TemporalityResult temporality;
  PeriodicityResult periodicity;
  std::size_t raw_ops = 0;     ///< ops extracted before merging
  std::size_t merged_ops = 0;  ///< ops after both merge passes
};

/// Reusable per-worker scratch for Analyzer: every intermediate buffer the
/// merge -> segment -> periodicity -> temporality -> metadata stages need.
/// After the first few traces the buffers reach their high-water capacity
/// and the steady-state analysis path stops allocating scratch entirely —
/// only the returned TraceResult still owns fresh memory (DESIGN.md §12).
/// One instance per thread; instances must not be shared concurrently.
struct AnalyzerWorkspace {
  std::vector<trace::IoOp> ops;       ///< extract + in-place merge buffer
  OpColumns columns;                  ///< SoA mirror, filled after merging;
                                      ///< every downstream axis reads it
  std::vector<Segment> segments;      ///< segmentation output
  std::vector<trace::MetaEvent> meta_timeline;  ///< metadata event stream
  PeriodicityWorkspace periodicity;   ///< detector scratch (both backends)
  util::Histogram meta_histogram{0.0, 1.0, 1};  ///< per-second request bins
};

/// Full categorization of one trace — what MOSAIC writes per trace to its
/// JSON output (§III-B4).
struct TraceResult {
  std::string app_key;
  std::uint64_t job_id = 0;
  double runtime = 0.0;
  std::uint32_t nprocs = 1;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  KindAnalysis read;
  KindAnalysis write;
  MetadataResult metadata;

  /// The flattened non-exclusive category set.
  CategorySet categories;
};

/// Per-trace categorization engine. Stateless w.r.t. traces; safe to share
/// across threads.
class Analyzer {
 public:
  explicit Analyzer(Thresholds thresholds = {}) : thresholds_(thresholds) {}

  /// Categorizes a single (valid) trace. When the global
  /// obs::ProvenanceJournal is enabled, a sampled subset of calls records
  /// its full decision path into the journal.
  [[nodiscard]] TraceResult analyze(const trace::Trace& trace) const;

  /// As above, but all scratch comes from `workspace` — the batch path keeps
  /// one workspace per pool worker so steady-state analysis does not
  /// allocate. Results are bit-identical to the convenience form.
  [[nodiscard]] TraceResult analyze(const trace::Trace& trace,
                                    AnalyzerWorkspace& workspace) const;

  /// As the first form, but always captures the decision path into
  /// `evidence` (journal sampling does not apply) — the entry point
  /// `mosaic explain` uses for live analysis.
  [[nodiscard]] TraceResult analyze(const trace::Trace& trace,
                                    obs::TraceProvenance* evidence) const;

  /// Runs the per-kind pipeline (merging, segmentation, periodicity,
  /// temporality) on an explicit operation stream instead of a trace's
  /// aggregated file records. This is the entry point for DXT-level data,
  /// where per-operation events are available and aggregation has not
  /// collapsed long-open files into single windows (paper SIV-A).
  /// Non-null `evidence` captures the per-kind decision evidence.
  /// `stage_detail` controls whether per-stage histograms/spans fire for
  /// this call; analyze() samples it on the hot path (see pipeline.cpp).
  [[nodiscard]] KindAnalysis analyze_ops(std::vector<trace::IoOp> ops,
                                         double runtime,
                                         obs::KindProvenance* evidence =
                                             nullptr,
                                         bool stage_detail = true) const;

  [[nodiscard]] const Thresholds& thresholds() const noexcept {
    return thresholds_;
  }

 private:
  [[nodiscard]] TraceResult analyze_impl(const trace::Trace& trace,
                                         obs::TraceProvenance* evidence,
                                         AnalyzerWorkspace& workspace) const;

  /// Shared per-kind pipeline body. Consumes workspace.ops (the extracted
  /// raw operation stream) in place.
  [[nodiscard]] KindAnalysis analyze_ops_impl(AnalyzerWorkspace& workspace,
                                              double runtime,
                                              obs::KindProvenance* evidence,
                                              bool stage_detail) const;

  [[nodiscard]] KindAnalysis analyze_kind(const trace::Trace& trace,
                                          trace::OpKind kind,
                                          obs::KindProvenance* evidence,
                                          bool stage_detail,
                                          AnalyzerWorkspace& workspace) const;

  Thresholds thresholds_;
};

/// Derives the flat category set from the per-axis results. Exposed for
/// tests; Analyzer::analyze calls it internally. Periodicity categories are
/// only assigned for kinds whose volume is significant, mirroring the
/// paper's exclusion of non-I/O-intensive traces.
/// Non-null `rule_trace` receives one human-readable line per rule decision,
/// in evaluation order — including the gates that *suppressed* a category.
[[nodiscard]] CategorySet flatten_categories(
    const KindAnalysis& read, const KindAnalysis& write,
    const MetadataResult& metadata, const Thresholds& thresholds = {},
    std::vector<std::string>* rule_trace = nullptr);

/// Result of analyzing a whole trace population.
struct BatchResult {
  PreprocessStats preprocess;
  /// Valid executions per application key; weights the all-runs statistics.
  std::map<std::string, std::size_t> runs_per_app;
  /// One result per retained (deduplicated) trace.
  std::vector<TraceResult> results;
};

/// Pre-processes and categorizes a population. When `pool` is non-null the
/// per-trace analyses run on it (the paper's Dispy role); results keep the
/// deterministic input order either way.
[[nodiscard]] BatchResult analyze_population(
    std::vector<trace::Trace> traces, const Thresholds& thresholds = {},
    parallel::ThreadPool* pool = nullptr);

/// Non-consuming variant for callers that keep the population alive
/// (repeated analyses over one corpus, benchmarks, cached serving): the
/// funnel runs by reference and only the dedup winners — typically a small
/// fraction of the input — are copied into analyzer-owned storage. Produces
/// byte-identical results to the consuming overload.
[[nodiscard]] BatchResult analyze_population(
    std::span<const trace::Trace> traces, const Thresholds& thresholds = {},
    parallel::ThreadPool* pool = nullptr);

/// Categorizes an already pre-processed population — the entry point for the
/// streaming ingest path, whose funnel (including load failures) is built
/// incrementally while files are read. Consumes `pre`.
[[nodiscard]] BatchResult analyze_preprocessed(
    PreprocessResult pre, const Thresholds& thresholds = {},
    parallel::ThreadPool* pool = nullptr);

}  // namespace mosaic::core
