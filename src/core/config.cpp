#include "core/config.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace mosaic::core {

using json::Object;
using json::Value;
using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

const char* periodicity_backend_name(PeriodicityBackend backend) noexcept {
  switch (backend) {
    case PeriodicityBackend::kMeanShift: return "mean_shift";
    case PeriodicityBackend::kFrequency: return "frequency";
    case PeriodicityBackend::kHybrid: return "hybrid";
  }
  return "unknown";
}

namespace {

/// One descriptor per threshold: JSON key plus accessors. Keeping the list
/// in one table means serializer, parser and the unknown-key check can never
/// drift apart.
struct Field {
  const char* key;
  double Thresholds::* double_member = nullptr;
  std::uint64_t Thresholds::* u64_member = nullptr;
  std::size_t Thresholds::* size_member = nullptr;
  bool require_positive = true;
};

constexpr Field kFields[] = {
    {"min_bytes", nullptr, &Thresholds::min_bytes, nullptr, false},
    {"neighbor_gap_runtime_fraction",
     &Thresholds::neighbor_gap_runtime_fraction, nullptr, nullptr, false},
    {"neighbor_gap_op_fraction", &Thresholds::neighbor_gap_op_fraction,
     nullptr, nullptr, false},
    {"temporality_chunks", nullptr, nullptr, &Thresholds::temporality_chunks},
    {"dominance_factor", &Thresholds::dominance_factor},
    {"steady_cv", &Thresholds::steady_cv},
    {"meanshift_bandwidth", &Thresholds::meanshift_bandwidth},
    {"min_group_size", nullptr, nullptr, &Thresholds::min_group_size},
    {"group_duration_cv", &Thresholds::group_duration_cv},
    {"group_volume_cv", &Thresholds::group_volume_cv},
    {"busy_ratio_split", &Thresholds::busy_ratio_split},
    {"period_second_max", &Thresholds::period_second_max},
    {"period_minute_max", &Thresholds::period_minute_max},
    {"period_hour_max", &Thresholds::period_hour_max},
    {"high_spike_requests", &Thresholds::high_spike_requests},
    {"spike_requests", &Thresholds::spike_requests},
    {"multiple_spike_count", nullptr, nullptr,
     &Thresholds::multiple_spike_count},
    {"high_density_mean_requests", &Thresholds::high_density_mean_requests},
    {"frequency_min_score", &Thresholds::frequency_min_score, nullptr, nullptr,
     false},
    {"frequency_max_bins", nullptr, nullptr, &Thresholds::frequency_max_bins},
    {"min_op_width", &Thresholds::min_op_width},
};

constexpr const char* kBackendKey = "periodicity_backend";

}  // namespace

json::Value thresholds_to_json(const Thresholds& thresholds) {
  Object out;
  for (const Field& field : kFields) {
    if (field.double_member != nullptr) {
      out.set(field.key, thresholds.*(field.double_member));
    } else if (field.u64_member != nullptr) {
      out.set(field.key, thresholds.*(field.u64_member));
    } else {
      out.set(field.key, thresholds.*(field.size_member));
    }
  }
  out.set(kBackendKey,
          periodicity_backend_name(thresholds.periodicity_backend));
  return out;
}

Expected<Thresholds> thresholds_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return Error{ErrorCode::kParseError, "thresholds: expected a JSON object"};
  }
  Thresholds thresholds;
  const Object& object = value.as_object();

  for (const auto& [key, member] : object.entries()) {
    if (key == kBackendKey) {
      if (!member.is_string()) {
        return Error{ErrorCode::kParseError,
                     "thresholds: periodicity_backend must be a string"};
      }
      const std::string& name = member.as_string();
      if (name == "mean_shift") {
        thresholds.periodicity_backend = PeriodicityBackend::kMeanShift;
      } else if (name == "frequency") {
        thresholds.periodicity_backend = PeriodicityBackend::kFrequency;
      } else if (name == "hybrid") {
        thresholds.periodicity_backend = PeriodicityBackend::kHybrid;
      } else {
        return Error{ErrorCode::kParseError,
                     "thresholds: unknown periodicity_backend '" + name + "'"};
      }
      continue;
    }

    const Field* field = nullptr;
    for (const Field& candidate : kFields) {
      if (key == candidate.key) {
        field = &candidate;
        break;
      }
    }
    if (field == nullptr) {
      return Error{ErrorCode::kParseError,
                   "thresholds: unknown key '" + key + "'"};
    }
    if (!member.is_number()) {
      return Error{ErrorCode::kParseError,
                   "thresholds: '" + key + "' must be a number"};
    }
    const double raw = member.as_number();
    if (!std::isfinite(raw) || raw < 0.0 ||
        (field->require_positive && raw <= 0.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   "thresholds: '" + key + "' out of range"};
    }
    if (field->double_member != nullptr) {
      thresholds.*(field->double_member) = raw;
    } else if (field->u64_member != nullptr) {
      thresholds.*(field->u64_member) = static_cast<std::uint64_t>(raw);
    } else {
      if (raw < 1.0) {
        return Error{ErrorCode::kInvalidArgument,
                     "thresholds: '" + key + "' must be >= 1"};
      }
      thresholds.*(field->size_member) = static_cast<std::size_t>(raw);
    }
  }

  // Cross-field sanity: magnitude buckets must be ordered.
  if (!(thresholds.period_second_max < thresholds.period_minute_max &&
        thresholds.period_minute_max < thresholds.period_hour_max)) {
    return Error{ErrorCode::kInvalidArgument,
                 "thresholds: period magnitude bounds must be increasing"};
  }
  if (thresholds.temporality_chunks < 2) {
    return Error{ErrorCode::kInvalidArgument,
                 "thresholds: temporality_chunks must be >= 2"};
  }
  return thresholds;
}

Status write_thresholds_file(const Thresholds& thresholds,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error{ErrorCode::kIoError, "cannot create " + path};
  const std::string text = json::serialize(thresholds_to_json(thresholds));
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Error{ErrorCode::kIoError, "write failure on " + path};
  return Status::success();
}

Expected<Thresholds> read_thresholds_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{ErrorCode::kIoError, "cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = json::parse(buffer.str());
  if (!parsed.has_value()) return std::move(parsed).error();
  return thresholds_from_json(*parsed);
}

}  // namespace mosaic::core
