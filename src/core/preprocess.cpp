#include "core/preprocess.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/log.hpp"

namespace mosaic::core {

namespace {

/// Key under which validity evictions appear in the ErrorCode-keyed
/// breakdown; semantic corruption is the same failure class as a bad
/// checksum, so both land on kCorruptTrace.
std::string corrupt_code_name() {
  return std::string(util::error_code_name(util::ErrorCode::kCorruptTrace));
}

// Funnel metrics mirror the PreprocessStats breakdown maps series-for-entry
// and are bumped at the exact same sites, so a --metrics dump always agrees
// with the run's printed funnel summary — including on --resume, where
// journal-replayed evictions land on the same labeled series as live ones.
void count_eviction_metric(std::string_view code_name) {
  obs::Registry::global()
      .counter(obs::labeled(obs::names::kFunnelEvictions, "code", code_name),
               "files evicted from the funnel, by error code")
      .add();
}

void count_corruption_metric(std::string_view kind) {
  obs::Registry::global()
      .counter(obs::labeled(obs::names::kFunnelCorruption, "kind", kind),
               "validity evictions, by corruption kind")
      .add();
}

void count_valid_metric() {
  static obs::Counter& counter = obs::Registry::global().counter(
      obs::names::kFunnelValid, "traces that passed the validity check");
  counter.add();
}

/// Un-counts a journal-replayed winner that could not be re-loaded: its run
/// is no longer a valid execution. Other (non-winner) runs of the app keep
/// their counts; aggregation only consults runs_per_app for retained apps,
/// so a leftover key without a retained trace is inert.
void demote_app(PreprocessResult& result, const std::string& key) {
  if (result.stats.valid > 0) --result.stats.valid;
  const auto it = result.runs_per_app.find(key);
  if (it != result.runs_per_app.end() && --it->second == 0) {
    result.runs_per_app.erase(it);
  }
}

/// Per-application dedup state: run count plus the incumbent winner. A
/// single app-keyed map carries both, so each valid trace costs one tree
/// lookup and duplicates compare against the cached byte total instead of
/// rescanning the incumbent's file list.
struct AppSlot {
  std::size_t runs = 0;
  std::size_t index = 0;       ///< index of the heaviest run in the input
  std::uint64_t bytes = 0;     ///< cached traces[index].total_bytes()
};

using AppMap = std::map<std::string, AppSlot, std::less<>>;

/// Step 1 of both preprocess() overloads: evict corrupted traces, keeping
/// the index of the heaviest valid trace per application key as we go.
/// Fills the eviction/validity stats on `result`; the caller materializes
/// `retained` from the returned winner indices (moving or copying).
AppMap select_heaviest_per_app(std::span<const trace::Trace> traces,
                               double validity_slack_seconds,
                               PreprocessResult& result) {
  result.stats.input_traces = traces.size();
  AppMap apps;
  std::string key;  // scratch app key, reused across iterations
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const trace::ValidityReport report =
        validate(traces[i], validity_slack_seconds);
    if (!report.valid()) {
      ++result.stats.corrupted;
      ++result.stats.corruption_breakdown[trace::corruption_kind_name(
          report.kind)];
      ++result.stats.eviction_breakdown[corrupt_code_name()];
      count_corruption_metric(trace::corruption_kind_name(report.kind));
      count_eviction_metric(corrupt_code_name());
      continue;
    }
    ++result.stats.valid;
    count_valid_metric();
    traces[i].app_key(key);
    auto slot = apps.lower_bound(key);
    const bool inserted = slot == apps.end() || slot->first != key;
    if (inserted) slot = apps.emplace_hint(slot, key, AppSlot{});
    AppSlot& app = slot->second;
    ++app.runs;
    const std::uint64_t bytes = traces[i].total_bytes();
    if (inserted || bytes > app.bytes) {
      app.index = i;
      app.bytes = bytes;
    }
  }
  return apps;
}

/// Step 2 bookkeeping shared by both overloads, run after `retained` has
/// been materialized. runs_per_app is rebuilt from the sorted app map, so
/// its contents match the per-trace increments of the old two-map scheme.
void finish_selection(const AppMap& apps, PreprocessResult& result) {
  result.retained_paths.assign(result.retained.size(), std::string());
  for (const auto& [app_key, app] : apps) {
    result.runs_per_app.emplace_hint(result.runs_per_app.end(), app_key,
                                     app.runs);
  }
  result.stats.unique_applications = apps.size();
  result.stats.retained = result.retained.size();
}

/// Winner indices in input order, so retained traces keep the input's
/// relative order regardless of app-key sort order.
std::vector<bool> winners_in_input_order(const AppMap& apps,
                                         std::size_t input_size) {
  std::vector<bool> keep(input_size, false);
  for (const auto& [app_key, app] : apps) keep[app.index] = true;
  return keep;
}

}  // namespace

PreprocessResult preprocess(std::vector<trace::Trace> traces,
                            double validity_slack_seconds) {
  PreprocessResult result;
  const AppMap apps =
      select_heaviest_per_app(traces, validity_slack_seconds, result);
  const std::vector<bool> keep = winners_in_input_order(apps, traces.size());
  result.retained.reserve(apps.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (keep[i]) result.retained.push_back(std::move(traces[i]));
  }
  finish_selection(apps, result);
  return result;
}

PreprocessResult preprocess(std::span<const trace::Trace> traces,
                            double validity_slack_seconds) {
  PreprocessResult result;
  const AppMap apps =
      select_heaviest_per_app(traces, validity_slack_seconds, result);
  const std::vector<bool> keep = winners_in_input_order(apps, traces.size());
  result.retained.reserve(apps.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (keep[i]) result.retained.push_back(traces[i]);
  }
  finish_selection(apps, result);
  return result;
}

bool StreamingPreprocessor::digest_wins(const ValidDigest& challenger,
                                        const ValidDigest& incumbent) noexcept {
  if (challenger.total_bytes != incumbent.total_bytes) {
    return challenger.total_bytes > incumbent.total_bytes;
  }
  // Ties break on stable identity so the winner is independent of the order
  // in which parallel workers deliver traces (and of journal replay).
  if (challenger.job_id != incumbent.job_id) {
    return challenger.job_id < incumbent.job_id;
  }
  return challenger.path < incumbent.path;
}

void StreamingPreprocessor::fold_valid(ValidDigest digest,
                                       std::optional<trace::Trace> trace) {
  ++stats_.valid;
  count_valid_metric();
  ++runs_per_app_[digest.app_key];
  const auto [slot, inserted] =
      heaviest_.try_emplace(digest.app_key, Slot{digest, std::nullopt});
  if (inserted || digest_wins(digest, slot->second.digest)) {
    slot->second.digest = std::move(digest);
    slot->second.trace = std::move(trace);
  }
}

trace::ValidityReport StreamingPreprocessor::add_trace(
    trace::Trace trace, std::string source_path) {
  ++stats_.input_traces;
  const trace::ValidityReport report = validate(trace, slack_);
  if (!report.valid()) {
    ++stats_.corrupted;
    ++stats_.corruption_breakdown[trace::corruption_kind_name(report.kind)];
    ++stats_.eviction_breakdown[corrupt_code_name()];
    count_corruption_metric(trace::corruption_kind_name(report.kind));
    count_eviction_metric(corrupt_code_name());
    return report;
  }
  ValidDigest digest;
  digest.path = std::move(source_path);
  digest.app_key = trace.app_key();
  digest.total_bytes = trace.total_bytes();
  digest.job_id = trace.meta.job_id;
  fold_valid(std::move(digest), std::move(trace));
  return report;
}

void StreamingPreprocessor::add_load_failure(util::ErrorCode code) {
  ++stats_.input_traces;
  ++stats_.load_failed;
  ++stats_.eviction_breakdown[std::string(util::error_code_name(code))];
  count_eviction_metric(util::error_code_name(code));
}

void StreamingPreprocessor::add_valid_digest(ValidDigest digest) {
  ++stats_.input_traces;
  fold_valid(std::move(digest), std::nullopt);
}

void StreamingPreprocessor::add_journaled_eviction(
    std::string_view code_name, std::string_view corruption_kind) {
  ++stats_.input_traces;
  ++stats_.eviction_breakdown[std::string(code_name)];
  count_eviction_metric(code_name);
  if (!corruption_kind.empty()) {
    ++stats_.corrupted;
    ++stats_.corruption_breakdown[std::string(corruption_kind)];
    count_corruption_metric(corruption_kind);
  } else {
    ++stats_.load_failed;
  }
}

PreprocessResult StreamingPreprocessor::finish(
    const std::function<util::Expected<trace::Trace>(const std::string&)>&
        reload) {
  PreprocessResult result;
  result.stats = std::move(stats_);
  result.runs_per_app = std::move(runs_per_app_);
  result.retained.reserve(heaviest_.size());

  // std::map iteration is already sorted by app key — the deterministic
  // output order regardless of how workers raced during folding.
  for (auto& [key, slot] : heaviest_) {
    if (!slot.trace.has_value()) {
      // Journal-replayed winner: the trace bytes were never loaded this run.
      if (!reload) {
        MOSAIC_LOG_WARN("preprocess: no reload hook for journaled winner %s; "
                        "dropping application %s",
                        slot.digest.path.c_str(), key.c_str());
        demote_app(result, key);
        continue;
      }
      auto loaded = reload(slot.digest.path);
      if (!loaded.has_value()) {
        MOSAIC_LOG_WARN("preprocess: journaled winner %s no longer loads "
                        "(%s); dropping application %s",
                        slot.digest.path.c_str(),
                        loaded.error().to_string().c_str(), key.c_str());
        ++result.stats.load_failed;
        ++result.stats.eviction_breakdown[std::string(
            util::error_code_name(loaded.error().code))];
        count_eviction_metric(util::error_code_name(loaded.error().code));
        demote_app(result, key);
        continue;
      }
      slot.trace = std::move(*loaded);
    }
    result.retained.push_back(std::move(*slot.trace));
    result.retained_paths.push_back(std::move(slot.digest.path));
  }
  heaviest_.clear();

  result.stats.unique_applications = result.retained.size();
  result.stats.retained = result.retained.size();
  return result;
}

}  // namespace mosaic::core
