#include "core/preprocess.hpp"

#include <algorithm>

namespace mosaic::core {

PreprocessResult preprocess(std::vector<trace::Trace> traces,
                            double validity_slack_seconds) {
  PreprocessResult result;
  result.stats.input_traces = traces.size();

  // Step 1: evict corrupted traces, keeping the index of the heaviest valid
  // trace per application key as we go.
  std::map<std::string, std::size_t> heaviest;  // app key -> index in traces
  std::vector<bool> keep(traces.size(), false);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const trace::ValidityReport report =
        validate(traces[i], validity_slack_seconds);
    if (!report.valid()) {
      ++result.stats.corrupted;
      ++result.stats.corruption_breakdown[trace::corruption_kind_name(
          report.kind)];
      continue;
    }
    ++result.stats.valid;
    const std::string key = traces[i].app_key();
    ++result.runs_per_app[key];
    const auto [slot, inserted] = heaviest.try_emplace(key, i);
    if (!inserted &&
        traces[i].total_bytes() > traces[slot->second].total_bytes()) {
      slot->second = i;
    }
  }

  // Step 2: retain the heaviest trace per application, in input order for
  // reproducibility.
  for (const auto& [key, index] : heaviest) keep[index] = true;
  result.retained.reserve(heaviest.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (keep[i]) result.retained.push_back(std::move(traces[i]));
  }

  result.stats.unique_applications = heaviest.size();
  result.stats.retained = result.retained.size();
  return result;
}

}  // namespace mosaic::core
