#include "core/categories.hpp"

#include <array>
#include <bit>

namespace mosaic::core {

namespace {

constexpr std::array<std::string_view, kCategoryCount> kNames = {
    "read_on_start",
    "read_on_end",
    "read_after_start",
    "read_before_end",
    "read_after_start_before_end",
    "read_steady",
    "read_insignificant",
    "read_unclassified",
    "write_on_start",
    "write_on_end",
    "write_after_start",
    "write_before_end",
    "write_after_start_before_end",
    "write_steady",
    "write_insignificant",
    "write_unclassified",
    "read_periodic",
    "read_periodic_second",
    "read_periodic_minute",
    "read_periodic_hour",
    "read_periodic_day_or_more",
    "read_periodic_low_busy_time",
    "read_periodic_high_busy_time",
    "write_periodic",
    "write_periodic_second",
    "write_periodic_minute",
    "write_periodic_hour",
    "write_periodic_day_or_more",
    "write_periodic_low_busy_time",
    "write_periodic_high_busy_time",
    "metadata_high_spike",
    "metadata_multiple_spikes",
    "metadata_high_density",
    "metadata_insignificant_load",
};

}  // namespace

std::string_view category_name(Category category) noexcept {
  const auto index = static_cast<std::size_t>(category);
  MOSAIC_ASSERT(index < kCategoryCount);
  return kNames[index];
}

std::optional<Category> category_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    if (kNames[i] == name) return static_cast<Category>(i);
  }
  return std::nullopt;
}

CategoryAxis category_axis(Category category) noexcept {
  const auto index = static_cast<std::size_t>(category);
  if (index < 16) return CategoryAxis::kTemporality;
  if (index < 30) return CategoryAxis::kPeriodicity;
  return CategoryAxis::kMetadata;
}

std::size_t CategorySet::size() const noexcept {
  return static_cast<std::size_t>(std::popcount(bits_));
}

std::vector<Category> CategorySet::to_vector() const {
  std::vector<Category> out;
  out.reserve(size());
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto category = static_cast<Category>(i);
    if (contains(category)) out.push_back(category);
  }
  return out;
}

std::vector<std::string> CategorySet::names() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (const Category category : to_vector()) {
    out.emplace_back(category_name(category));
  }
  return out;
}

const std::vector<Category>& all_categories() {
  static const std::vector<Category> categories = [] {
    std::vector<Category> out;
    out.reserve(kCategoryCount);
    for (std::size_t i = 0; i < kCategoryCount; ++i) {
      out.push_back(static_cast<Category>(i));
    }
    return out;
  }();
  return categories;
}

}  // namespace mosaic::core
