// CSV export of report artifacts, for plotting pipelines (gnuplot, pandas).
//
// The paper's figures are plots; the bench harness prints text tables, and
// this module emits the same data as RFC 4180-style CSV so the figures can
// be regenerated graphically.
#pragma once

#include <string>

#include "report/aggregate.hpp"
#include "report/jaccard.hpp"
#include "util/error.hpp"

namespace mosaic::report {

/// Escapes one CSV field (quotes when it contains comma/quote/newline).
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Category distribution as CSV: category,single_run_fraction,
/// all_runs_fraction,trace_count. Categories nobody carries are included
/// (zero rows) so downstream joins stay stable.
[[nodiscard]] std::string distribution_to_csv(
    const CategoryDistribution& distribution);

/// A category matrix (Jaccard or conditional) as CSV with a header row and
/// a label column.
[[nodiscard]] std::string matrix_to_csv(const CategoryMatrix& matrix);

/// Writes `text` to `path`.
[[nodiscard]] util::Status write_text_to_file(const std::string& text,
                                              const std::string& path);

}  // namespace mosaic::report
