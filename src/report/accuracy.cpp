#include "report/accuracy.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"

namespace mosaic::report {

namespace {

/// Bitmask of the category range [first, last] (inclusive).
std::uint64_t range_mask(core::Category first, core::Category last) {
  std::uint64_t mask = 0;
  for (auto c = static_cast<unsigned>(first); c <= static_cast<unsigned>(last);
       ++c) {
    mask |= 1ull << c;
  }
  return mask;
}

}  // namespace

AxisMasks axis_masks() noexcept {
  using core::Category;
  AxisMasks masks;
  masks.read_temporality =
      range_mask(Category::kReadOnStart, Category::kReadUnclassified);
  masks.write_temporality =
      range_mask(Category::kWriteOnStart, Category::kWriteUnclassified);
  masks.read_periodicity =
      range_mask(Category::kReadPeriodic, Category::kReadPeriodicHighBusyTime);
  masks.write_periodicity = range_mask(Category::kWritePeriodic,
                                       Category::kWritePeriodicHighBusyTime);
  masks.metadata = range_mask(Category::kMetadataHighSpike,
                              Category::kMetadataInsignificantLoad);
  return masks;
}

bool axis_matches(const core::CategorySet& predicted,
                  const core::CategorySet& truth,
                  std::uint64_t mask) noexcept {
  return (predicted.raw() & mask) == (truth.raw() & mask);
}

std::map<std::uint64_t, const sim::LabeledTrace*> truth_index(
    const std::vector<sim::LabeledTrace>& population) {
  std::map<std::uint64_t, const sim::LabeledTrace*> index;
  for (const sim::LabeledTrace& labeled : population) {
    if (labeled.corrupted) continue;  // truth void for corrupted traces
    index.emplace(labeled.trace.meta.job_id, &labeled);
  }
  return index;
}

AccuracyReport score_accuracy(
    const std::vector<core::TraceResult>& results,
    const std::map<std::uint64_t, const sim::LabeledTrace*>& truths) {
  MOSAIC_SPAN("report-accuracy");
  static obs::Histogram& stage_ms = obs::Registry::global().histogram(
      obs::names::kReportAccuracyMs, obs::latency_buckets_ms(),
      "accuracy scoring stage latency (ms)");
  const obs::ScopedTimerMs timer(stage_ms);
  const AxisMasks masks = axis_masks();

  AccuracyReport report;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto it = truths.find(results[i].job_id);
    if (it == truths.end()) continue;
    const core::CategorySet& predicted = results[i].categories;
    const core::CategorySet& truth = it->second->truth.categories;

    const bool rt = axis_matches(predicted, truth, masks.read_temporality);
    const bool wt = axis_matches(predicted, truth, masks.write_temporality);
    const bool rp = axis_matches(predicted, truth, masks.read_periodicity);
    const bool wp = axis_matches(predicted, truth, masks.write_periodicity);
    const bool md = axis_matches(predicted, truth, masks.metadata);

    const auto tally = [](AxisAccuracy& axis, bool ok) {
      ++axis.total;
      if (ok) ++axis.correct;
    };
    tally(report.read_temporality, rt);
    tally(report.write_temporality, wt);
    tally(report.read_periodicity, rp);
    tally(report.write_periodicity, wp);
    tally(report.metadata, md);

    const bool all_ok = rt && wt && rp && wp && md;
    tally(report.overall, all_ok);
    if (!all_ok) {
      report.misclassified.push_back(i);
      if (it->second->truth.ambiguous) ++report.errors_on_ambiguous;
    }
  }
  return report;
}

AccuracyReport score_sampled_accuracy(
    const std::vector<core::TraceResult>& results,
    const std::map<std::uint64_t, const sim::LabeledTrace*>& truths,
    std::size_t sample_size, std::uint64_t seed) {
  if (results.size() <= sample_size) {
    return score_accuracy(results, truths);
  }
  // Deterministic sample without replacement (partial Fisher-Yates over an
  // index vector).
  std::vector<std::size_t> indices(results.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  util::Rng rng(seed);
  std::vector<core::TraceResult> sample;
  sample.reserve(sample_size);
  for (std::size_t k = 0; k < sample_size; ++k) {
    const auto pick = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(k),
        static_cast<std::int64_t>(indices.size()) - 1));
    std::swap(indices[k], indices[pick]);
    sample.push_back(results[indices[k]]);
  }
  return score_accuracy(sample, truths);
}

}  // namespace mosaic::report
