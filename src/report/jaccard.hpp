// Cross-category correlation via the Jaccard index (paper §III-B4, Fig. 5).
//
// For two categories A and B over a population of categorized traces,
// J(A,B) = |traces with A and B| / |traces with A or B|. MOSAIC renders the
// matrix as a heatmap to surface recurrent associations — e.g. read_on_start
// with write_on_end (the read-compute-write motif) — that can inform
// I/O-aware scheduling. A conditional-probability matrix P(B|A) accompanies
// it because several of the paper's §IV-D bullets are conditionals.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace mosaic::report {

/// A labeled square matrix over the categories present in the population.
struct CategoryMatrix {
  std::vector<core::Category> categories;     ///< row/column labels
  std::vector<std::vector<double>> values;    ///< values[i][j]
};

/// Jaccard matrix over retained traces. When `runs_per_app` is non-null the
/// counts are weighted by executions (all-runs view). Categories absent from
/// every trace are dropped from the matrix.
[[nodiscard]] CategoryMatrix jaccard_matrix(
    const std::vector<core::TraceResult>& results,
    const std::map<std::string, std::size_t>* runs_per_app = nullptr);

/// Conditional matrix: values[i][j] = P(category j | category i).
[[nodiscard]] CategoryMatrix conditional_matrix(
    const std::vector<core::TraceResult>& results,
    const std::map<std::string, std::size_t>* runs_per_app = nullptr);

/// ASCII heatmap (shade characters per cell); values below `min_value`
/// render blank, mirroring the paper's ">1% only" filter.
[[nodiscard]] std::string render_heatmap(const CategoryMatrix& matrix,
                                         double min_value = 0.01);

/// The strongest off-diagonal pairs, formatted one per line, strongest
/// first: "read_on_start <-> write_on_end : 0.66".
[[nodiscard]] std::string top_pairs(const CategoryMatrix& matrix,
                                    std::size_t count = 12,
                                    bool symmetric = true);

}  // namespace mosaic::report
