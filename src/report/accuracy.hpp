// Accuracy scoring against generator ground truth (paper §IV-E).
//
// The paper estimates MOSAIC's accuracy by manually validating a random
// sample of 512 categorized traces (42 wrong -> 92%). Here the synthetic
// population carries machine-checkable ground truth, so the same protocol
// runs automatically: sample categorized traces, compare each axis, report
// the per-trace accuracy and where the errors live. The paper attributes
// most errors to temporality edge cases; the report separates axes so that
// attribution is visible.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/pipeline.hpp"
#include "sim/appspec.hpp"

namespace mosaic::report {

/// Category bitmasks delimiting the five comparison axes. Shared by the
/// live accuracy scorer and the provenance-join confusion report so both
/// agree on what "one axis" means.
struct AxisMasks {
  std::uint64_t read_temporality = 0;
  std::uint64_t write_temporality = 0;
  std::uint64_t read_periodicity = 0;
  std::uint64_t write_periodicity = 0;
  std::uint64_t metadata = 0;
};

[[nodiscard]] AxisMasks axis_masks() noexcept;

/// Compares predicted and truth sets restricted to one axis mask.
[[nodiscard]] bool axis_matches(const core::CategorySet& predicted,
                                const core::CategorySet& truth,
                                std::uint64_t mask) noexcept;

/// Correct/total counter for one comparison axis.
struct AxisAccuracy {
  std::size_t correct = 0;
  std::size_t total = 0;

  [[nodiscard]] double ratio() const noexcept {
    return total == 0 ? 1.0 : static_cast<double>(correct) /
                                  static_cast<double>(total);
  }
};

/// Full accuracy report.
struct AccuracyReport {
  AxisAccuracy read_temporality;
  AxisAccuracy write_temporality;
  AxisAccuracy read_periodicity;   ///< periodic flag + magnitude labels
  AxisAccuracy write_periodicity;
  AxisAccuracy metadata;           ///< all four metadata flags
  AxisAccuracy overall;            ///< per-trace: every axis correct

  std::size_t errors_on_ambiguous = 0;  ///< wrong traces flagged ambiguous
  std::vector<std::size_t> misclassified;  ///< indices into the scored sample
};

/// Ground-truth lookup keyed by job id, built from a generated population.
/// Corrupted traces (whose truth is void) are excluded.
[[nodiscard]] std::map<std::uint64_t, const sim::LabeledTrace*>
truth_index(const std::vector<sim::LabeledTrace>& population);

/// Scores `results` against the truth index. Results without a truth entry
/// are skipped (they should not exist in a well-formed experiment).
[[nodiscard]] AccuracyReport score_accuracy(
    const std::vector<core::TraceResult>& results,
    const std::map<std::uint64_t, const sim::LabeledTrace*>& truths);

/// The paper's protocol: score a random sample of `sample_size` results
/// (512 in §IV-E), drawn deterministically from `seed`.
[[nodiscard]] AccuracyReport score_sampled_accuracy(
    const std::vector<core::TraceResult>& results,
    const std::map<std::uint64_t, const sim::LabeledTrace*>& truths,
    std::size_t sample_size, std::uint64_t seed);

}  // namespace mosaic::report
