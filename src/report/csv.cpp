#include "report/csv.hpp"

#include <cstdio>

#include "util/fs.hpp"

namespace mosaic::report {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string distribution_to_csv(const CategoryDistribution& distribution) {
  std::string out =
      "category,single_run_fraction,all_runs_fraction,trace_count\n";
  char line[160];
  for (const core::Category category : core::all_categories()) {
    std::snprintf(line, sizeof line, "%s,%.6f,%.6f,%zu\n",
                  std::string(core::category_name(category)).c_str(),
                  distribution.single_fraction(category),
                  distribution.weighted_fraction(category),
                  distribution.single[static_cast<std::size_t>(category)]);
    out += line;
  }
  return out;
}

std::string matrix_to_csv(const CategoryMatrix& matrix) {
  std::string out = "category";
  for (const core::Category category : matrix.categories) {
    out += ',';
    out += csv_escape(core::category_name(category));
  }
  out += '\n';
  char cell[32];
  for (std::size_t i = 0; i < matrix.categories.size(); ++i) {
    out += csv_escape(core::category_name(matrix.categories[i]));
    for (std::size_t j = 0; j < matrix.categories.size(); ++j) {
      std::snprintf(cell, sizeof cell, ",%.6f", matrix.values[i][j]);
      out += cell;
    }
    out += '\n';
  }
  return out;
}

util::Status write_text_to_file(const std::string& text,
                                const std::string& path) {
  return util::write_file_atomic(path, text);
}

}  // namespace mosaic::report
