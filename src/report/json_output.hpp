// JSON output of categorization results (paper §III-B4, step (4)).
//
// MOSAIC persists per-trace category assignments plus the calculated values
// behind them (detected periods, chunk volumes, metadata peaks), and a
// population-level summary with both single-run and all-runs statistics.
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "json/json.hpp"
#include "report/aggregate.hpp"
#include "util/error.hpp"

namespace mosaic::report {

/// One trace's categorization as a JSON object.
[[nodiscard]] json::Value trace_result_to_json(const core::TraceResult& result);

/// Inverse of trace_result_to_json — the deserialization the sharded batch
/// path uses to reload per-trace results from partial artifacts without
/// re-analyzing. Round-trips exactly: for any result r,
/// trace_result_from_json(trace_result_to_json(r)) reproduces r (doubles
/// are serialized with 17 significant digits). kParseError on schema
/// mismatch.
[[nodiscard]] util::Expected<core::TraceResult> trace_result_from_json(
    const json::Value& value);

/// Population summary: pre-processing funnel, category distribution
/// (single/all-runs) and run-weight bookkeeping. Per-trace entries are
/// included when `include_traces` (large at year scale).
[[nodiscard]] json::Value batch_to_json(const core::BatchResult& batch,
                                        bool include_traces = false);

/// Serializes `batch_to_json` to a file.
[[nodiscard]] util::Status write_batch_json(const core::BatchResult& batch,
                                            const std::string& path,
                                            bool include_traces = false);

}  // namespace mosaic::report
