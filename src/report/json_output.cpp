#include "report/json_output.hpp"

#include "util/fs.hpp"

namespace mosaic::report {

using json::Array;
using json::Object;
using json::Value;

namespace {

Value kind_analysis_to_json(const core::KindAnalysis& analysis) {
  Object out;
  out.set("temporality", core::temporality_name(analysis.temporality.label));
  out.set("total_bytes", analysis.temporality.total_bytes);
  Array chunks;
  for (const double volume : analysis.temporality.chunk_bytes) {
    chunks.emplace_back(volume);
  }
  out.set("chunk_bytes", std::move(chunks));
  out.set("raw_ops", analysis.raw_ops);
  out.set("merged_ops", analysis.merged_ops);

  Object periodicity;
  periodicity.set("periodic", analysis.periodicity.periodic);
  Array groups;
  for (const core::PeriodicGroup& group : analysis.periodicity.groups) {
    Object g;
    g.set("period_seconds", group.period_seconds);
    g.set("magnitude", core::period_magnitude_name(group.magnitude));
    g.set("mean_bytes", group.mean_bytes);
    g.set("busy_ratio", group.busy_ratio);
    g.set("occurrences", group.occurrences);
    groups.emplace_back(std::move(g));
  }
  periodicity.set("groups", std::move(groups));
  out.set("periodicity", std::move(periodicity));
  return out;
}

Value metadata_to_json(const core::MetadataResult& metadata) {
  Object out;
  out.set("insignificant", metadata.insignificant);
  out.set("high_spike", metadata.high_spike);
  out.set("multiple_spikes", metadata.multiple_spikes);
  out.set("high_density", metadata.high_density);
  out.set("total_requests", metadata.total_requests);
  out.set("max_requests_per_second", metadata.max_requests_per_second);
  out.set("spike_seconds", metadata.spike_seconds);
  out.set("mean_requests_per_second", metadata.mean_requests_per_second);
  return out;
}

}  // namespace

Value trace_result_to_json(const core::TraceResult& result) {
  Object out;
  out.set("app", result.app_key);
  out.set("job_id", result.job_id);
  out.set("runtime_seconds", result.runtime);
  out.set("nprocs", static_cast<std::uint64_t>(result.nprocs));
  out.set("bytes_read", result.bytes_read);
  out.set("bytes_written", result.bytes_written);

  Array categories;
  for (const std::string& name : result.categories.names()) {
    categories.emplace_back(name);
  }
  out.set("categories", std::move(categories));

  out.set("read", kind_analysis_to_json(result.read));
  out.set("write", kind_analysis_to_json(result.write));
  out.set("metadata", metadata_to_json(result.metadata));
  return out;
}

Value batch_to_json(const core::BatchResult& batch, bool include_traces) {
  Object out;

  Object funnel;
  funnel.set("input_traces", batch.preprocess.input_traces);
  funnel.set("load_failed", batch.preprocess.load_failed);
  funnel.set("corrupted", batch.preprocess.corrupted);
  funnel.set("valid", batch.preprocess.valid);
  funnel.set("unique_applications", batch.preprocess.unique_applications);
  funnel.set("retained", batch.preprocess.retained);
  Object breakdown;
  for (const auto& [kind, count] : batch.preprocess.corruption_breakdown) {
    breakdown.set(kind, count);
  }
  funnel.set("corruption_breakdown", std::move(breakdown));
  Object evictions;
  for (const auto& [code, count] : batch.preprocess.eviction_breakdown) {
    evictions.set(code, count);
  }
  funnel.set("eviction_breakdown", std::move(evictions));
  out.set("preprocessing", std::move(funnel));

  const CategoryDistribution distribution = aggregate_categories(batch);
  Object categories;
  for (const core::Category category : core::all_categories()) {
    Object entry;
    entry.set("single_run_fraction", distribution.single_fraction(category));
    entry.set("all_runs_fraction", distribution.weighted_fraction(category));
    entry.set("trace_count",
              distribution.single[static_cast<std::size_t>(category)]);
    categories.set(std::string(core::category_name(category)),
                   std::move(entry));
  }
  out.set("categories", std::move(categories));
  out.set("trace_count", distribution.trace_count);
  out.set("run_count", distribution.run_count);

  if (include_traces) {
    Array traces;
    traces.reserve(batch.results.size());
    for (const core::TraceResult& result : batch.results) {
      traces.push_back(trace_result_to_json(result));
    }
    out.set("traces", std::move(traces));
  }
  return out;
}

util::Status write_batch_json(const core::BatchResult& batch,
                              const std::string& path, bool include_traces) {
  // Atomic so a batch killed mid-write leaves the previous summary intact
  // rather than a torn JSON document.
  return util::write_file_atomic(
      path, json::serialize(batch_to_json(batch, include_traces)));
}

}  // namespace mosaic::report
