#include "report/json_output.hpp"

#include "util/fs.hpp"

namespace mosaic::report {

using json::Array;
using json::Object;
using json::Value;

namespace {

Value kind_analysis_to_json(const core::KindAnalysis& analysis) {
  Object out;
  out.set("temporality", core::temporality_name(analysis.temporality.label));
  out.set("total_bytes", analysis.temporality.total_bytes);
  Array chunks;
  for (const double volume : analysis.temporality.chunk_bytes) {
    chunks.emplace_back(volume);
  }
  out.set("chunk_bytes", std::move(chunks));
  out.set("raw_ops", analysis.raw_ops);
  out.set("merged_ops", analysis.merged_ops);

  Object periodicity;
  periodicity.set("periodic", analysis.periodicity.periodic);
  Array groups;
  for (const core::PeriodicGroup& group : analysis.periodicity.groups) {
    Object g;
    g.set("period_seconds", group.period_seconds);
    g.set("magnitude", core::period_magnitude_name(group.magnitude));
    g.set("mean_bytes", group.mean_bytes);
    g.set("busy_ratio", group.busy_ratio);
    g.set("occurrences", group.occurrences);
    groups.emplace_back(std::move(g));
  }
  periodicity.set("groups", std::move(groups));
  out.set("periodicity", std::move(periodicity));
  return out;
}

Value metadata_to_json(const core::MetadataResult& metadata) {
  Object out;
  out.set("insignificant", metadata.insignificant);
  out.set("high_spike", metadata.high_spike);
  out.set("multiple_spikes", metadata.multiple_spikes);
  out.set("high_density", metadata.high_density);
  out.set("total_requests", metadata.total_requests);
  out.set("max_requests_per_second", metadata.max_requests_per_second);
  out.set("spike_seconds", metadata.spike_seconds);
  out.set("mean_requests_per_second", metadata.mean_requests_per_second);
  return out;
}

using util::Error;
using util::ErrorCode;
using util::Expected;

Error schema_error(std::string what) {
  return Error{ErrorCode::kParseError,
               "trace result JSON: " + std::move(what)};
}

Expected<double> get_number(const Object& obj, std::string_view key) {
  const Value* value = obj.find(key);
  if (value == nullptr || !value->is_number()) {
    return schema_error("missing number '" + std::string(key) + "'");
  }
  return value->as_number();
}

Expected<std::string> get_string(const Object& obj, std::string_view key) {
  const Value* value = obj.find(key);
  if (value == nullptr || !value->is_string()) {
    return schema_error("missing string '" + std::string(key) + "'");
  }
  return value->as_string();
}

Expected<bool> get_bool(const Object& obj, std::string_view key) {
  const Value* value = obj.find(key);
  if (value == nullptr || !value->is_bool()) {
    return schema_error("missing bool '" + std::string(key) + "'");
  }
  return value->as_bool();
}

Expected<const Object*> get_object(const Object& obj, std::string_view key) {
  const Value* value = obj.find(key);
  if (value == nullptr || !value->is_object()) {
    return schema_error("missing object '" + std::string(key) + "'");
  }
  return &value->as_object();
}

Expected<const Array*> get_array(const Object& obj, std::string_view key) {
  const Value* value = obj.find(key);
  if (value == nullptr || !value->is_array()) {
    return schema_error("missing array '" + std::string(key) + "'");
  }
  return &value->as_array();
}

Expected<core::Temporality> temporality_from_name(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(core::Temporality::kUnclassified);
       ++i) {
    const auto label = static_cast<core::Temporality>(i);
    if (name == core::temporality_name(label)) return label;
  }
  return schema_error("unknown temporality '" + std::string(name) + "'");
}

Expected<core::PeriodMagnitude> magnitude_from_name(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(core::PeriodMagnitude::kDayOrMore);
       ++i) {
    const auto magnitude = static_cast<core::PeriodMagnitude>(i);
    if (name == core::period_magnitude_name(magnitude)) return magnitude;
  }
  return schema_error("unknown period magnitude '" + std::string(name) + "'");
}

Expected<core::KindAnalysis> kind_analysis_from_json(const Object& obj) {
  core::KindAnalysis analysis;
  auto temporality = get_string(obj, "temporality");
  if (!temporality) return std::move(temporality).error();
  auto label = temporality_from_name(*temporality);
  if (!label) return std::move(label).error();
  analysis.temporality.label = *label;
  auto total = get_number(obj, "total_bytes");
  if (!total) return std::move(total).error();
  analysis.temporality.total_bytes = *total;
  auto chunks = get_array(obj, "chunk_bytes");
  if (!chunks) return std::move(chunks).error();
  for (const Value& chunk : **chunks) {
    if (!chunk.is_number()) return schema_error("non-numeric chunk volume");
    analysis.temporality.chunk_bytes.push_back(chunk.as_number());
  }
  auto raw_ops = get_number(obj, "raw_ops");
  if (!raw_ops) return std::move(raw_ops).error();
  analysis.raw_ops = static_cast<std::size_t>(*raw_ops);
  auto merged_ops = get_number(obj, "merged_ops");
  if (!merged_ops) return std::move(merged_ops).error();
  analysis.merged_ops = static_cast<std::size_t>(*merged_ops);

  auto periodicity = get_object(obj, "periodicity");
  if (!periodicity) return std::move(periodicity).error();
  auto periodic = get_bool(**periodicity, "periodic");
  if (!periodic) return std::move(periodic).error();
  analysis.periodicity.periodic = *periodic;
  auto groups = get_array(**periodicity, "groups");
  if (!groups) return std::move(groups).error();
  for (const Value& member : **groups) {
    if (!member.is_object()) return schema_error("non-object periodic group");
    const Object& g = member.as_object();
    core::PeriodicGroup group;
    auto period = get_number(g, "period_seconds");
    if (!period) return std::move(period).error();
    group.period_seconds = *period;
    auto magnitude_name = get_string(g, "magnitude");
    if (!magnitude_name) return std::move(magnitude_name).error();
    auto magnitude = magnitude_from_name(*magnitude_name);
    if (!magnitude) return std::move(magnitude).error();
    group.magnitude = *magnitude;
    auto mean_bytes = get_number(g, "mean_bytes");
    if (!mean_bytes) return std::move(mean_bytes).error();
    group.mean_bytes = *mean_bytes;
    auto busy_ratio = get_number(g, "busy_ratio");
    if (!busy_ratio) return std::move(busy_ratio).error();
    group.busy_ratio = *busy_ratio;
    auto occurrences = get_number(g, "occurrences");
    if (!occurrences) return std::move(occurrences).error();
    group.occurrences = static_cast<std::size_t>(*occurrences);
    analysis.periodicity.groups.push_back(group);
  }
  return analysis;
}

Expected<core::MetadataResult> metadata_from_json(const Object& obj) {
  core::MetadataResult metadata;
  auto insignificant = get_bool(obj, "insignificant");
  if (!insignificant) return std::move(insignificant).error();
  metadata.insignificant = *insignificant;
  auto high_spike = get_bool(obj, "high_spike");
  if (!high_spike) return std::move(high_spike).error();
  metadata.high_spike = *high_spike;
  auto multiple_spikes = get_bool(obj, "multiple_spikes");
  if (!multiple_spikes) return std::move(multiple_spikes).error();
  metadata.multiple_spikes = *multiple_spikes;
  auto high_density = get_bool(obj, "high_density");
  if (!high_density) return std::move(high_density).error();
  metadata.high_density = *high_density;
  auto total_requests = get_number(obj, "total_requests");
  if (!total_requests) return std::move(total_requests).error();
  metadata.total_requests = static_cast<std::uint64_t>(*total_requests);
  auto max_rps = get_number(obj, "max_requests_per_second");
  if (!max_rps) return std::move(max_rps).error();
  metadata.max_requests_per_second = *max_rps;
  auto spike_seconds = get_number(obj, "spike_seconds");
  if (!spike_seconds) return std::move(spike_seconds).error();
  metadata.spike_seconds = static_cast<std::size_t>(*spike_seconds);
  auto mean_rps = get_number(obj, "mean_requests_per_second");
  if (!mean_rps) return std::move(mean_rps).error();
  metadata.mean_requests_per_second = *mean_rps;
  return metadata;
}

}  // namespace

Value trace_result_to_json(const core::TraceResult& result) {
  Object out;
  out.set("app", result.app_key);
  out.set("job_id", result.job_id);
  out.set("runtime_seconds", result.runtime);
  out.set("nprocs", static_cast<std::uint64_t>(result.nprocs));
  out.set("bytes_read", result.bytes_read);
  out.set("bytes_written", result.bytes_written);

  Array categories;
  for (const std::string& name : result.categories.names()) {
    categories.emplace_back(name);
  }
  out.set("categories", std::move(categories));

  out.set("read", kind_analysis_to_json(result.read));
  out.set("write", kind_analysis_to_json(result.write));
  out.set("metadata", metadata_to_json(result.metadata));
  return out;
}

Expected<core::TraceResult> trace_result_from_json(const json::Value& value) {
  if (!value.is_object()) return schema_error("not an object");
  const Object& obj = value.as_object();
  core::TraceResult result;

  auto app = get_string(obj, "app");
  if (!app) return std::move(app).error();
  result.app_key = std::move(*app);
  auto job_id = get_number(obj, "job_id");
  if (!job_id) return std::move(job_id).error();
  result.job_id = static_cast<std::uint64_t>(*job_id);
  auto runtime = get_number(obj, "runtime_seconds");
  if (!runtime) return std::move(runtime).error();
  result.runtime = *runtime;
  auto nprocs = get_number(obj, "nprocs");
  if (!nprocs) return std::move(nprocs).error();
  result.nprocs = static_cast<std::uint32_t>(*nprocs);
  auto bytes_read = get_number(obj, "bytes_read");
  if (!bytes_read) return std::move(bytes_read).error();
  result.bytes_read = static_cast<std::uint64_t>(*bytes_read);
  auto bytes_written = get_number(obj, "bytes_written");
  if (!bytes_written) return std::move(bytes_written).error();
  result.bytes_written = static_cast<std::uint64_t>(*bytes_written);

  auto categories = get_array(obj, "categories");
  if (!categories) return std::move(categories).error();
  for (const Value& name : **categories) {
    if (!name.is_string()) return schema_error("non-string category name");
    const auto category = core::category_from_name(name.as_string());
    if (!category.has_value()) {
      return schema_error("unknown category '" + name.as_string() + "'");
    }
    result.categories.insert(*category);
  }

  auto read = get_object(obj, "read");
  if (!read) return std::move(read).error();
  auto read_analysis = kind_analysis_from_json(**read);
  if (!read_analysis) return std::move(read_analysis).error();
  result.read = std::move(*read_analysis);
  auto write = get_object(obj, "write");
  if (!write) return std::move(write).error();
  auto write_analysis = kind_analysis_from_json(**write);
  if (!write_analysis) return std::move(write_analysis).error();
  result.write = std::move(*write_analysis);
  auto metadata = get_object(obj, "metadata");
  if (!metadata) return std::move(metadata).error();
  auto metadata_result = metadata_from_json(**metadata);
  if (!metadata_result) return std::move(metadata_result).error();
  result.metadata = *metadata_result;
  return result;
}

Value batch_to_json(const core::BatchResult& batch, bool include_traces) {
  Object out;

  Object funnel;
  funnel.set("input_traces", batch.preprocess.input_traces);
  funnel.set("load_failed", batch.preprocess.load_failed);
  funnel.set("corrupted", batch.preprocess.corrupted);
  funnel.set("valid", batch.preprocess.valid);
  funnel.set("unique_applications", batch.preprocess.unique_applications);
  funnel.set("retained", batch.preprocess.retained);
  Object breakdown;
  for (const auto& [kind, count] : batch.preprocess.corruption_breakdown) {
    breakdown.set(kind, count);
  }
  funnel.set("corruption_breakdown", std::move(breakdown));
  Object evictions;
  for (const auto& [code, count] : batch.preprocess.eviction_breakdown) {
    evictions.set(code, count);
  }
  funnel.set("eviction_breakdown", std::move(evictions));
  out.set("preprocessing", std::move(funnel));

  const CategoryDistribution distribution = aggregate_categories(batch);
  Object categories;
  for (const core::Category category : core::all_categories()) {
    Object entry;
    entry.set("single_run_fraction", distribution.single_fraction(category));
    entry.set("all_runs_fraction", distribution.weighted_fraction(category));
    entry.set("trace_count",
              distribution.single[static_cast<std::size_t>(category)]);
    categories.set(std::string(core::category_name(category)),
                   std::move(entry));
  }
  out.set("categories", std::move(categories));
  out.set("trace_count", distribution.trace_count);
  out.set("run_count", distribution.run_count);

  if (include_traces) {
    Array traces;
    traces.reserve(batch.results.size());
    for (const core::TraceResult& result : batch.results) {
      traces.push_back(trace_result_to_json(result));
    }
    out.set("traces", std::move(traces));
  }
  return out;
}

util::Status write_batch_json(const core::BatchResult& batch,
                              const std::string& path, bool include_traces) {
  // Atomic so a batch killed mid-write leaves the previous summary intact
  // rather than a torn JSON document.
  return util::write_file_atomic(
      path, json::serialize(batch_to_json(batch, include_traces)));
}

}  // namespace mosaic::report
