// Mergeable partial results for sharded out-of-core batch analysis.
//
// A shard run (`mosaic batch --shard K/N`, or one iteration of
// `--shards N`) analyzes the slice of the corpus its stable hash owns
// (ingest/shard.hpp) and writes everything report generation needs as one
// self-describing JSON artifact: its funnel counters, ingest statistics,
// per-application run weights, per-trace categorization results with the
// dedup digest (total bytes + source path) that lets the merge replay the
// cross-shard dedup decision, and the shard-local artifact paths (journal,
// metrics, provenance) for provenance joins and triage.
//
// merge_partials() recombines N such artifacts into a core::BatchResult that
// is byte-identical — through batch_to_json and the markdown report — to a
// single-shot run over the same inputs (golden-enforced in
// tests/report/test_partial.cpp and tests/cli/cli_fault_injection.sh):
//   - funnel counters and breakdown maps are summed;
//   - runs-per-application weights are summed per key;
//   - the retained trace per application is re-chosen across shard winners
//     with the same comparator StreamingPreprocessor uses (heavier total
//     bytes, then smaller job id, then smaller path), so the global winner
//     is found even when an application's executions span shards;
//   - results come out sorted by application key, as the single-shot
//     preprocessor emits them.
// This bounds batch memory by shard size, not corpus size, and makes
// N-process scale-out a deterministic reduce.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ingest/ingest.hpp"
#include "json/json.hpp"
#include "util/error.hpp"

namespace mosaic::report {

/// Schema tag written into (and required from) every partial artifact.
inline constexpr std::string_view kPartialSchema = "mosaic-partial-v1";

/// One retained trace plus the digest fields the cross-shard dedup needs.
struct ShardTraceResult {
  core::TraceResult result;
  std::string source_path;        ///< dedup tiebreak (and triage pointer)
  std::uint64_t total_bytes = 0;  ///< dedup primary key (trace total bytes)
};

/// Everything one shard run contributes to the reduce.
struct PartialArtifact {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  ingest::IngestStats ingest;  ///< aborted is never serialized (aborted
                               ///< shard runs do not write partials)
  core::PreprocessStats stats;
  std::map<std::string, std::size_t> runs_per_app;
  /// Shard-local artifact paths ("" when the run did not write one).
  std::string journal_path;
  std::string metrics_path;
  std::string provenance_path;
  std::vector<ShardTraceResult> traces;
};

/// Serializes/deserializes the artifact (stable key order; exact numeric
/// round-trip).
[[nodiscard]] json::Value partial_to_json(const PartialArtifact& partial);
[[nodiscard]] util::Expected<PartialArtifact> partial_from_json(
    const json::Value& value);

/// Atomic write of `partial_to_json` to `path`.
[[nodiscard]] util::Status write_partial(const PartialArtifact& partial,
                                         const std::string& path);

/// Reads and validates one artifact file.
[[nodiscard]] util::Expected<PartialArtifact> read_partial(
    const std::string& path);

/// Expands each argument (a partial file, or a directory containing
/// `results.shard-K.json` files) into a sorted list of artifact paths.
[[nodiscard]] util::Expected<std::vector<std::string>> expand_partial_paths(
    const std::vector<std::string>& args);

/// The reduce output: the reassembled batch plus cross-shard bookkeeping.
struct MergedPartials {
  core::BatchResult batch;
  ingest::IngestStats ingest;  ///< counters summed over shards
  /// Non-empty per-shard provenance paths, in shard-index order — the
  /// inputs `report --from-partials --confusion` joins against truth.
  std::vector<std::string> provenance_paths;
};

/// Merges a complete partition. Validates that all partials agree on the
/// shard count, that indices are distinct, and that all N shards are
/// present — a missing shard would silently under-count the corpus.
[[nodiscard]] util::Expected<MergedPartials> merge_partials(
    std::vector<PartialArtifact> partials);

}  // namespace mosaic::report
