#include "report/partial.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ingest/shard.hpp"
#include "report/json_output.hpp"
#include "util/fs.hpp"

namespace mosaic::report {

using json::Array;
using json::Object;
using json::Value;
using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

namespace {

Error schema_error(std::string what) {
  return Error{ErrorCode::kParseError, "partial artifact: " + std::move(what)};
}

Expected<double> get_number(const Object& obj, std::string_view key) {
  const Value* value = obj.find(key);
  if (value == nullptr || !value->is_number()) {
    return schema_error("missing number '" + std::string(key) + "'");
  }
  return value->as_number();
}

Expected<std::string> get_string(const Object& obj, std::string_view key) {
  const Value* value = obj.find(key);
  if (value == nullptr || !value->is_string()) {
    return schema_error("missing string '" + std::string(key) + "'");
  }
  return value->as_string();
}

Expected<const Object*> get_object(const Object& obj, std::string_view key) {
  const Value* value = obj.find(key);
  if (value == nullptr || !value->is_object()) {
    return schema_error("missing object '" + std::string(key) + "'");
  }
  return &value->as_object();
}

Value counts_to_json(const std::map<std::string, std::size_t>& counts) {
  Object out;
  for (const auto& [key, count] : counts) out.set(key, count);
  return out;
}

Expected<std::map<std::string, std::size_t>> counts_from_json(
    const Object& obj, std::string_view key) {
  auto member = get_object(obj, key);
  if (!member) return std::move(member).error();
  std::map<std::string, std::size_t> counts;
  for (const auto& [name, value] : (*member)->entries()) {
    if (!value.is_number()) {
      return schema_error("non-numeric count under '" + std::string(key) +
                          "'");
    }
    counts[name] = static_cast<std::size_t>(value.as_number());
  }
  return counts;
}

/// The cross-shard dedup comparator — deliberately identical to
/// core::StreamingPreprocessor's retention rule (heavier total bytes, ties
/// on smaller job id, then smaller source path) so the merged winner is the
/// trace the single-shot run would have retained.
bool shard_result_wins(const ShardTraceResult& challenger,
                       const ShardTraceResult& incumbent) noexcept {
  if (challenger.total_bytes != incumbent.total_bytes) {
    return challenger.total_bytes > incumbent.total_bytes;
  }
  if (challenger.result.job_id != incumbent.result.job_id) {
    return challenger.result.job_id < incumbent.result.job_id;
  }
  return challenger.source_path < incumbent.source_path;
}

}  // namespace

Value partial_to_json(const PartialArtifact& partial) {
  Object out;
  out.set("schema", kPartialSchema);

  Object shard;
  shard.set("index", partial.shard_index);
  shard.set("count", partial.shard_count);
  out.set("shard", std::move(shard));

  Object ingest;
  ingest.set("files_scanned", partial.ingest.files_scanned);
  ingest.set("loaded", partial.ingest.loaded);
  ingest.set("failed", partial.ingest.failed);
  ingest.set("retry_attempts", partial.ingest.retry_attempts);
  ingest.set("recovered", partial.ingest.recovered);
  ingest.set("quarantined", partial.ingest.quarantined);
  ingest.set("journal_replayed", partial.ingest.journal_replayed);
  ingest.set("journal_dropped", partial.ingest.journal_dropped);
  out.set("ingest", std::move(ingest));

  Object funnel;
  funnel.set("input_traces", partial.stats.input_traces);
  funnel.set("load_failed", partial.stats.load_failed);
  funnel.set("corrupted", partial.stats.corrupted);
  funnel.set("valid", partial.stats.valid);
  funnel.set("unique_applications", partial.stats.unique_applications);
  funnel.set("retained", partial.stats.retained);
  funnel.set("corruption_breakdown",
             counts_to_json(partial.stats.corruption_breakdown));
  funnel.set("eviction_breakdown",
             counts_to_json(partial.stats.eviction_breakdown));
  out.set("preprocessing", std::move(funnel));

  out.set("runs_per_app", counts_to_json(partial.runs_per_app));

  Object artifacts;
  artifacts.set("journal", partial.journal_path);
  artifacts.set("metrics", partial.metrics_path);
  artifacts.set("provenance", partial.provenance_path);
  out.set("artifacts", std::move(artifacts));

  Array traces;
  traces.reserve(partial.traces.size());
  for (const ShardTraceResult& entry : partial.traces) {
    Value value = trace_result_to_json(entry.result);
    Object dedup;
    dedup.set("path", entry.source_path);
    dedup.set("total_bytes", entry.total_bytes);
    value.as_object().set("dedup", std::move(dedup));
    traces.push_back(std::move(value));
  }
  out.set("traces", std::move(traces));
  return out;
}

Expected<PartialArtifact> partial_from_json(const Value& value) {
  if (!value.is_object()) return schema_error("not an object");
  const Object& obj = value.as_object();
  auto schema = get_string(obj, "schema");
  if (!schema) return std::move(schema).error();
  if (*schema != kPartialSchema) {
    return schema_error("unsupported schema '" + *schema + "' (expected " +
                        std::string(kPartialSchema) + ")");
  }

  PartialArtifact partial;
  auto shard = get_object(obj, "shard");
  if (!shard) return std::move(shard).error();
  auto index = get_number(**shard, "index");
  if (!index) return std::move(index).error();
  auto count = get_number(**shard, "count");
  if (!count) return std::move(count).error();
  partial.shard_index = static_cast<std::size_t>(*index);
  partial.shard_count = static_cast<std::size_t>(*count);
  if (partial.shard_count == 0 || partial.shard_index >= partial.shard_count) {
    return schema_error("shard index out of range");
  }

  auto ingest = get_object(obj, "ingest");
  if (!ingest) return std::move(ingest).error();
  const auto ingest_count = [&](std::string_view key,
                                std::size_t& out) -> Status {
    auto number = get_number(**ingest, key);
    if (!number) return std::move(number).error();
    out = static_cast<std::size_t>(*number);
    return Status::success();
  };
  if (const auto s = ingest_count("files_scanned",
                                  partial.ingest.files_scanned);
      !s.ok()) {
    return s.error();
  }
  if (const auto s = ingest_count("loaded", partial.ingest.loaded); !s.ok()) {
    return s.error();
  }
  if (const auto s = ingest_count("failed", partial.ingest.failed); !s.ok()) {
    return s.error();
  }
  if (const auto s = ingest_count("retry_attempts",
                                  partial.ingest.retry_attempts);
      !s.ok()) {
    return s.error();
  }
  if (const auto s = ingest_count("recovered", partial.ingest.recovered);
      !s.ok()) {
    return s.error();
  }
  if (const auto s = ingest_count("quarantined", partial.ingest.quarantined);
      !s.ok()) {
    return s.error();
  }
  if (const auto s = ingest_count("journal_replayed",
                                  partial.ingest.journal_replayed);
      !s.ok()) {
    return s.error();
  }
  if (const auto s = ingest_count("journal_dropped",
                                  partial.ingest.journal_dropped);
      !s.ok()) {
    return s.error();
  }

  auto funnel = get_object(obj, "preprocessing");
  if (!funnel) return std::move(funnel).error();
  const auto funnel_count = [&](std::string_view key,
                                std::size_t& out) -> Status {
    auto number = get_number(**funnel, key);
    if (!number) return std::move(number).error();
    out = static_cast<std::size_t>(*number);
    return Status::success();
  };
  if (const auto s = funnel_count("input_traces",
                                  partial.stats.input_traces);
      !s.ok()) {
    return s.error();
  }
  if (const auto s = funnel_count("load_failed", partial.stats.load_failed);
      !s.ok()) {
    return s.error();
  }
  if (const auto s = funnel_count("corrupted", partial.stats.corrupted);
      !s.ok()) {
    return s.error();
  }
  if (const auto s = funnel_count("valid", partial.stats.valid); !s.ok()) {
    return s.error();
  }
  if (const auto s = funnel_count("unique_applications",
                                  partial.stats.unique_applications);
      !s.ok()) {
    return s.error();
  }
  if (const auto s = funnel_count("retained", partial.stats.retained);
      !s.ok()) {
    return s.error();
  }
  auto corruption = counts_from_json(**funnel, "corruption_breakdown");
  if (!corruption) return std::move(corruption).error();
  partial.stats.corruption_breakdown = std::move(*corruption);
  auto evictions = counts_from_json(**funnel, "eviction_breakdown");
  if (!evictions) return std::move(evictions).error();
  partial.stats.eviction_breakdown = std::move(*evictions);

  auto runs = counts_from_json(obj, "runs_per_app");
  if (!runs) return std::move(runs).error();
  partial.runs_per_app = std::move(*runs);

  auto artifacts = get_object(obj, "artifacts");
  if (!artifacts) return std::move(artifacts).error();
  auto journal = get_string(**artifacts, "journal");
  if (!journal) return std::move(journal).error();
  partial.journal_path = std::move(*journal);
  auto metrics = get_string(**artifacts, "metrics");
  if (!metrics) return std::move(metrics).error();
  partial.metrics_path = std::move(*metrics);
  auto provenance = get_string(**artifacts, "provenance");
  if (!provenance) return std::move(provenance).error();
  partial.provenance_path = std::move(*provenance);

  const Value* traces = obj.find("traces");
  if (traces == nullptr || !traces->is_array()) {
    return schema_error("missing array 'traces'");
  }
  partial.traces.reserve(traces->as_array().size());
  for (const Value& member : traces->as_array()) {
    auto result = trace_result_from_json(member);
    if (!result) return std::move(result).error();
    if (!member.is_object()) return schema_error("non-object trace entry");
    auto dedup = get_object(member.as_object(), "dedup");
    if (!dedup) return std::move(dedup).error();
    auto path = get_string(**dedup, "path");
    if (!path) return std::move(path).error();
    auto total_bytes = get_number(**dedup, "total_bytes");
    if (!total_bytes) return std::move(total_bytes).error();
    ShardTraceResult entry;
    entry.result = std::move(*result);
    entry.source_path = std::move(*path);
    entry.total_bytes = static_cast<std::uint64_t>(*total_bytes);
    partial.traces.push_back(std::move(entry));
  }
  return partial;
}

Status write_partial(const PartialArtifact& partial, const std::string& path) {
  return util::write_file_atomic(
      path, json::serialize(partial_to_json(partial)));
}

Expected<PartialArtifact> read_partial(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{ErrorCode::kIoError, "cannot open partial " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Error{ErrorCode::kIoError, "read failure on partial " + path};
  }
  auto parsed = json::parse(buffer.str());
  if (!parsed.has_value()) {
    return Error{ErrorCode::kParseError,
                 path + ": " + parsed.error().message};
  }
  auto partial = partial_from_json(*parsed);
  if (!partial.has_value()) {
    return Error{partial.error().code, path + ": " + partial.error().message};
  }
  return partial;
}

Expected<std::vector<std::string>> expand_partial_paths(
    const std::vector<std::string>& args) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (!fs::is_directory(arg, ec)) {
      paths.push_back(arg);
      continue;
    }
    std::vector<std::string> found;
    for (const auto& entry : fs::directory_iterator(arg, ec)) {
      if (ec) break;
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.starts_with("results.shard-") && name.ends_with(".json")) {
        found.push_back(entry.path().string());
      }
    }
    if (ec) {
      return Error{ErrorCode::kIoError, "cannot scan " + arg};
    }
    if (found.empty()) {
      return Error{ErrorCode::kNotFound,
                   arg + " contains no results.shard-*.json artifacts"};
    }
    std::sort(found.begin(), found.end());
    paths.insert(paths.end(), found.begin(), found.end());
  }
  if (paths.empty()) {
    return Error{ErrorCode::kInvalidArgument, "no partial artifacts given"};
  }
  return paths;
}

Expected<MergedPartials> merge_partials(std::vector<PartialArtifact> partials) {
  if (partials.empty()) {
    return Error{ErrorCode::kInvalidArgument, "no partials to merge"};
  }
  std::sort(partials.begin(), partials.end(),
            [](const PartialArtifact& a, const PartialArtifact& b) {
              return a.shard_index < b.shard_index;
            });
  // Validate the whole partition before failing, so an operator piecing a
  // run back together sees every missing, duplicated and mismatched shard
  // in one message instead of fixing them one re-run at a time.
  const std::size_t count = partials.front().shard_count;
  std::vector<std::string> problems;
  for (const PartialArtifact& partial : partials) {
    if (partial.shard_count != count) {
      problems.push_back("shard " + std::to_string(partial.shard_index) +
                         " declares a " +
                         std::to_string(partial.shard_count) +
                         "-way partition, expected " + std::to_string(count));
    }
  }
  std::vector<std::size_t> copies(count, 0);
  for (const PartialArtifact& partial : partials) {
    if (partial.shard_index >= count) {
      problems.push_back("shard index " +
                         std::to_string(partial.shard_index) +
                         " is out of range for " + std::to_string(count) +
                         " shard(s)");
      continue;
    }
    ++copies[partial.shard_index];
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (copies[i] == 0) {
      problems.push_back("shard " + std::to_string(i) + " is missing");
    } else if (copies[i] > 1) {
      problems.push_back("shard " + std::to_string(i) + " appears " +
                         std::to_string(copies[i]) + " times");
    }
  }
  if (!problems.empty()) {
    std::string message =
        "invalid partition (" + std::to_string(partials.size()) +
        " partial(s) for " + std::to_string(count) + " shard(s)): ";
    for (std::size_t i = 0; i < problems.size(); ++i) {
      if (i != 0) message += "; ";
      message += problems[i];
    }
    return Error{ErrorCode::kInvalidArgument, std::move(message)};
  }

  MergedPartials merged;
  core::PreprocessStats& stats = merged.batch.preprocess;
  std::map<std::string, ShardTraceResult> winners;
  for (PartialArtifact& partial : partials) {
    merged.ingest.files_scanned += partial.ingest.files_scanned;
    merged.ingest.loaded += partial.ingest.loaded;
    merged.ingest.failed += partial.ingest.failed;
    merged.ingest.retry_attempts += partial.ingest.retry_attempts;
    merged.ingest.recovered += partial.ingest.recovered;
    merged.ingest.quarantined += partial.ingest.quarantined;
    merged.ingest.journal_replayed += partial.ingest.journal_replayed;
    merged.ingest.journal_dropped += partial.ingest.journal_dropped;

    stats.input_traces += partial.stats.input_traces;
    stats.load_failed += partial.stats.load_failed;
    stats.corrupted += partial.stats.corrupted;
    stats.valid += partial.stats.valid;
    for (const auto& [kind, n] : partial.stats.corruption_breakdown) {
      stats.corruption_breakdown[kind] += n;
    }
    for (const auto& [code, n] : partial.stats.eviction_breakdown) {
      stats.eviction_breakdown[code] += n;
    }
    for (const auto& [app, runs] : partial.runs_per_app) {
      merged.batch.runs_per_app[app] += runs;
    }
    if (!partial.provenance_path.empty()) {
      merged.provenance_paths.push_back(partial.provenance_path);
    }

    for (ShardTraceResult& entry : partial.traces) {
      const auto [slot, inserted] =
          winners.try_emplace(entry.result.app_key, std::move(entry));
      if (!inserted && shard_result_wins(entry, slot->second)) {
        slot->second = std::move(entry);
      }
    }
  }

  // std::map iteration is sorted by application key — the same output order
  // the single-shot StreamingPreprocessor::finish emits.
  merged.batch.results.reserve(winners.size());
  for (auto& [app, entry] : winners) {
    merged.batch.results.push_back(std::move(entry.result));
  }
  stats.unique_applications = merged.batch.results.size();
  stats.retained = merged.batch.results.size();
  return merged;
}

}  // namespace mosaic::report
