#include "report/jaccard.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"

namespace mosaic::report {

using core::Category;
using core::kCategoryCount;

namespace {

/// Stage instruments for the two matrix builders (they share one series: the
/// cost profile is identical and the span name disambiguates in the trace).
obs::Histogram& jaccard_stage_ms() {
  static obs::Histogram& stage_ms = obs::Registry::global().histogram(
      obs::names::kReportJaccardMs, obs::latency_buckets_ms(),
      "Jaccard/conditional matrix stage latency (ms)");
  return stage_ms;
}

/// Pairwise co-occurrence counts, optionally run-weighted.
struct Cooccurrence {
  std::array<double, kCategoryCount> marginal{};
  // Upper-triangular including diagonal, flattened.
  std::vector<double> joint =
      std::vector<double>(kCategoryCount * kCategoryCount, 0.0);
  double total = 0.0;

  [[nodiscard]] double pair(std::size_t a, std::size_t b) const {
    return joint[a * kCategoryCount + b];
  }
};

Cooccurrence count_cooccurrence(
    const std::vector<core::TraceResult>& results,
    const std::map<std::string, std::size_t>* runs_per_app) {
  Cooccurrence counts;
  for (const core::TraceResult& result : results) {
    double weight = 1.0;
    if (runs_per_app != nullptr) {
      const auto it = runs_per_app->find(result.app_key);
      if (it != runs_per_app->end()) weight = static_cast<double>(it->second);
    }
    counts.total += weight;
    const std::vector<Category> present = result.categories.to_vector();
    for (const Category a : present) {
      const auto ia = static_cast<std::size_t>(a);
      counts.marginal[ia] += weight;
      for (const Category b : present) {
        counts.joint[ia * kCategoryCount + static_cast<std::size_t>(b)] +=
            weight;
      }
    }
  }
  return counts;
}

/// Categories with non-zero support, preserving enum order.
std::vector<Category> present_categories(const Cooccurrence& counts) {
  std::vector<Category> present;
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    if (counts.marginal[c] > 0.0) present.push_back(static_cast<Category>(c));
  }
  return present;
}

}  // namespace

CategoryMatrix jaccard_matrix(
    const std::vector<core::TraceResult>& results,
    const std::map<std::string, std::size_t>* runs_per_app) {
  MOSAIC_SPAN("report-jaccard");
  const obs::ScopedTimerMs timer(jaccard_stage_ms());
  const Cooccurrence counts = count_cooccurrence(results, runs_per_app);
  CategoryMatrix matrix;
  matrix.categories = present_categories(counts);
  const std::size_t n = matrix.categories.size();
  matrix.values.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto a = static_cast<std::size_t>(matrix.categories[i]);
      const auto b = static_cast<std::size_t>(matrix.categories[j]);
      const double intersection = counts.pair(a, b);
      const double union_size =
          counts.marginal[a] + counts.marginal[b] - intersection;
      matrix.values[i][j] = union_size > 0.0 ? intersection / union_size : 0.0;
    }
  }
  return matrix;
}

CategoryMatrix conditional_matrix(
    const std::vector<core::TraceResult>& results,
    const std::map<std::string, std::size_t>* runs_per_app) {
  MOSAIC_SPAN("report-conditional");
  const obs::ScopedTimerMs timer(jaccard_stage_ms());
  const Cooccurrence counts = count_cooccurrence(results, runs_per_app);
  CategoryMatrix matrix;
  matrix.categories = present_categories(counts);
  const std::size_t n = matrix.categories.size();
  matrix.values.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = static_cast<std::size_t>(matrix.categories[i]);
    if (counts.marginal[a] <= 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const auto b = static_cast<std::size_t>(matrix.categories[j]);
      matrix.values[i][j] = counts.pair(a, b) / counts.marginal[a];
    }
  }
  return matrix;
}

std::string render_heatmap(const CategoryMatrix& matrix, double min_value) {
  // Shade ramp from faint to solid.
  static constexpr const char* kRamp[] = {".", ":", "-", "+", "*", "#", "@"};
  constexpr std::size_t kRampSize = std::size(kRamp);

  std::string out;
  const std::size_t n = matrix.categories.size();

  // Column key legend (indices keep rows narrow).
  out += "columns:\n";
  for (std::size_t j = 0; j < n; ++j) {
    char head[64];
    std::snprintf(head, sizeof head, "  [%2zu] %s\n", j,
                  std::string(core::category_name(matrix.categories[j])).c_str());
    out += head;
  }
  out += '\n';

  for (std::size_t i = 0; i < n; ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "[%2zu] %-30s ", i,
                  std::string(core::category_name(matrix.categories[i])).c_str());
    out += label;
    for (std::size_t j = 0; j < n; ++j) {
      const double value = matrix.values[i][j];
      if (i == j) {
        out += ' ';
      } else if (value < min_value) {
        out += ' ';
      } else {
        const auto shade = static_cast<std::size_t>(
            std::min(value, 0.999) * static_cast<double>(kRampSize));
        out += kRamp[shade];
      }
    }
    out += '\n';
  }
  return out;
}

std::string top_pairs(const CategoryMatrix& matrix, std::size_t count,
                      bool symmetric) {
  struct Entry {
    std::size_t i, j;
    double value;
  };
  std::vector<Entry> entries;
  const std::size_t n = matrix.categories.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j_begin = symmetric ? i + 1 : 0;
    for (std::size_t j = j_begin; j < n; ++j) {
      if (i == j) continue;
      entries.push_back({i, j, matrix.values[i][j]});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.value > b.value; });
  std::string out;
  const char* arrow = symmetric ? "<->" : "=>";
  for (std::size_t k = 0; k < std::min(count, entries.size()); ++k) {
    char line[160];
    std::snprintf(
        line, sizeof line, "%-30s %s %-30s : %.2f\n",
        std::string(core::category_name(matrix.categories[entries[k].i])).c_str(),
        arrow,
        std::string(core::category_name(matrix.categories[entries[k].j])).c_str(),
        entries[k].value);
    out += line;
  }
  return out;
}

}  // namespace mosaic::report
