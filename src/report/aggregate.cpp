#include "report/aggregate.hpp"

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"

namespace mosaic::report {

using core::Category;
using core::kCategoryCount;

double CategoryDistribution::single_fraction(Category category) const noexcept {
  if (trace_count == 0) return 0.0;
  return static_cast<double>(single[static_cast<std::size_t>(category)]) /
         static_cast<double>(trace_count);
}

double CategoryDistribution::weighted_fraction(
    Category category) const noexcept {
  if (run_count <= 0.0) return 0.0;
  return weighted[static_cast<std::size_t>(category)] / run_count;
}

CategoryDistribution aggregate_categories(
    const std::vector<core::TraceResult>& results,
    const std::map<std::string, std::size_t>& runs_per_app) {
  MOSAIC_SPAN("report-aggregate");
  static obs::Histogram& stage_ms = obs::Registry::global().histogram(
      obs::names::kReportAggregateMs, obs::latency_buckets_ms(),
      "category aggregation stage latency (ms)");
  const obs::ScopedTimerMs timer(stage_ms);
  CategoryDistribution distribution;
  distribution.trace_count = results.size();
  for (const core::TraceResult& result : results) {
    const auto it = runs_per_app.find(result.app_key);
    const double runs =
        it == runs_per_app.end() ? 1.0 : static_cast<double>(it->second);
    distribution.run_count += runs;
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      if (result.categories.contains(static_cast<Category>(c))) {
        ++distribution.single[c];
        distribution.weighted[c] += runs;
      }
    }
  }
  return distribution;
}

CategoryDistribution aggregate_categories(const core::BatchResult& batch) {
  return aggregate_categories(batch.results, batch.runs_per_app);
}

PeriodicBreakdown periodic_breakdown(const core::BatchResult& batch,
                                     trace::OpKind kind) {
  PeriodicBreakdown breakdown;
  for (const core::TraceResult& result : batch.results) {
    const core::KindAnalysis& analysis =
        kind == trace::OpKind::kRead ? result.read : result.write;
    // Match the pipeline's gating: insignificant kinds carry no periodicity.
    if (!analysis.periodicity.periodic ||
        analysis.temporality.label == core::Temporality::kInsignificant) {
      continue;
    }
    const auto it = batch.runs_per_app.find(result.app_key);
    const double runs =
        it == batch.runs_per_app.end() ? 1.0 : static_cast<double>(it->second);
    ++breakdown.periodic_traces;
    breakdown.periodic_runs += runs;
    const auto magnitude = static_cast<std::size_t>(
        analysis.periodicity.dominant().magnitude);
    ++breakdown.single[magnitude];
    breakdown.weighted[magnitude] += runs;
  }
  return breakdown;
}

}  // namespace mosaic::report
