// Accuracy drill-down from provenance joins (paper §IV-E).
//
// The paper validates accuracy by manual inspection and attributes its 8%
// error to temporality edge cases. This module reproduces that drill-down
// automatically: provenance records captured during a batch run are joined
// against the generator's ground-truth sidecar (sim::TruthRecord) to
// produce a per-category confusion matrix, per-axis confidence histograms
// (the obs histogram type buckets them), and a ranked list of the ambiguous
// straddling cases — *without re-running the analysis*: everything is
// computed from the recorded category sets and decision margins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "obs/provenance.hpp"
#include "report/accuracy.hpp"
#include "sim/truth.hpp"

namespace mosaic::report {

/// Per-category confusion counts over the joined traces.
struct CategoryConfusion {
  std::string category;
  std::uint64_t true_positive = 0;   ///< predicted and planted
  std::uint64_t false_positive = 0;  ///< predicted, not planted
  std::uint64_t false_negative = 0;  ///< planted, not predicted
  std::uint64_t true_negative = 0;   ///< neither

  [[nodiscard]] double precision() const noexcept {
    const std::uint64_t predicted = true_positive + false_positive;
    return predicted == 0 ? 1.0
                          : static_cast<double>(true_positive) /
                                static_cast<double>(predicted);
  }
  [[nodiscard]] double recall() const noexcept {
    const std::uint64_t planted = true_positive + false_negative;
    return planted == 0 ? 1.0
                        : static_cast<double>(true_positive) /
                              static_cast<double>(planted);
  }
};

/// Bucketed decision-margin distribution for one axis, exported as plain
/// data from an obs::Histogram (which itself is neither copyable nor
/// movable).
struct AxisConfidence {
  std::string axis;  ///< read_temporality, ..., metadata
  std::vector<double> bounds;            ///< inclusive upper edges
  std::vector<std::uint64_t> buckets;    ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// One trace ranked by how close its weakest axis sat to a decision
/// boundary — the straddling cases the paper blames for its 8% error.
struct StraddlingCase {
  std::string app_key;
  std::uint64_t job_id = 0;
  std::string axis;          ///< the lowest-confidence axis
  double confidence = 0.0;   ///< that axis's decision margin, [0,1]
  bool mismatched = false;   ///< any axis disagreed with the truth
  bool truth_ambiguous = false;  ///< the generator planted it as ambiguous
};

/// The complete drill-down.
struct ConfusionReport {
  std::size_t joined = 0;         ///< provenance records with a truth entry
  std::size_t missing_truth = 0;  ///< records with no truth entry (skipped)

  AxisAccuracy read_temporality;
  AxisAccuracy write_temporality;
  AxisAccuracy read_periodicity;
  AxisAccuracy write_periodicity;
  AxisAccuracy metadata;
  AxisAccuracy overall;  ///< per-trace: every axis correct

  std::vector<CategoryConfusion> categories;  ///< only categories with support
  std::vector<AxisConfidence> confidence;     ///< the five axes, fixed order
  std::vector<StraddlingCase> straddling;     ///< ranked, least confident first
};

/// Joins provenance records against the truth sidecar. `max_straddling`
/// bounds the ranked list (0 keeps every joined trace).
[[nodiscard]] ConfusionReport build_confusion(
    const std::vector<obs::TraceProvenance>& records,
    const std::vector<sim::TruthRecord>& truths,
    std::size_t max_straddling = 20);

/// Renders the drill-down as a markdown fragment (tables + ranked list).
[[nodiscard]] std::string render_confusion(const ConfusionReport& report);

/// Serializes the drill-down (stable key order).
[[nodiscard]] json::Value confusion_to_json(const ConfusionReport& report);

}  // namespace mosaic::report
