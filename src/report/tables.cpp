#include "report/tables.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mosaic::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MOSAIC_ASSERT(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  MOSAIC_ASSERT(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += c == 0 ? "| " : " | ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    out += " |\n";
  };

  emit_row(headers_);
  out += '|';
  for (const std::size_t width : widths) {
    out.append(width + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::render_markdown() const {
  // The aligned form is already valid GitHub markdown.
  return render();
}

}  // namespace mosaic::report
