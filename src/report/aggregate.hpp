// Aggregate category statistics over a categorized population.
//
// The paper reports every distribution twice (paper §III-B4): over the
// deduplicated single-run set (behavior of distinct applications) and over
// all executions (load seen by the parallel file system). The all-runs view
// re-weights each retained trace by the number of valid executions of its
// application — MOSAIC's dedup assumes runs of an application share
// categories, so the retained trace stands in for all of them.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace mosaic::report {

/// Per-category counts over a population.
struct CategoryDistribution {
  /// Count of retained traces carrying each category (single-run view).
  std::array<std::size_t, core::kCategoryCount> single{};
  /// Run-weighted counts (all-runs view).
  std::array<double, core::kCategoryCount> weighted{};
  std::size_t trace_count = 0;   ///< retained traces
  double run_count = 0.0;        ///< total valid executions represented

  /// Fraction of retained traces with the category.
  [[nodiscard]] double single_fraction(core::Category category) const noexcept;
  /// Fraction of all executions with the category.
  [[nodiscard]] double weighted_fraction(core::Category category) const noexcept;
};

/// Builds the distribution. `runs_per_app` comes from pre-processing; apps
/// missing from it count as one run.
[[nodiscard]] CategoryDistribution aggregate_categories(
    const std::vector<core::TraceResult>& results,
    const std::map<std::string, std::size_t>& runs_per_app);

/// Convenience over a BatchResult.
[[nodiscard]] CategoryDistribution aggregate_categories(
    const core::BatchResult& batch);

/// Period-magnitude breakdown of the periodic traces of one op kind
/// (drives paper Table II's Min/Hour columns).
struct PeriodicBreakdown {
  /// Indexed by PeriodMagnitude. Single-run trace counts and run weights.
  std::array<std::size_t, 4> single{};
  std::array<double, 4> weighted{};
  std::size_t periodic_traces = 0;
  double periodic_runs = 0.0;
};

[[nodiscard]] PeriodicBreakdown periodic_breakdown(
    const core::BatchResult& batch, trace::OpKind kind);

}  // namespace mosaic::report
