// Plain-text table renderer for the bench harnesses and examples.
//
// Produces aligned monospace tables (and markdown) so every reproduced
// paper table prints with the same row/column structure as the original.
#pragma once

#include <string>
#include <vector>

namespace mosaic::report {

/// Column-aligned text table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Aligned ASCII rendering with a header separator.
  [[nodiscard]] std::string render() const;

  /// GitHub-flavored markdown rendering.
  [[nodiscard]] std::string render_markdown() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mosaic::report
