#include "report/confusion.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "report/tables.hpp"

namespace mosaic::report {

namespace {

/// Parses a name list back into the category bitmask; unknown names (from a
/// newer or older writer) are ignored.
core::CategorySet set_from_names(const std::vector<std::string>& names) {
  core::CategorySet set;
  for (const std::string& name : names) {
    if (const auto category = core::category_from_name(name);
        category.has_value()) {
      set.insert(*category);
    }
  }
  return set;
}

/// Decision-margin bucket edges: fine near 0 (the straddling zone the
/// drill-down exists to surface), coarse toward 1.
constexpr double kConfidenceEdges[] = {0.01, 0.02, 0.05, 0.1,
                                       0.2,  0.35, 0.5,  0.75};

struct AxisView {
  const char* name;
  double confidence;
  bool matched;
};

void tally(AxisAccuracy& axis, bool ok) {
  ++axis.total;
  if (ok) ++axis.correct;
}

std::string format_ratio(double value) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%.1f%%", value * 100.0);
  return buffer;
}

std::string format_confidence(double value) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

}  // namespace

ConfusionReport build_confusion(
    const std::vector<obs::TraceProvenance>& records,
    const std::vector<sim::TruthRecord>& truths,
    std::size_t max_straddling) {
  MOSAIC_SPAN("report-confusion");
  static obs::Histogram& stage_ms = obs::Registry::global().histogram(
      obs::names::kReportConfusionMs, obs::latency_buckets_ms(),
      "confusion drill-down stage latency (ms)");
  const obs::ScopedTimerMs timer(stage_ms);

  std::map<std::uint64_t, const sim::TruthRecord*> truth_by_job;
  for (const sim::TruthRecord& truth : truths) {
    truth_by_job.emplace(truth.job_id, &truth);
  }

  const AxisMasks masks = axis_masks();
  ConfusionReport report;

  // Per-category confusion counts, indexed by the enum.
  std::array<CategoryConfusion, core::kCategoryCount> cells;

  // Per-axis margin distributions, bucketed by the obs histogram type.
  const std::vector<double> edges(std::begin(kConfidenceEdges),
                                  std::end(kConfidenceEdges));
  obs::Histogram read_temp_hist(edges);
  obs::Histogram write_temp_hist(edges);
  obs::Histogram read_periodic_hist(edges);
  obs::Histogram write_periodic_hist(edges);
  obs::Histogram metadata_hist(edges);

  for (const obs::TraceProvenance& record : records) {
    const auto it = truth_by_job.find(record.job_id);
    if (it == truth_by_job.end()) {
      ++report.missing_truth;
      continue;
    }
    ++report.joined;
    const sim::TruthRecord& truth = *it->second;
    const core::CategorySet predicted = set_from_names(record.categories);
    const core::CategorySet planted = set_from_names(truth.categories);

    const AxisView axes[] = {
        {"read_temporality", record.read.temporality.confidence,
         axis_matches(predicted, planted, masks.read_temporality)},
        {"write_temporality", record.write.temporality.confidence,
         axis_matches(predicted, planted, masks.write_temporality)},
        {"read_periodicity", record.read.periodicity.confidence,
         axis_matches(predicted, planted, masks.read_periodicity)},
        {"write_periodicity", record.write.periodicity.confidence,
         axis_matches(predicted, planted, masks.write_periodicity)},
        {"metadata", record.metadata.confidence,
         axis_matches(predicted, planted, masks.metadata)},
    };
    tally(report.read_temporality, axes[0].matched);
    tally(report.write_temporality, axes[1].matched);
    tally(report.read_periodicity, axes[2].matched);
    tally(report.write_periodicity, axes[3].matched);
    tally(report.metadata, axes[4].matched);
    const bool all_ok = std::all_of(std::begin(axes), std::end(axes),
                                    [](const AxisView& a) { return a.matched; });
    tally(report.overall, all_ok);

    read_temp_hist.observe(axes[0].confidence);
    write_temp_hist.observe(axes[1].confidence);
    read_periodic_hist.observe(axes[2].confidence);
    write_periodic_hist.observe(axes[3].confidence);
    metadata_hist.observe(axes[4].confidence);

    for (std::size_t c = 0; c < core::kCategoryCount; ++c) {
      const auto category = static_cast<core::Category>(c);
      const bool was_predicted = predicted.contains(category);
      const bool was_planted = planted.contains(category);
      if (was_predicted && was_planted) {
        ++cells[c].true_positive;
      } else if (was_predicted) {
        ++cells[c].false_positive;
      } else if (was_planted) {
        ++cells[c].false_negative;
      } else {
        ++cells[c].true_negative;
      }
    }

    const AxisView* weakest = std::min_element(
        std::begin(axes), std::end(axes),
        [](const AxisView& a, const AxisView& b) {
          return a.confidence < b.confidence;
        });
    StraddlingCase straddling;
    straddling.app_key = record.app_key;
    straddling.job_id = record.job_id;
    straddling.axis = weakest->name;
    straddling.confidence = weakest->confidence;
    straddling.mismatched = !all_ok;
    straddling.truth_ambiguous = truth.ambiguous;
    report.straddling.push_back(std::move(straddling));
  }

  for (std::size_t c = 0; c < core::kCategoryCount; ++c) {
    CategoryConfusion& cell = cells[c];
    if (cell.true_positive + cell.false_positive + cell.false_negative == 0) {
      continue;  // no support on either side: uninteresting row
    }
    cell.category = core::category_name(static_cast<core::Category>(c));
    report.categories.push_back(cell);
  }

  const auto export_hist = [](const char* axis, const obs::Histogram& hist) {
    AxisConfidence out;
    out.axis = axis;
    out.bounds = hist.bounds();
    out.buckets = hist.bucket_counts();
    out.count = hist.count();
    out.sum = hist.sum();
    return out;
  };
  report.confidence.push_back(export_hist("read_temporality", read_temp_hist));
  report.confidence.push_back(
      export_hist("write_temporality", write_temp_hist));
  report.confidence.push_back(
      export_hist("read_periodicity", read_periodic_hist));
  report.confidence.push_back(
      export_hist("write_periodicity", write_periodic_hist));
  report.confidence.push_back(export_hist("metadata", metadata_hist));

  // Rank by ascending margin; ties (e.g. several exact-0 cases) break by
  // job id for deterministic output.
  std::sort(report.straddling.begin(), report.straddling.end(),
            [](const StraddlingCase& a, const StraddlingCase& b) {
              if (a.confidence != b.confidence) {
                return a.confidence < b.confidence;
              }
              return a.job_id < b.job_id;
            });
  if (max_straddling > 0 && report.straddling.size() > max_straddling) {
    report.straddling.resize(max_straddling);
  }
  return report;
}

std::string render_confusion(const ConfusionReport& report) {
  std::string md;
  md += "Joined " + std::to_string(report.joined) +
        " provenance record(s) against ground truth";
  if (report.missing_truth > 0) {
    md += " (" + std::to_string(report.missing_truth) +
          " record(s) had no truth entry and were skipped)";
  }
  md += ".\n\n";

  md += "### Per-axis accuracy\n\n";
  {
    TextTable table({"axis", "correct", "total", "accuracy"});
    const std::pair<const char*, const AxisAccuracy*> axes[] = {
        {"read temporality", &report.read_temporality},
        {"write temporality", &report.write_temporality},
        {"read periodicity", &report.read_periodicity},
        {"write periodicity", &report.write_periodicity},
        {"metadata", &report.metadata},
        {"overall (all axes)", &report.overall},
    };
    for (const auto& [name, axis] : axes) {
      table.add_row({name, std::to_string(axis->correct),
                     std::to_string(axis->total), format_ratio(axis->ratio())});
    }
    md += table.render_markdown();
  }

  md += "\n### Per-category confusion\n\n";
  if (report.categories.empty()) {
    md += "no categories with support\n";
  } else {
    TextTable table({"category", "TP", "FP", "FN", "precision", "recall"});
    for (const CategoryConfusion& cell : report.categories) {
      table.add_row({cell.category, std::to_string(cell.true_positive),
                     std::to_string(cell.false_positive),
                     std::to_string(cell.false_negative),
                     format_ratio(cell.precision()),
                     format_ratio(cell.recall())});
    }
    md += table.render_markdown();
  }

  md += "\n### Decision-margin distribution per axis\n\n";
  md += "Margin 0 means the deciding statistic sat exactly on a rule "
        "boundary; low-margin traces are the expected error sites.\n\n";
  {
    TextTable table({"axis", "traces", "mean margin", "margin <= 0.05"});
    for (const AxisConfidence& axis : report.confidence) {
      std::uint64_t low = 0;
      for (std::size_t b = 0;
           b < axis.bounds.size() && axis.bounds[b] <= 0.05 + 1e-12; ++b) {
        low += axis.buckets[b];
      }
      table.add_row({axis.axis, std::to_string(axis.count),
                     format_confidence(axis.mean()), std::to_string(low)});
    }
    md += table.render_markdown();
  }

  md += "\n### Least-confident (straddling) traces\n\n";
  if (report.straddling.empty()) {
    md += "none\n";
  } else {
    TextTable table(
        {"application", "job", "weakest axis", "margin", "verdict", "planted"});
    for (const StraddlingCase& c : report.straddling) {
      table.add_row({c.app_key, std::to_string(c.job_id), c.axis,
                     format_confidence(c.confidence),
                     c.mismatched ? "MISMATCH" : "correct",
                     c.truth_ambiguous ? "ambiguous" : "clear"});
    }
    md += table.render_markdown();
  }
  return md;
}

json::Value confusion_to_json(const ConfusionReport& report) {
  json::Object out;
  out.set("joined", report.joined);
  out.set("missing_truth", report.missing_truth);

  const auto axis_to_json = [](const AxisAccuracy& axis) {
    json::Object a;
    a.set("correct", axis.correct);
    a.set("total", axis.total);
    a.set("accuracy", axis.ratio());
    return json::Value(std::move(a));
  };
  json::Object axes;
  axes.set("read_temporality", axis_to_json(report.read_temporality));
  axes.set("write_temporality", axis_to_json(report.write_temporality));
  axes.set("read_periodicity", axis_to_json(report.read_periodicity));
  axes.set("write_periodicity", axis_to_json(report.write_periodicity));
  axes.set("metadata", axis_to_json(report.metadata));
  axes.set("overall", axis_to_json(report.overall));
  out.set("axes", std::move(axes));

  json::Array categories;
  for (const CategoryConfusion& cell : report.categories) {
    json::Object c;
    c.set("category", cell.category);
    c.set("true_positive", cell.true_positive);
    c.set("false_positive", cell.false_positive);
    c.set("false_negative", cell.false_negative);
    c.set("true_negative", cell.true_negative);
    c.set("precision", cell.precision());
    c.set("recall", cell.recall());
    categories.emplace_back(std::move(c));
  }
  out.set("categories", std::move(categories));

  json::Array confidence;
  for (const AxisConfidence& axis : report.confidence) {
    json::Object a;
    a.set("axis", axis.axis);
    json::Array bounds;
    for (const double b : axis.bounds) bounds.emplace_back(b);
    a.set("bounds", std::move(bounds));
    json::Array buckets;
    for (const std::uint64_t b : axis.buckets) buckets.emplace_back(b);
    a.set("buckets", std::move(buckets));
    a.set("count", axis.count);
    a.set("mean", axis.mean());
    confidence.emplace_back(std::move(a));
  }
  out.set("confidence", std::move(confidence));

  json::Array straddling;
  for (const StraddlingCase& c : report.straddling) {
    json::Object s;
    s.set("app_key", c.app_key);
    s.set("job_id", c.job_id);
    s.set("axis", c.axis);
    s.set("confidence", c.confidence);
    s.set("mismatched", c.mismatched);
    s.set("truth_ambiguous", c.truth_ambiguous);
    straddling.emplace_back(std::move(s));
  }
  out.set("straddling", std::move(straddling));
  return out;
}

}  // namespace mosaic::report
