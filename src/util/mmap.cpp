#include "util/mmap.hpp"

#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define MOSAIC_HAVE_MMAP 1
#endif

namespace mosaic::util {

namespace {

/// Heap-read fallback shared by the no-mmap build and the mmap-failed path.
Expected<std::vector<std::byte>> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Error{ErrorCode::kIoError, "cannot open " + path};
  const std::streamsize size = in.tellg();
  if (size < 0) return Error{ErrorCode::kIoError, "cannot stat " + path};
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) return Error{ErrorCode::kIoError, "read failure on " + path};
  }
  return bytes;
}

}  // namespace

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    if (!mapped_) data_ = fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MappedFile::reset() noexcept {
#if defined(MOSAIC_HAVE_MMAP)
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

MappedFile MappedFile::from_buffer(std::vector<std::byte> buffer) {
  MappedFile file;
  file.fallback_ = std::move(buffer);
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  return file;
}

Expected<MappedFile> MappedFile::open(const std::string& path) {
#if defined(MOSAIC_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        return MappedFile{};  // mmap(len=0) is UB; empty span is correct
      }
      void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping keeps its own reference to the file
      if (addr != MAP_FAILED) {
        MappedFile file;
        file.data_ = static_cast<const std::byte*>(addr);
        file.size_ = size;
        file.mapped_ = true;
        return file;
      }
    } else {
      ::close(fd);
    }
  }
  // fd open / fstat / mmap failed — fall through to the heap read, which
  // produces the accurate error message for genuinely unreadable files.
#endif
  auto bytes = read_all(path);
  if (!bytes.has_value()) return std::move(bytes).error();
  MappedFile file;
  file.fallback_ = std::move(bytes).value();
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  return file;
}

}  // namespace mosaic::util
