#include "util/fs.hpp"

#include <cstdio>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace mosaic::util {

namespace fs = std::filesystem;

namespace {

/// Temp path next to `path`, unique per process so concurrent writers of
/// different outputs never collide.
std::string staging_path(const std::string& path) {
  std::string tmp = path;
  tmp += ".tmp.";
#if defined(__unix__) || defined(__APPLE__)
  tmp += std::to_string(static_cast<long>(::getpid()));
#else
  tmp += "stage";
#endif
  return tmp;
}

}  // namespace

Status write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = staging_path(path);
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Error{ErrorCode::kIoError, "cannot create " + tmp};
  }
  const bool written =
      contents.empty() ||
      std::fwrite(contents.data(), 1, contents.size(), file) == contents.size();
  bool flushed = written && std::fflush(file) == 0;
#if defined(__unix__) || defined(__APPLE__)
  // Push the payload to stable storage before the rename publishes it;
  // otherwise a power loss can still expose an empty renamed file.
  flushed = flushed && ::fsync(::fileno(file)) == 0;
#endif
  const bool closed = std::fclose(file) == 0;
  if (!written || !flushed || !closed) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return Error{ErrorCode::kIoError, "write failure on " + tmp};
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code cleanup;
    fs::remove(tmp, cleanup);
    return Error{ErrorCode::kIoError,
                 "cannot rename " + tmp + " to " + path + ": " + ec.message()};
  }
  return Status::success();
}

Expected<std::string> move_file_into_dir(const std::string& path,
                                         const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Error{ErrorCode::kIoError,
                 "cannot create " + directory + ": " + ec.message()};
  }
  const fs::path destination = fs::path(directory) / fs::path(path).filename();
  fs::rename(path, destination, ec);
  if (ec) {
    // EXDEV and friends: stage a copy, then drop the original.
    ec.clear();
    fs::copy_file(path, destination, fs::copy_options::overwrite_existing, ec);
    if (ec) {
      return Error{ErrorCode::kIoError, "cannot move " + path + " to " +
                                            destination.string() + ": " +
                                            ec.message()};
    }
    fs::remove(path, ec);
  }
  return destination.string();
}

}  // namespace mosaic::util
