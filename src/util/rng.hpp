// Deterministic pseudo-random number generation for the trace simulator.
//
// All randomness in MOSAIC flows through Rng so that every experiment is
// reproducible from a single 64-bit seed. The core generator is
// xoshiro256++ seeded via splitmix64 (the scheme recommended by its
// authors); distribution helpers cover everything the population generator
// needs (uniform, normal, lognormal, exponential, Poisson, Zipf, categorical).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace mosaic::util {

/// splitmix64 step: used for seeding and for cheap stateless hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a value (one splitmix64 round).
[[nodiscard]] std::uint64_t mix64(std::uint64_t value) noexcept;

/// xoshiro256++ generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random>
/// distributions, though MOSAIC uses the built-in helpers for portability of
/// results across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0xC0FFEE1234ABCDEFull) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma) noexcept;

  /// Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda > 0 (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Poisson-distributed count with mean `mean` >= 0. Uses Knuth's method
  /// for small means and a normal approximation above 64.
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Zipf-distributed rank in [1, n] with exponent s > 0, via rejection
  /// sampling (Devroye). Heavy-tailed rerun counts use this.
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Samples an index according to non-negative weights (need not sum to 1).
  /// Precondition: at least one weight > 0.
  [[nodiscard]] std::size_t categorical(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; stream `index` is mixed into
  /// the seed so parallel workers never share a sequence.
  [[nodiscard]] Rng fork(std::uint64_t index) const noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mosaic::util
