// Thread-safe leveled logging to stderr.
//
// The batch pipeline runs trace analysis on a thread pool; log lines from
// concurrent workers must not interleave mid-line, so emission takes a
// process-wide mutex. Formatting uses printf-style specifiers, validated by
// the compiler via the format attribute.
#pragma once

#include <cstdarg>

namespace mosaic::util {

/// Severity levels, ordered. Messages below the global threshold are dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global threshold (default kInfo).
void set_log_level(LogLevel level) noexcept;

/// Current global threshold.
[[nodiscard]] LogLevel log_level() noexcept;

/// Core emission routine; prefer the MOSAIC_LOG_* macros.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace mosaic::util

#define MOSAIC_LOG_DEBUG(...) \
  ::mosaic::util::log_message(::mosaic::util::LogLevel::kDebug, __VA_ARGS__)
#define MOSAIC_LOG_INFO(...) \
  ::mosaic::util::log_message(::mosaic::util::LogLevel::kInfo, __VA_ARGS__)
#define MOSAIC_LOG_WARN(...) \
  ::mosaic::util::log_message(::mosaic::util::LogLevel::kWarn, __VA_ARGS__)
#define MOSAIC_LOG_ERROR(...) \
  ::mosaic::util::log_message(::mosaic::util::LogLevel::kError, __VA_ARGS__)
