// Thread-safe leveled logging to stderr.
//
// The batch pipeline runs trace analysis on a thread pool; log lines from
// concurrent workers must not interleave mid-line, so emission takes a
// process-wide mutex. Formatting uses printf-style specifiers, validated by
// the compiler via the format attribute.
//
// Two wire formats: the human-readable text form (`[mosaic LEVEL] msg`) and
// a machine-readable JSONL form (`{"ts":…,"level":"…","msg":"…"}`, one
// object per line) selected with set_log_format — the CLI's --log-json.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string_view>

namespace mosaic::util {

/// Severity levels, ordered. Messages below the global threshold are dropped.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Output encoding of emitted lines.
enum class LogFormat : int {
  kText = 0,  ///< "[mosaic LEVEL] msg\n"
  kJson = 1,  ///< {"ts":<epoch seconds>,"level":"info","msg":"..."}\n
};

/// Sets the global threshold (default kInfo).
void set_log_level(LogLevel level) noexcept;

/// Current global threshold.
[[nodiscard]] LogLevel log_level() noexcept;

/// Sets the global output format (default kText).
void set_log_format(LogFormat format) noexcept;

/// Current global output format.
[[nodiscard]] LogFormat log_format() noexcept;

/// Lower-case level name as it appears on the CLI and in JSON lines.
[[nodiscard]] std::string_view log_level_name(LogLevel level) noexcept;

/// Parses a CLI level name ("debug", "info", "warn", "error", "off").
[[nodiscard]] std::optional<LogLevel> parse_log_level(
    std::string_view name) noexcept;

/// Redirects emission to `stream` (test seam); nullptr restores stderr.
void set_log_stream(std::FILE* stream) noexcept;

/// Core emission routine; prefer the MOSAIC_LOG_* macros. Preserves the
/// caller's errno and flushes the stream on kError, so a crash right after
/// an error line cannot swallow it.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace mosaic::util

#define MOSAIC_LOG_DEBUG(...) \
  ::mosaic::util::log_message(::mosaic::util::LogLevel::kDebug, __VA_ARGS__)
#define MOSAIC_LOG_INFO(...) \
  ::mosaic::util::log_message(::mosaic::util::LogLevel::kInfo, __VA_ARGS__)
#define MOSAIC_LOG_WARN(...) \
  ::mosaic::util::log_message(::mosaic::util::LogLevel::kWarn, __VA_ARGS__)
#define MOSAIC_LOG_ERROR(...) \
  ::mosaic::util::log_message(::mosaic::util::LogLevel::kError, __VA_ARGS__)
