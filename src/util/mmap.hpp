// Zero-copy memory-mapped file reads.
//
// Binary `.mbt` traces are parsed from a flat byte span; reading them through
// an ifstream copies every byte into a heap vector first. MappedFile maps the
// file read-only instead — parse_mbt walks the page cache directly, the
// kernel drops the pages when the mapping closes, and ingestion stops paying
// one full copy per trace. Falls back to a heap read (same span semantics)
// when mmap is unavailable (empty files, special files, non-POSIX builds).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mosaic::util {

/// RAII read-only file mapping. Move-only; unmaps on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Empty files succeed with an empty span (mmap of
  /// length 0 is undefined, so they use the fallback buffer). When mmap
  /// itself fails but the file is readable, falls back to a plain heap read
  /// so callers never need a second code path.
  [[nodiscard]] static Expected<MappedFile> open(const std::string& path);

  /// Wraps an already-materialized buffer (fault-injected reads, tests) in
  /// the same interface. is_mapped() is false.
  [[nodiscard]] static MappedFile from_buffer(std::vector<std::byte> buffer);

  /// The mapped (or fallback-read) bytes. Valid until destruction/move.
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }

  /// True when the contents are served by an actual mapping rather than the
  /// heap fallback (observability for tests and bench counters).
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

 private:
  void reset() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                ///< data_ points into an mmap region
  std::vector<std::byte> fallback_;    ///< owns data_ when !mapped_
};

}  // namespace mosaic::util
