#include "util/memory.hpp"

#include <cstdio>
#include <cstring>

namespace mosaic::util {

namespace {

/// Reads a "<Key>:  <kB> kB" line from /proc/self/status.
std::uint64_t read_status_kb(const char* key) noexcept {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, file) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, " %llu", &value) == 1) {
        kb = value;
      }
      break;
    }
  }
  std::fclose(file);
  return kb;
}

}  // namespace

std::uint64_t peak_rss_bytes() noexcept {
  return read_status_kb("VmHWM") * 1024;
}

std::uint64_t current_rss_bytes() noexcept {
  return read_status_kb("VmRSS") * 1024;
}

}  // namespace mosaic::util
