#include "util/backoff.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace mosaic::util {

ExponentialBackoff::ExponentialBackoff(double initial_delay_ms,
                                       double multiplier,
                                       double max_delay_ms) noexcept
    : initial_ms_(std::max(0.0, initial_delay_ms)),
      multiplier_(std::max(1.0, multiplier)),
      max_ms_(std::max(initial_ms_, max_delay_ms)),
      current_ms_(initial_ms_) {}

double ExponentialBackoff::next_delay_ms() noexcept {
  const double delay = current_ms_;
  current_ms_ = std::min(max_ms_, current_ms_ * multiplier_);
  ++attempts_;
  return delay;
}

void ExponentialBackoff::reset() noexcept {
  current_ms_ = initial_ms_;
  attempts_ = 0;
}

void sleep_for_ms(double delay_ms) {
  if (delay_ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
}

}  // namespace mosaic::util
