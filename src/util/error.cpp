#include "util/error.hpp"

namespace mosaic::util {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kCorruptTrace: return "corrupt-trace";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kOverflow: return "overflow";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out{error_code_name(code)};
  out += ": ";
  out += message;
  return out;
}

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const char* func) {
  std::fprintf(stderr, "MOSAIC_ASSERT failed: %s at %s:%d in %s\n", expr, file,
               line, func);
  std::abort();
}

}  // namespace detail
}  // namespace mosaic::util
