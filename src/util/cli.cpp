#include "util/cli.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace mosaic::util {

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void CliParser::add_option(std::string name, std::string help,
                           std::string default_value) {
  Option opt;
  opt.help = std::move(help);
  opt.value = std::move(default_value);
  options_.emplace(std::move(name), std::move(opt));
}

void CliParser::add_flag(std::string name, std::string help) {
  Option opt;
  opt.help = std::move(help);
  opt.is_flag = true;
  options_.emplace(std::move(name), std::move(opt));
}

Status CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return Error{ErrorCode::kNotFound, "help requested"};
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string_view name = body;
    std::optional<std::string_view> inline_value;
    if (const auto eq = body.find('='); eq != std::string_view::npos) {
      name = body.substr(0, eq);
      inline_value = body.substr(eq + 1);
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown option --" + std::string(name)};
    }
    Option& opt = it->second;
    if (opt.is_flag) {
      if (inline_value.has_value()) {
        return Error{ErrorCode::kInvalidArgument,
                     "flag --" + std::string(name) + " takes no value"};
      }
      opt.flag_set = true;
      continue;
    }
    if (inline_value.has_value()) {
      opt.value = std::string(*inline_value);
    } else {
      if (i + 1 >= argc) {
        return Error{ErrorCode::kInvalidArgument,
                     "option --" + std::string(name) + " requires a value"};
      }
      opt.value = argv[++i];
    }
  }
  return Status::success();
}

std::string_view CliParser::get(std::string_view name) const {
  const auto it = options_.find(name);
  MOSAIC_ASSERT(it != options_.end());
  MOSAIC_ASSERT(!it->second.is_flag);
  return it->second.value;
}

Expected<std::int64_t> CliParser::get_int(std::string_view name) const {
  const auto text = get(name);
  if (const auto value = parse_int(text)) return *value;
  return Error{ErrorCode::kInvalidArgument,
               "option --" + std::string(name) + " expects an integer, got '" +
                   std::string(text) + "'"};
}

Expected<double> CliParser::get_double(std::string_view name) const {
  const auto text = get(name);
  if (const auto value = parse_double(text)) return *value;
  return Error{ErrorCode::kInvalidArgument,
               "option --" + std::string(name) + " expects a number, got '" +
                   std::string(text) + "'"};
}

bool CliParser::get_flag(std::string_view name) const {
  const auto it = options_.find(name);
  MOSAIC_ASSERT(it != options_.end());
  MOSAIC_ASSERT(it->second.is_flag);
  return it->second.flag_set;
}

std::string CliParser::usage() const {
  std::string out = program_ + " — " + summary_ + "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    out += "  --" + name;
    if (!opt.is_flag) out += " <value> (default: " + opt.value + ")";
    out += "\n      " + opt.help + "\n";
  }
  out += "  --help\n      Show this message.\n";
  return out;
}

}  // namespace mosaic::util
