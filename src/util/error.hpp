// Error handling primitives shared across all MOSAIC modules.
//
// MOSAIC distinguishes two failure classes:
//  - programming errors / violated invariants -> MOSAIC_ASSERT (aborts),
//  - recoverable data errors (corrupt trace, bad file) -> Expected<T>.
//
// Recoverable errors carry a category and a human-readable message so that
// batch drivers can count and report eviction reasons (paper Fig. 3).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mosaic::util {

/// Broad classification of a recoverable error. Batch pipelines aggregate
/// eviction statistics per category.
enum class ErrorCode : std::uint8_t {
  kInvalidArgument,  ///< caller passed an out-of-domain value
  kParseError,       ///< malformed input text / binary stream
  kCorruptTrace,     ///< trace fails semantic validity checks
  kIoError,          ///< filesystem / OS level failure
  kNotFound,         ///< missing file, key or record
  kOverflow,         ///< numeric overflow while accumulating counters
  kTimeout,          ///< per-file deadline exceeded (read + retries + parse)
  kInternal,         ///< unexpected internal condition
};

/// Number of ErrorCode values; sized for per-code counter arrays.
inline constexpr std::size_t kErrorCodeCount =
    static_cast<std::size_t>(ErrorCode::kInternal) + 1;

/// Human-readable name of an ErrorCode, e.g. "corrupt-trace".
[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

/// A recoverable error: a code plus a contextual message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  /// "<code-name>: <message>" — suitable for logs.
  [[nodiscard]] std::string to_string() const;
};

/// Minimal expected/outcome type (libstdc++ 12 lacks std::expected).
/// Holds either a value of type T or an Error. Access without checking is a
/// programming error and aborts.
template <typename T>
class Expected {
 public:
  /* implicit */ Expected(T value) : state_(std::move(value)) {}
  /* implicit */ Expected(Error error) : state_(std::move(error)) {}

  [[nodiscard]] bool has_value() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return has_value(); }

  /// The held value. Precondition: has_value().
  [[nodiscard]] T& value() & { return std::get<T>(state_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(state_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(state_)); }

  /// The held error. Precondition: !has_value().
  [[nodiscard]] const Error& error() const& { return std::get<Error>(state_); }
  [[nodiscard]] Error&& error() && { return std::get<Error>(std::move(state_)); }

  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }

  /// Returns the value or `fallback` when an error is held.
  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> state_;
};

/// Expected<void> analogue: success or an Error.
class Status {
 public:
  Status() = default;  // success
  /* implicit */ Status(Error error) : error_(std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// Precondition: !ok().
  [[nodiscard]] const Error& error() const { return *error_; }

  /// Success singleton for readability.
  [[nodiscard]] static Status success() { return Status{}; }

 private:
  std::optional<Error> error_;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* func);
}  // namespace detail

}  // namespace mosaic::util

/// Invariant check that stays enabled in release builds. Violations indicate
/// a bug in MOSAIC itself, never bad user data, so we abort loudly.
#define MOSAIC_ASSERT(expr)                                                 \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::mosaic::util::detail::assert_fail(#expr, __FILE__, __LINE__,        \
                                          static_cast<const char*>(__func__)); \
    }                                                                       \
  } while (false)
