// Descriptive statistics used throughout the classifiers and reports.
//
// The temporality classifier relies on the coefficient of variation of
// per-chunk volumes (paper SIII-B3b); the metadata classifier and reports use
// per-second histograms, means and percentiles.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace mosaic::util {

/// Streaming mean/variance accumulator (Welford), numerically stable.
class RunningStats {
 public:
  /// Incorporates one observation.
  void add(double value) noexcept;

  /// Merges another accumulator (parallel reduction), Chan et al. update.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// stddev / mean; 0 when mean == 0 (the classifier treats an all-zero
  /// chunk vector as perfectly steady-but-insignificant).
  [[nodiscard]] double coefficient_of_variation() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One-shot summary of a sample.
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double cv = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes a Summary over `values` (empty input yields a zero Summary).
[[nodiscard]] Summary summarize(std::span<const double> values) noexcept;

/// Linear-interpolated percentile, q in [0,1]. Sorts a copy.
/// Precondition: values non-empty.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Coefficient of variation of a sample (0 when mean is 0 or input empty).
[[nodiscard]] double coefficient_of_variation(
    std::span<const double> values) noexcept;

/// Fixed-width binned histogram over [lo, hi). Values outside the range are
/// clamped into the first/last bin so counts are never dropped — the metadata
/// spike detector wants total request conservation.
class Histogram {
 public:
  /// Precondition: lo < hi, bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Re-initializes to a new range and bin count, reusing the bin storage.
  /// Same preconditions as the constructor.
  void reset(double lo, double hi, std::size_t bins);

  /// Adds `weight` to the bin containing `value` (clamped).
  void add(double value, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  /// Inclusive lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] std::span<const double> counts() const noexcept { return counts_; }
  [[nodiscard]] double total() const noexcept;
  /// Index of the fullest bin (ties -> lowest index). Precondition: bins >= 1.
  [[nodiscard]] std::size_t peak_bin() const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
};

}  // namespace mosaic::util
