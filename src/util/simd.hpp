// Runtime-dispatched SIMD kernels for the per-trace hot path.
//
// Every kernel here has two implementations: an AVX2+FMA path and a scalar
// path that is the reference implementation. The two are bit-identical BY
// CONSTRUCTION, not by tolerance: the scalar path emulates the exact AVX2
// lane structure (four partial accumulators, a fixed (l0+l2)+(l1+l3)
// horizontal reduce, tail elements folded in after the reduce) and calls
// std::fma exactly where the AVX2 path uses a single-rounding fused
// multiply-add. The A/B kernel-equivalence tests (tests/util/test_simd.cpp)
// and the categorization goldens (tests/integration/test_golden_ab.cpp)
// enforce this on adversarial inputs — denormals, non-power-of-two lengths,
// empty columns — and across forced-scalar runs (DESIGN.md §18).
//
// Dispatch is resolved once per process from CPUID; MOSAIC_FORCE_SCALAR=1
// pins the scalar path (the CI fallback job sets it on AVX2 runners). Tests
// can override the level explicitly to run both paths in one process.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>

namespace mosaic::util::simd {

/// Instruction-set level a kernel dispatches to.
enum class Level : std::uint8_t {
  kScalar = 0,  ///< reference implementation, always available
  kAvx2 = 1,    ///< AVX2 + FMA (requires both CPUID bits)
};

[[nodiscard]] const char* level_name(Level level) noexcept;

/// Highest level the CPU supports, gated by MOSAIC_FORCE_SCALAR (environment,
/// read once on first call) and by any test override. Cheap after the first
/// call (one relaxed atomic load).
[[nodiscard]] Level active_level() noexcept;

/// Test seam: pins active_level() to `level` regardless of CPUID/environment.
/// Kernel A/B tests use it to run both paths inside one process.
void set_level_for_testing(Level level) noexcept;

/// Removes the test override; active_level() returns to CPUID/env dispatch.
void clear_level_for_testing() noexcept;

// --- Reductions (util/stats consumers) -------------------------------------

/// Lane-structured sum. Four accumulators advance in lockstep; the horizontal
/// reduce is (l0+l2)+(l1+l3); the tail (n % 4 elements) folds into the
/// reduced value afterwards. Identical across levels bit for bit. Note the
/// lane association differs from a plain sequential sum — for integer-valued
/// doubles below 2^53 (byte counts, request counts) both are exact anyway.
[[nodiscard]] double sum(std::span<const double> values) noexcept;
[[nodiscard]] double sum(std::span<const double> values,
                         Level level) noexcept;

/// Max over `values` plus the count of elements >= threshold, in one pass —
/// the metadata spike scan. Max and count are order-independent-exact for
/// NaN-free input (which per-second request bins are), so both levels agree
/// bit for bit. Empty input returns -infinity and count 0.
double max_and_count_ge(std::span<const double> values, double threshold,
                        std::size_t& count_ge) noexcept;
double max_and_count_ge(std::span<const double> values, double threshold,
                        std::size_t& count_ge, Level level) noexcept;

// --- Binning (cluster/fft.cpp:bin_series, core/periodicity) ----------------

/// Scatter-adds (time, weight) columns into fixed-width bins:
///   bins[clamp(floor(times[i] / bin_seconds), 0, nbins-1)] += weights[i]
/// Index math is vectorized (IEEE division and floor are exact, so lanes and
/// scalar agree bit for bit); the scatter itself runs in element order, so
/// the bin sums match the scalar reference exactly. The clamp happens in
/// double space before any integer conversion: out-of-range and NaN times
/// land in the edge bins instead of invoking float-cast UB.
void bin_add(const double* times, const double* weights, std::size_t n,
             double bin_seconds, double* bins, std::size_t nbins) noexcept;
void bin_add(const double* times, const double* weights, std::size_t n,
             double bin_seconds, double* bins, std::size_t nbins,
             Level level) noexcept;

// --- FFT kernels (cluster/fft) ---------------------------------------------

/// Complex multiply with the exact rounding structure of the AVX2 butterfly:
///   re = fma(a.re, b.re, -(a.im * b.im))
///   im = fma(a.im, b.re, +(a.re * b.im))
/// (_mm256_fmaddsub_pd rounds a.im*b.im / a.re*b.im once, then fuses.) The
/// cold FFT path uses this per element so cached and uncached transforms stay
/// bit-identical.
[[nodiscard]] std::complex<double> complex_mul_fma(
    std::complex<double> a, std::complex<double> b) noexcept;

/// One FFT butterfly stage over `count` pairs:
///   t = odd[k] * w[k];  odd[k] = even[k] - t;  even[k] = even[k] + t
/// with complex_mul_fma products. The AVX2 path processes two complex values
/// per 256-bit register; the scalar path is the per-element reference.
void fft_butterfly(std::complex<double>* even, std::complex<double>* odd,
                   const std::complex<double>* twiddles,
                   std::size_t count) noexcept;
void fft_butterfly(std::complex<double>* even, std::complex<double>* odd,
                   const std::complex<double>* twiddles, std::size_t count,
                   Level level) noexcept;

/// In-place power spectrum: data[i] = (fma(re, re, im*im), 0).
void complex_norm(std::complex<double>* data, std::size_t n) noexcept;
void complex_norm(std::complex<double>* data, std::size_t n,
                  Level level) noexcept;

/// In-place division by a real scalar (the inverse-FFT 1/n scaling). IEEE
/// division is exact per element, so levels agree bit for bit.
void complex_scale_div(std::complex<double>* data, std::size_t n,
                       double divisor) noexcept;
void complex_scale_div(std::complex<double>* data, std::size_t n,
                       double divisor, Level level) noexcept;

}  // namespace mosaic::util::simd
