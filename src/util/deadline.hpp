// Monotonic deadlines for bounding per-file ingest work.
//
// One pathological trace (a multi-gigabyte text file of almost-valid rows,
// a reader stalling on a dying disk) must not wedge a worker thread for the
// rest of a batch. A Deadline is captured when processing of a file starts
// and checked cooperatively at cheap intervals by the reader and parsers.
#pragma once

#include <chrono>
#include <limits>

namespace mosaic::util {

/// A point in monotonic time after which work on one unit should stop.
/// Default-constructed deadlines are infinite (never expire).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite deadline: expired() is always false.
  Deadline() = default;

  /// Expires `seconds` from now. Non-positive budgets mean "already expired".
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.finite_ = true;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    return d;
  }

  [[nodiscard]] bool expired() const {
    return finite_ && Clock::now() >= expiry_;
  }

  /// Seconds until expiry; negative once expired, +inf when infinite.
  [[nodiscard]] double remaining_seconds() const {
    if (!finite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(expiry_ - Clock::now()).count();
  }

  [[nodiscard]] bool finite() const noexcept { return finite_; }

 private:
  bool finite_ = false;
  Clock::time_point expiry_{};
};

}  // namespace mosaic::util
