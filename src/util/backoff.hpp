// Capped exponential backoff for retrying transient I/O failures.
//
// Year-scale ingest jobs hit NFS hiccups, overloaded metadata servers and
// flaky spinning disks; retrying a kIoError a few times with growing pauses
// recovers most of them. Delays are fully deterministic (no jitter) so
// fault-injection tests can assert exact retry schedules; the caller decides
// whether to actually sleep (workers do, unit tests usually don't).
#pragma once

#include <cstddef>

namespace mosaic::util {

/// Deterministic capped exponential backoff: initial, initial*mult, ...,
/// clamped to `max_delay_ms`.
class ExponentialBackoff {
 public:
  ExponentialBackoff(double initial_delay_ms, double multiplier,
                     double max_delay_ms) noexcept;

  /// Delay to wait before the next attempt, advancing the schedule.
  [[nodiscard]] double next_delay_ms() noexcept;

  /// Delay the next next_delay_ms() call would return, without advancing.
  [[nodiscard]] double peek_delay_ms() const noexcept { return current_ms_; }

  /// Attempts issued so far (number of next_delay_ms() calls).
  [[nodiscard]] std::size_t attempts() const noexcept { return attempts_; }

  /// Restores the initial delay.
  void reset() noexcept;

 private:
  double initial_ms_;
  double multiplier_;
  double max_ms_;
  double current_ms_;
  std::size_t attempts_ = 0;
};

/// Blocks the calling thread for `delay_ms` milliseconds. Split out of the
/// backoff class so schedule computation stays side-effect free.
void sleep_for_ms(double delay_ms);

}  // namespace mosaic::util
