#include "util/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define MOSAIC_SIMD_X86 1
#endif

namespace mosaic::util::simd {

namespace {

/// CPUID + environment dispatch, evaluated once. MOSAIC_FORCE_SCALAR accepts
/// any non-empty value other than "0" (mirrors the usual boolean env idiom).
Level detect_level() noexcept {
#if defined(MOSAIC_SIMD_X86)
  const char* force = std::getenv("MOSAIC_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return Level::kScalar;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

std::atomic<int> g_level{-1};     ///< resolved CPUID/env level, -1 = unset
std::atomic<int> g_override{-1};  ///< test override, -1 = none

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
  }
  return "unknown";
}

Level active_level() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  int cached = g_level.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = static_cast<int>(detect_level());
    g_level.store(cached, std::memory_order_relaxed);
  }
  return static_cast<Level>(cached);
}

void set_level_for_testing(Level level) noexcept {
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_level_for_testing() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// sum
// ---------------------------------------------------------------------------

namespace {

double sum_scalar(const double* x, std::size_t n) noexcept {
  // Four lanes + fixed (l0+l2)+(l1+l3) reduce: the exact shape of the AVX2
  // horizontal add below (low/high 128-bit halves first, then the pair).
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += x[i];
    l1 += x[i + 1];
    l2 += x[i + 2];
    l3 += x[i + 3];
  }
  double total = (l0 + l2) + (l1 + l3);
  for (; i < n; ++i) total += x[i];
  return total;
}

#if defined(MOSAIC_SIMD_X86)
__attribute__((target("avx2,fma"))) double sum_avx2(const double* x,
                                                    std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                  _mm256_extractf128_pd(acc, 1));
  double total =
      _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; i < n; ++i) total += x[i];
  return total;
}
#endif

}  // namespace

double sum(std::span<const double> values, Level level) noexcept {
#if defined(MOSAIC_SIMD_X86)
  if (level == Level::kAvx2) return sum_avx2(values.data(), values.size());
#else
  (void)level;
#endif
  return sum_scalar(values.data(), values.size());
}

double sum(std::span<const double> values) noexcept {
  return sum(values, active_level());
}

// ---------------------------------------------------------------------------
// max_and_count_ge
// ---------------------------------------------------------------------------

namespace {

double max_scalar(const double* x, std::size_t n, double threshold,
                  std::size_t& count_ge) noexcept {
  double best = -std::numeric_limits<double>::infinity();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    best = x[i] > best ? x[i] : best;
    if (x[i] >= threshold) ++count;
  }
  count_ge = count;
  return best;
}

#if defined(MOSAIC_SIMD_X86)
__attribute__((target("avx2,fma"))) double max_avx2(
    const double* x, std::size_t n, double threshold,
    std::size_t& count_ge) noexcept {
  __m256d best = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const __m256d thr = _mm256_set1_pd(threshold);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    best = _mm256_max_pd(best, v);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(v, thr, _CMP_GE_OQ));
    count += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(mask)));
  }
  // Max is order-independent-exact for NaN-free input, so the reduce order
  // does not need to mirror the scalar loop.
  const __m128d pair = _mm_max_pd(_mm256_castpd256_pd128(best),
                                  _mm256_extractf128_pd(best, 1));
  double top = _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) {
    top = x[i] > top ? x[i] : top;
    if (x[i] >= threshold) ++count;
  }
  count_ge = count;
  return top;
}
#endif

}  // namespace

double max_and_count_ge(std::span<const double> values, double threshold,
                        std::size_t& count_ge, Level level) noexcept {
#if defined(MOSAIC_SIMD_X86)
  if (level == Level::kAvx2) {
    return max_avx2(values.data(), values.size(), threshold, count_ge);
  }
#else
  (void)level;
#endif
  return max_scalar(values.data(), values.size(), threshold, count_ge);
}

double max_and_count_ge(std::span<const double> values, double threshold,
                        std::size_t& count_ge) noexcept {
  return max_and_count_ge(values, threshold, count_ge, active_level());
}

// ---------------------------------------------------------------------------
// bin_add
// ---------------------------------------------------------------------------

namespace {

void bin_add_scalar(const double* times, const double* weights, std::size_t n,
                    double bin_seconds, double* bins,
                    std::size_t nbins) noexcept {
  const double max_index = static_cast<double>(nbins - 1);
  for (std::size_t i = 0; i < n; ++i) {
    double pos = std::floor(times[i] / bin_seconds);
    // Clamp in double space, mirroring min_pd/max_pd operand semantics
    // exactly (NaN falls through the first select to max_index). No value
    // ever reaches the double->size_t cast out of range.
    pos = pos < max_index ? pos : max_index;
    pos = pos > 0.0 ? pos : 0.0;
    bins[static_cast<std::size_t>(pos)] += weights[i];
  }
}

#if defined(MOSAIC_SIMD_X86)
__attribute__((target("avx2,fma"))) void bin_add_avx2(
    const double* times, const double* weights, std::size_t n,
    double bin_seconds, double* bins, std::size_t nbins) noexcept {
  const double max_index = static_cast<double>(nbins - 1);
  const __m256d vbin = _mm256_set1_pd(bin_seconds);
  const __m256d vmax = _mm256_set1_pd(max_index);
  const __m256d vzero = _mm256_setzero_pd();
  alignas(32) double pos[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Division and floor are IEEE-exact, so the vector index math agrees
    // with the scalar reference bit for bit; the scatter adds run in element
    // order, so the bin contents do too.
    __m256d p =
        _mm256_floor_pd(_mm256_div_pd(_mm256_loadu_pd(times + i), vbin));
    p = _mm256_min_pd(p, vmax);
    p = _mm256_max_pd(p, vzero);
    _mm256_store_pd(pos, p);
    bins[static_cast<std::size_t>(pos[0])] += weights[i];
    bins[static_cast<std::size_t>(pos[1])] += weights[i + 1];
    bins[static_cast<std::size_t>(pos[2])] += weights[i + 2];
    bins[static_cast<std::size_t>(pos[3])] += weights[i + 3];
  }
  if (i < n) {
    bin_add_scalar(times + i, weights + i, n - i, bin_seconds, bins, nbins);
  }
}
#endif

}  // namespace

void bin_add(const double* times, const double* weights, std::size_t n,
             double bin_seconds, double* bins, std::size_t nbins,
             Level level) noexcept {
  if (n == 0 || nbins == 0) return;
#if defined(MOSAIC_SIMD_X86)
  if (level == Level::kAvx2) {
    bin_add_avx2(times, weights, n, bin_seconds, bins, nbins);
    return;
  }
#else
  (void)level;
#endif
  bin_add_scalar(times, weights, n, bin_seconds, bins, nbins);
}

void bin_add(const double* times, const double* weights, std::size_t n,
             double bin_seconds, double* bins, std::size_t nbins) noexcept {
  bin_add(times, weights, n, bin_seconds, bins, nbins, active_level());
}

// ---------------------------------------------------------------------------
// FFT kernels
// ---------------------------------------------------------------------------

std::complex<double> complex_mul_fma(std::complex<double> a,
                                     std::complex<double> b) noexcept {
  // Matches _mm256_fmaddsub_pd(a, b.re, swap(a) * b.im): the cross products
  // are rounded once, the final multiply-add is fused.
  return {std::fma(a.real(), b.real(), -(a.imag() * b.imag())),
          std::fma(a.imag(), b.real(), a.real() * b.imag())};
}

namespace {

void fft_butterfly_scalar(std::complex<double>* even,
                          std::complex<double>* odd,
                          const std::complex<double>* twiddles,
                          std::size_t count) noexcept {
  for (std::size_t k = 0; k < count; ++k) {
    const std::complex<double> t = complex_mul_fma(odd[k], twiddles[k]);
    const std::complex<double> e = even[k];
    even[k] = e + t;
    odd[k] = e - t;
  }
}

#if defined(MOSAIC_SIMD_X86)
__attribute__((target("avx2,fma"))) void fft_butterfly_avx2(
    std::complex<double>* even, std::complex<double>* odd,
    const std::complex<double>* twiddles, std::size_t count) noexcept {
  // std::complex<double> is layout-compatible with double[2] (array-oriented
  // access guarantee), so two complex values fill one 256-bit register as
  // (re0, im0, re1, im1).
  auto* ev = reinterpret_cast<double*>(even);
  auto* od = reinterpret_cast<double*>(odd);
  const auto* tw = reinterpret_cast<const double*>(twiddles);
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const __m256d o = _mm256_loadu_pd(od + 2 * k);
    const __m256d w = _mm256_loadu_pd(tw + 2 * k);
    const __m256d wr = _mm256_movedup_pd(w);       // (wr0, wr0, wr1, wr1)
    const __m256d wi = _mm256_permute_pd(w, 0xF);  // (wi0, wi0, wi1, wi1)
    const __m256d os = _mm256_permute_pd(o, 0x5);  // (oi0, or0, oi1, or1)
    const __m256d cross = _mm256_mul_pd(os, wi);   // (oi*wi, or*wi) pairs
    // Even lanes: or*wr - oi*wi (fused); odd lanes: oi*wr + or*wi (fused) —
    // exactly complex_mul_fma.
    const __m256d t = _mm256_fmaddsub_pd(o, wr, cross);
    const __m256d e = _mm256_loadu_pd(ev + 2 * k);
    _mm256_storeu_pd(ev + 2 * k, _mm256_add_pd(e, t));
    _mm256_storeu_pd(od + 2 * k, _mm256_sub_pd(e, t));
  }
  if (k < count) {
    fft_butterfly_scalar(even + k, odd + k, twiddles + k, count - k);
  }
}
#endif

}  // namespace

void fft_butterfly(std::complex<double>* even, std::complex<double>* odd,
                   const std::complex<double>* twiddles, std::size_t count,
                   Level level) noexcept {
#if defined(MOSAIC_SIMD_X86)
  if (level == Level::kAvx2) {
    fft_butterfly_avx2(even, odd, twiddles, count);
    return;
  }
#else
  (void)level;
#endif
  fft_butterfly_scalar(even, odd, twiddles, count);
}

void fft_butterfly(std::complex<double>* even, std::complex<double>* odd,
                   const std::complex<double>* twiddles,
                   std::size_t count) noexcept {
  fft_butterfly(even, odd, twiddles, count, active_level());
}

namespace {

void complex_norm_scalar(std::complex<double>* data, std::size_t n) noexcept {
  for (std::size_t k = 0; k < n; ++k) {
    const double re = data[k].real();
    const double im = data[k].imag();
    data[k] = {std::fma(re, re, im * im), 0.0};
  }
}

#if defined(MOSAIC_SIMD_X86)
__attribute__((target("avx2,fma"))) void complex_norm_avx2(
    std::complex<double>* data, std::size_t n) noexcept {
  auto* p = reinterpret_cast<double*>(data);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const __m256d v = _mm256_loadu_pd(p + 2 * k);
    const __m256d rr = _mm256_movedup_pd(v);       // (re0, re0, re1, re1)
    const __m256d ii = _mm256_permute_pd(v, 0xF);  // (im0, im0, im1, im1)
    // fma(re, re, im*im) in every lane, imaginary lanes zeroed afterwards.
    const __m256d norm = _mm256_fmadd_pd(rr, rr, _mm256_mul_pd(ii, ii));
    _mm256_storeu_pd(p + 2 * k, _mm256_blend_pd(norm, zero, 0xA));
  }
  if (k < n) complex_norm_scalar(data + k, n - k);
}
#endif

}  // namespace

void complex_norm(std::complex<double>* data, std::size_t n,
                  Level level) noexcept {
#if defined(MOSAIC_SIMD_X86)
  if (level == Level::kAvx2) {
    complex_norm_avx2(data, n);
    return;
  }
#else
  (void)level;
#endif
  complex_norm_scalar(data, n);
}

void complex_norm(std::complex<double>* data, std::size_t n) noexcept {
  complex_norm(data, n, active_level());
}

namespace {

void complex_scale_div_scalar(std::complex<double>* data, std::size_t n,
                              double divisor) noexcept {
  for (std::size_t k = 0; k < n; ++k) {
    data[k] = {data[k].real() / divisor, data[k].imag() / divisor};
  }
}

#if defined(MOSAIC_SIMD_X86)
__attribute__((target("avx2,fma"))) void complex_scale_div_avx2(
    std::complex<double>* data, std::size_t n, double divisor) noexcept {
  auto* p = reinterpret_cast<double*>(data);
  const __m256d d = _mm256_set1_pd(divisor);
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    _mm256_storeu_pd(p + 2 * k,
                     _mm256_div_pd(_mm256_loadu_pd(p + 2 * k), d));
  }
  if (k < n) complex_scale_div_scalar(data + k, n - k, divisor);
}
#endif

}  // namespace

void complex_scale_div(std::complex<double>* data, std::size_t n,
                       double divisor, Level level) noexcept {
#if defined(MOSAIC_SIMD_X86)
  if (level == Level::kAvx2) {
    complex_scale_div_avx2(data, n, divisor);
    return;
  }
#else
  (void)level;
#endif
  complex_scale_div_scalar(data, n, divisor);
}

void complex_scale_div(std::complex<double>* data, std::size_t n,
                       double divisor) noexcept {
  complex_scale_div(data, n, divisor, active_level());
}

}  // namespace mosaic::util::simd
