// Process memory introspection.
//
// The paper reports memory as MOSAIC's main bottleneck (300 GB to process
// the year of traces, §IV-E); the benches report peak RSS alongside their
// timings so the memory/scale relationship stays visible.
#pragma once

#include <cstdint>

namespace mosaic::util {

/// Peak resident set size of this process in bytes (VmHWM), or 0 when the
/// platform does not expose it (non-Linux).
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

/// Current resident set size in bytes (VmRSS), or 0 when unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes() noexcept;

}  // namespace mosaic::util
