#include "util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "util/strings.hpp"

namespace mosaic::util {

namespace {

Error errno_error(const std::string& what) {
  return Error{ErrorCode::kIoError, what + ": " + std::strerror(errno)};
}

/// poll() for readability/writability. Returns 1 ready, 0 timeout, -1 error.
/// `timeout_seconds <= 0` waits forever (in bounded slices so huge doubles
/// don't overflow the int-milliseconds poll API).
int wait_for(int fd, short events, double timeout_seconds) {
  const bool forever = timeout_seconds <= 0.0;
  double remaining_ms = forever ? 0.0 : timeout_seconds * 1000.0;
  for (;;) {
    constexpr double kSliceMs = 60'000.0;
    const double slice =
        forever ? kSliceMs : std::min(remaining_ms, kSliceMs);
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, static_cast<int>(std::ceil(slice)));
    if (rc > 0) return 1;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (!forever) {
      remaining_ms -= slice;
      if (remaining_ms <= 0.0) return 0;
    }
  }
}

/// Resolves `address` to an IPv4/IPv6 sockaddr via getaddrinfo.
Expected<std::pair<sockaddr_storage, socklen_t>> resolve(
    const Address& address) {
  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* info = nullptr;
  const std::string port = std::to_string(address.port);
  const int rc = ::getaddrinfo(address.host.c_str(), port.c_str(), &hints,
                               &info);
  if (rc != 0 || info == nullptr) {
    return Error{ErrorCode::kIoError, "cannot resolve '" + address.host +
                                          "': " + ::gai_strerror(rc)};
  }
  sockaddr_storage storage{};
  std::memcpy(&storage, info->ai_addr, info->ai_addrlen);
  const socklen_t len = info->ai_addrlen;
  ::freeaddrinfo(info);
  return std::pair<sockaddr_storage, socklen_t>{storage, len};
}

}  // namespace

std::string Address::to_string() const {
  return host + ":" + std::to_string(port);
}

Expected<Address> parse_address(std::string_view text) {
  const std::string_view trimmed = trim(text);
  const auto colon = trimmed.rfind(':');
  if (colon == std::string_view::npos) {
    return Error{ErrorCode::kInvalidArgument,
                 "address '" + std::string(trimmed) +
                     "' is not host:port (e.g. 127.0.0.1:9000)"};
  }
  const std::string_view host = trim(trimmed.substr(0, colon));
  const std::string_view port_text = trim(trimmed.substr(colon + 1));
  if (host.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "address '" + std::string(trimmed) + "' has an empty host"};
  }
  const auto port = parse_uint(port_text);
  if (!port.has_value() || *port > 65535) {
    return Error{ErrorCode::kInvalidArgument,
                 "address '" + std::string(trimmed) + "' port '" +
                     std::string(port_text) +
                     "' is not an integer in [0, 65535]"};
  }
  Address address;
  address.host = std::string(host);
  address.port = static_cast<std::uint16_t>(*port);
  return address;
}

Expected<std::vector<Address>> parse_address_list(std::string_view text) {
  std::vector<Address> addresses;
  for (const std::string_view field : split(text, ',')) {
    if (trim(field).empty()) continue;
    auto address = parse_address(field);
    if (!address.has_value()) return std::move(address).error();
    if (address->port == 0) {
      return Error{ErrorCode::kInvalidArgument,
                   "worker address '" + address->to_string() +
                       "' needs a non-zero port"};
    }
    addresses.push_back(std::move(*address));
  }
  if (addresses.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "no worker addresses given (expected host:port[,host:port])"};
  }
  return addresses;
}

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Connection::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Connection::send_all(const void* data, std::size_t len) {
  if (fd_ < 0) return Error{ErrorCode::kIoError, "send on closed connection"};
  const auto* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t rc =
        ::send(fd_, bytes + sent, len - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    sent += static_cast<std::size_t>(rc);
  }
  return Status::success();
}

Status Connection::recv_exact(void* data, std::size_t len,
                              double timeout_seconds) {
  if (fd_ < 0) return Error{ErrorCode::kIoError, "recv on closed connection"};
  auto* bytes = static_cast<char*>(data);
  std::size_t received = 0;
  while (received < len) {
    const int ready = wait_for(fd_, POLLIN, timeout_seconds);
    if (ready < 0) return errno_error("poll");
    if (ready == 0) {
      return Error{ErrorCode::kTimeout,
                   "peer sent nothing for " +
                       std::to_string(timeout_seconds) + "s"};
    }
    const ssize_t rc = ::recv(fd_, bytes + received, len - received, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_error("recv");
    }
    if (rc == 0) {
      return Error{ErrorCode::kIoError, "connection closed by peer"};
    }
    received += static_cast<std::size_t>(rc);
  }
  return Status::success();
}

Expected<std::size_t> Connection::recv_some(void* data, std::size_t len,
                                            double timeout_seconds) {
  if (fd_ < 0) return Error{ErrorCode::kIoError, "recv on closed connection"};
  for (;;) {
    const int ready = wait_for(fd_, POLLIN, timeout_seconds);
    if (ready < 0) return errno_error("poll");
    if (ready == 0) {
      return Error{ErrorCode::kTimeout,
                   "peer sent nothing for " +
                       std::to_string(timeout_seconds) + "s"};
    }
    const ssize_t rc = ::recv(fd_, data, len, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_error("recv");
    }
    return static_cast<std::size_t>(rc);
  }
}

Expected<Connection> connect_to(const Address& address,
                                double timeout_seconds) {
  auto resolved = resolve(address);
  if (!resolved.has_value()) return std::move(resolved).error();
  const int fd = ::socket(resolved->first.ss_family, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  Connection conn(fd);  // owns fd from here on

  // Non-blocking connect + poll gives the bounded wait; the socket goes back
  // to blocking afterwards (all I/O timeouts run through poll anyway).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(
      fd, reinterpret_cast<const sockaddr*>(&resolved->first),
      resolved->second);
  if (rc != 0 && errno != EINPROGRESS) {
    return errno_error("connect to " + address.to_string());
  }
  if (rc != 0) {
    const int ready = wait_for(fd, POLLOUT, timeout_seconds);
    if (ready < 0) return errno_error("poll");
    if (ready == 0) {
      return Error{ErrorCode::kTimeout,
                   "connect to " + address.to_string() + " timed out"};
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      return errno_error("getsockopt");
    }
    if (err != 0) {
      return Error{ErrorCode::kIoError, "connect to " + address.to_string() +
                                            ": " + std::strerror(err)};
    }
  }
  (void)::fcntl(fd, F_SETFL, flags);
  return conn;
}

Listener::~Listener() { close(); }

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Listener::listen_on(const Address& address) {
  auto resolved = resolve(address);
  if (!resolved.has_value()) return std::move(resolved).error();
  const int fd = ::socket(resolved->first.ss_family, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&resolved->first),
             resolved->second) != 0) {
    const Error error = errno_error("bind " + address.to_string());
    ::close(fd);
    return error;
  }
  if (::listen(fd, 16) != 0) {
    const Error error = errno_error("listen on " + address.to_string());
    ::close(fd);
    return error;
  }
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Error error = errno_error("getsockname");
    ::close(fd);
    return error;
  }
  if (bound.ss_family == AF_INET) {
    port_ = ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
  } else if (bound.ss_family == AF_INET6) {
    port_ = ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
  } else {
    port_ = address.port;
  }
  close();
  fd_ = fd;
  return Status::success();
}

Expected<Connection> Listener::accept_connection(double timeout_seconds) {
  if (fd_ < 0) return Error{ErrorCode::kIoError, "accept on closed listener"};
  const int ready = wait_for(fd_, POLLIN, timeout_seconds);
  if (ready < 0) return errno_error("poll");
  if (ready == 0) {
    return Error{ErrorCode::kTimeout, "no connection within " +
                                          std::to_string(timeout_seconds) +
                                          "s"};
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return errno_error("accept");
  return Connection(fd);
}

}  // namespace mosaic::util
