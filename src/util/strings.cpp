#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace mosaic::util {

namespace {

bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) fields.push_back(text.substr(start, i - start));
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B",   "KiB", "MiB", "GiB",
                                           "TiB", "PiB", "EiB"};
  double value = bytes;
  std::size_t unit = 0;
  while (std::abs(value) >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[48];
  if (unit == 0) {
    std::snprintf(buffer, sizeof buffer, "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.2f %s", value, kUnits[unit]);
  }
  return buffer;
}

std::string format_duration(double seconds) {
  char buffer[64];
  if (seconds < 1.0) {
    std::snprintf(buffer, sizeof buffer, "%.0f ms", seconds * 1000.0);
  } else if (seconds < 60.0) {
    std::snprintf(buffer, sizeof buffer, "%.1f s", seconds);
  } else if (seconds < 3600.0) {
    const int mins = static_cast<int>(seconds / 60.0);
    const int secs = static_cast<int>(seconds) % 60;
    std::snprintf(buffer, sizeof buffer, "%dm %02ds", mins, secs);
  } else {
    const int hours = static_cast<int>(seconds / 3600.0);
    const int mins = (static_cast<int>(seconds) % 3600) / 60;
    std::snprintf(buffer, sizeof buffer, "%dh %02dm", hours, mins);
  }
  return buffer;
}

std::string format_percent(double ratio) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f%%", ratio * 100.0);
  return buffer;
}

std::string to_lower(std::string_view text) {
  std::string out{text};
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace mosaic::util
