// Wall-clock stopwatch for the performance reports (paper §IV-E).
#pragma once

#include <chrono>

namespace mosaic::util {

/// Monotonic stopwatch started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts timing from now.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mosaic::util
