// Minimal command-line argument parser for the example and bench binaries.
//
// Supports `--name value`, `--name=value`, boolean `--flag`, and positional
// arguments. Unknown options are an error so typos don't silently fall
// through to defaults — important when a bench sweep flag is misspelled.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace mosaic::util {

/// Declarative CLI parser. Register options, then parse argv.
class CliParser {
 public:
  /// `program` and `summary` feed the --help text.
  CliParser(std::string program, std::string summary);

  /// Registers an option taking a value, with a default rendered in help.
  void add_option(std::string name, std::string help,
                  std::string default_value);

  /// Registers a boolean flag (false unless present).
  void add_flag(std::string name, std::string help);

  /// Parses argv. On `--help`, prints usage and returns an Error with code
  /// kNotFound (callers exit 0 on it). On malformed input returns
  /// kInvalidArgument with a message.
  [[nodiscard]] Status parse(int argc, const char* const* argv);

  /// Value of an option (default if not given). Precondition: registered.
  [[nodiscard]] std::string_view get(std::string_view name) const;
  /// Typed accessors; abort on registration errors, return Error on bad text.
  [[nodiscard]] Expected<std::int64_t> get_int(std::string_view name) const;
  [[nodiscard]] Expected<double> get_double(std::string_view name) const;
  /// True iff the flag was present. Precondition: registered as flag.
  [[nodiscard]] bool get_flag(std::string_view name) const;

  /// Positional (non-option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Renders the --help text.
  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool flag_set = false;
  };

  std::string program_;
  std::string summary_;
  std::map<std::string, Option, std::less<>> options_;
  std::vector<std::string> positional_;
};

}  // namespace mosaic::util
