#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/simd.hpp"

namespace mosaic::util {

void RunningStats::add(double value) noexcept {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::coefficient_of_variation() const noexcept {
  if (mean_ == 0.0) return 0.0;
  return stddev() / std::abs(mean_);
}

Summary summarize(std::span<const double> values) noexcept {
  RunningStats acc;
  for (double v : values) acc.add(v);
  Summary s;
  s.count = acc.count();
  if (s.count == 0) return s;
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.cv = acc.coefficient_of_variation();
  s.min = acc.min();
  s.max = acc.max();
  s.sum = acc.sum();
  return s;
}

double percentile(std::span<const double> values, double q) {
  MOSAIC_ASSERT(!values.empty());
  MOSAIC_ASSERT(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double coefficient_of_variation(std::span<const double> values) noexcept {
  return summarize(values).cv;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  MOSAIC_ASSERT(lo < hi);
  MOSAIC_ASSERT(bins >= 1);
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

void Histogram::reset(double lo, double hi, std::size_t bins) {
  MOSAIC_ASSERT(lo < hi);
  MOSAIC_ASSERT(bins >= 1);
  lo_ = lo;
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

void Histogram::add(double value, double weight) noexcept {
  // Clamp in double space BEFORE the integer conversion (mirrors
  // simd::bin_add): values at or beyond hi land in the last bin as before,
  // but values too large for ptrdiff_t — and NaN — now clamp into an edge
  // bin instead of a double->integer cast with undefined behavior. For every
  // in-range value the selected bin is identical to the old formulation, so
  // funnel histogram metrics are byte-stable under this fix.
  const double max_index = static_cast<double>(counts_.size() - 1);
  double pos = std::floor((value - lo_) / width_);
  pos = pos < max_index ? pos : max_index;
  pos = pos > 0.0 ? pos : 0.0;
  counts_[static_cast<std::size_t>(pos)] += weight;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::total() const noexcept {
  // Lane-structured SIMD sum; exact (hence association-free) for the
  // integer-valued weights every histogram in the pipeline records.
  return simd::sum(counts_);
}

std::size_t Histogram::peak_bin() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] > counts_[best]) best = i;
  }
  return best;
}

}  // namespace mosaic::util
