// Small string utilities shared by the darshan text parser, the CLI parser
// and the report renderers. No locale dependence; ASCII semantics only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mosaic::util {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Splits on a single character; adjacent separators yield empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char sep);

/// Splits on runs of ASCII whitespace; never yields empty fields.
[[nodiscard]] std::vector<std::string_view> split_whitespace(
    std::string_view text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Locale-free numeric parsing; nullopt on any trailing garbage.
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view text) noexcept;
[[nodiscard]] std::optional<std::uint64_t> parse_uint(std::string_view text) noexcept;
[[nodiscard]] std::optional<double> parse_double(std::string_view text) noexcept;

/// Formats bytes with binary units, e.g. "1.50 GiB".
[[nodiscard]] std::string format_bytes(double bytes);

/// Formats a duration in seconds as a compact human string, e.g. "2h 03m".
[[nodiscard]] std::string format_duration(double seconds);

/// Formats a ratio in [0,1] as a percentage with one decimal, e.g. "37.5%".
[[nodiscard]] std::string format_percent(double ratio);

/// Lower-cases ASCII letters.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Joins the elements with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace mosaic::util
