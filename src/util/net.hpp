// Minimal TCP transport shared by the distributed subsystem and the
// embedded HTTP endpoint.
//
// Peers exchange bytes over plain TCP sockets — length-prefixed MDP1 frames
// for dispatch/worker (dist/protocol.hpp), HTTP/1.x for the observability
// endpoint (obs/http.hpp). This header wraps the handful of POSIX calls both
// need — parse an address, listen, accept, connect, move bytes — behind the
// repo's Expected/Status error model, with every receive bounded by a poll()
// timeout so a dead or wedged peer surfaces as kTimeout instead of hanging
// the caller forever (the failure-detection primitive the dist task
// lifecycle is built on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace mosaic::util {

/// A "host:port" endpoint. Host stays textual (numeric IPv4 or a resolvable
/// name); port 0 is only meaningful for listeners (ephemeral bind, used by
/// tests to avoid port races).
struct Address {
  std::string host;
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Address&, const Address&) = default;
};

/// Parses "host:port". Errors (kInvalidArgument, with an actionable message)
/// on a missing colon, empty host, or a port outside [0, 65535].
[[nodiscard]] Expected<Address> parse_address(std::string_view text);

/// Parses a comma-separated worker list ("a:9000,b:9001"). Every entry must
/// parse and carry a non-zero port (you cannot connect to port 0).
[[nodiscard]] Expected<std::vector<Address>> parse_address_list(
    std::string_view text);

/// One connected TCP stream. Move-only; the destructor closes the fd.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) noexcept : fd_(fd) {}
  ~Connection();

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Sends the whole buffer (SIGPIPE suppressed; a closed peer is kIoError).
  [[nodiscard]] Status send_all(const void* data, std::size_t len);

  /// Receives exactly `len` bytes. Returns kTimeout when the peer sends
  /// nothing for `timeout_seconds` (<= 0 waits forever), kIoError on EOF or
  /// a socket error. A timeout mid-buffer leaves the stream unusable for
  /// framing (bytes already consumed) — callers treat it as fatal for the
  /// connection, not the process.
  [[nodiscard]] Status recv_exact(void* data, std::size_t len,
                                  double timeout_seconds);

  /// Receives up to `len` bytes, returning however many arrived (0 on EOF).
  /// kTimeout when nothing arrived within `timeout_seconds`. Used by the
  /// HTTP server, which reads a request head of unknown length.
  [[nodiscard]] Expected<std::size_t> recv_some(void* data, std::size_t len,
                                                double timeout_seconds);

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Blocking connect with a bounded wait. kIoError covers refused /
/// unreachable / unresolvable; kTimeout a peer that never answers the SYN.
[[nodiscard]] Expected<Connection> connect_to(const Address& address,
                                              double timeout_seconds);

/// Listening socket (SO_REUSEADDR so restarted workers rebind immediately).
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&&) = delete;
  Listener& operator=(Listener&&) = delete;

  [[nodiscard]] Status listen_on(const Address& address);

  /// Port actually bound — resolves an ephemeral (port 0) request.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] bool listening() const noexcept { return fd_ >= 0; }

  /// Waits up to `timeout_seconds` (<= 0 forever) for one connection.
  /// kTimeout when nobody connected.
  [[nodiscard]] Expected<Connection> accept_connection(double timeout_seconds);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace mosaic::util
