#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mosaic::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  char line[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof line, fmt, args);
  va_end(args);
  const std::scoped_lock lock(g_emit_mutex);
  std::fprintf(stderr, "[mosaic %s] %s\n", level_tag(level), line);
}

}  // namespace mosaic::util
