#include "util/log.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

namespace mosaic::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};
std::atomic<std::FILE*> g_stream{nullptr};  // nullptr -> stderr
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

/// Message escaper for the JSONL sink. util sits below the json library in
/// the dependency order, so the handful of escapes live here.
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double epoch_seconds() noexcept {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) noexcept {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat log_format() noexcept {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_stream(std::FILE* stream) noexcept {
  g_stream.store(stream, std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  // Logging must be transparent to error handling around it: vsnprintf and
  // fprintf may clobber errno, and callers routinely log before inspecting
  // the failure they are reporting.
  const int saved_errno = errno;
  char line[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof line, fmt, args);
  va_end(args);

  std::FILE* stream = g_stream.load(std::memory_order_relaxed);
  if (stream == nullptr) stream = stderr;
  const LogFormat format = log_format();
  {
    const std::scoped_lock lock(g_emit_mutex);
    if (format == LogFormat::kJson) {
      std::fprintf(stream, "{\"ts\":%.3f,\"level\":\"%s\",\"msg\":\"%s\"}\n",
                   epoch_seconds(),
                   std::string(log_level_name(level)).c_str(),
                   json_escape(line).c_str());
    } else {
      std::fprintf(stream, "[mosaic %s] %s\n", level_tag(level), line);
    }
    if (level >= LogLevel::kError) std::fflush(stream);
  }
  errno = saved_errno;
}

}  // namespace mosaic::util
