#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mosaic::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t s = value;
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  MOSAIC_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  MOSAIC_ASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return lo + static_cast<std::int64_t>(r % range);
    }
  }
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) noexcept {
  MOSAIC_ASSERT(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  MOSAIC_ASSERT(lambda > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  MOSAIC_ASSERT(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    const double value = std::round(normal(mean, std::sqrt(mean)));
    return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
  }
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  MOSAIC_ASSERT(n >= 1);
  MOSAIC_ASSERT(s > 0.0);
  if (n == 1) return 1;
  // Devroye's rejection method for the bounded Zipf distribution.
  const double nd = static_cast<double>(n);
  const double one_minus_s = 1.0 - s;
  const auto h = [&](double x) {
    // Integral-based envelope helper.
    return one_minus_s == 0.0 ? std::log(x)
                              : (std::pow(x, one_minus_s) - 1.0) / one_minus_s;
  };
  const auto h_inv = [&](double y) {
    return one_minus_s == 0.0 ? std::exp(y)
                              : std::pow(1.0 + one_minus_s * y, 1.0 / one_minus_s);
  };
  const double hx0 = h(0.5) - 1.0;  // h(x0) shifted so x0 maps to rank 1
  const double hn = h(nd + 0.5);
  for (;;) {
    const double u = hx0 + uniform() * (hn - hx0);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(
        std::min(std::max(std::round(x), 1.0), nd));
    const double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return k;
    }
  }
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) {
    MOSAIC_ASSERT(w >= 0.0);
    total += w;
  }
  MOSAIC_ASSERT(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t index) const noexcept {
  std::uint64_t seed = state_[0];
  seed = mix64(seed ^ mix64(index + 0x9E3779B97F4A7C15ull));
  return Rng{seed};
}

}  // namespace mosaic::util
