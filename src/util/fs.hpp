// Crash-safe filesystem helpers.
//
// A killed `mosaic generate` (or batch writing its JSON summary) must never
// leave a torn half-file behind: downstream ingest would count it as one more
// corrupted trace and silently skew the funnel. write_file_atomic stages the
// payload in a temp file in the destination directory, flushes it to stable
// storage, then renames it into place — readers observe either the old file
// or the complete new one, never a prefix.
#pragma once

#include <string>
#include <string_view>

#include "util/error.hpp"

namespace mosaic::util {

/// Atomically replaces `path` with `contents` (temp file + fsync + rename).
/// The temp file lives next to `path` so the rename stays within one
/// filesystem; it is removed on any failure.
[[nodiscard]] Status write_file_atomic(const std::string& path,
                                       std::string_view contents);

/// Moves `path` into `directory` (created on demand), e.g. a quarantine dir.
/// Falls back to copy+remove when rename crosses filesystems. Returns the
/// destination path on success.
[[nodiscard]] Expected<std::string> move_file_into_dir(
    const std::string& path, const std::string& directory);

}  // namespace mosaic::util
