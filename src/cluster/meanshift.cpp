#include "cluster/meanshift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace mosaic::cluster {

PointSet::PointSet(std::size_t dim) : dim_(dim) { MOSAIC_ASSERT(dim >= 1); }

void PointSet::add(std::span<const double> point) {
  MOSAIC_ASSERT(point.size() == dim_);
  data_.insert(data_.end(), point.begin(), point.end());
}

void PointSet::reset(std::size_t dim) {
  MOSAIC_ASSERT(dim >= 1);
  dim_ = dim;
  data_.clear();
}

double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept {
  MOSAIC_ASSERT(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

PointSet min_max_scale(const PointSet& points) {
  PointSet scaled(points.dim());
  min_max_scale(points, scaled);
  return scaled;
}

void min_max_scale(const PointSet& points, PointSet& out) {
  const std::size_t dim = points.dim();
  const std::size_t n = points.size();
  MOSAIC_ASSERT(&out != &points);
  // Column extrema on the stack: feature embeddings are low-dimensional by
  // construction (the GridIndex shares the same ceiling).
  MOSAIC_ASSERT(dim <= GridIndex::kMaxDim);
  double lo[GridIndex::kMaxDim];
  double hi[GridIndex::kMaxDim];
  for (std::size_t d = 0; d < dim; ++d) {
    lo[d] = std::numeric_limits<double>::infinity();
    hi[d] = -std::numeric_limits<double>::infinity();
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = points.point(i);
    for (std::size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  out.reset(dim);
  out.data_.resize(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = points.point(i);
    for (std::size_t d = 0; d < dim; ++d) {
      const double range = hi[d] - lo[d];
      out.data_[i * dim + d] = range > 0.0 ? (p[d] - lo[d]) / range : 0.0;
    }
  }
}

std::uint64_t GridIndex::pack_key(
    std::span<const std::int64_t> coords) noexcept {
  // Zigzag-encode each signed cell coordinate (negatives interleave with
  // positives instead of wrapping to huge unsigned values), then fold into
  // one 64-bit key with a Fibonacci-style combiner. Collisions are harmless:
  // find_cell() always confirms the full coordinate tuple.
  std::uint64_t key = 0x9e3779b97f4a7c15ull;
  for (const std::int64_t c : coords) {
    const auto zigzag = (static_cast<std::uint64_t>(c) << 1) ^
                        static_cast<std::uint64_t>(c >> 63);
    key ^= zigzag + 0x9e3779b97f4a7c15ull + (key << 6) + (key >> 2);
  }
  // splitmix64 finalizer: spreads low-entropy cell coordinates across the
  // table so linear probing stays short.
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebull;
  key ^= key >> 31;
  return key;
}

std::uint32_t GridIndex::find_cell(
    std::span<const std::int64_t> coords) const noexcept {
  const std::uint64_t key = pack_key(coords);
  for (std::size_t idx = key & mask_;; idx = (idx + 1) & mask_) {
    const std::uint32_t cell = slots_[idx];
    if (cell == kNoCell) return kNoCell;
    if (cell_key_[cell] == key &&
        std::equal(coords.begin(), coords.end(),
                   cell_coords_.data() + cell * dim_)) {
      return cell;
    }
  }
}

void GridIndex::build(const PointSet& points, double cell) {
  points_ = &points;
  dim_ = points.dim();
  MOSAIC_ASSERT(dim_ <= kMaxDim);
  cell_ = std::max(cell, 1e-12);
  const std::size_t n = points.size();

  // Power-of-two table at <= 50% load (each point adds at most one cell).
  std::size_t capacity = 16;
  while (capacity < 2 * n) capacity <<= 1;
  slots_.assign(capacity, kNoCell);
  mask_ = capacity - 1;
  cell_key_.clear();
  cell_coords_.clear();
  point_cell_.resize(n);
  // cell_start_ doubles as the per-cell counter during the first pass.
  cell_start_.assign(1, 0);

  std::int64_t coords[kMaxDim];
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = points.point(i);
    for (std::size_t d = 0; d < dim_; ++d) coords[d] = cell_coord(p[d]);
    const std::uint64_t key = pack_key({coords, dim_});
    std::uint32_t cell_id = kNoCell;
    for (std::size_t idx = key & mask_;; idx = (idx + 1) & mask_) {
      const std::uint32_t existing = slots_[idx];
      if (existing == kNoCell) {
        cell_id = static_cast<std::uint32_t>(cell_key_.size());
        slots_[idx] = cell_id;
        cell_key_.push_back(key);
        cell_coords_.insert(cell_coords_.end(), coords, coords + dim_);
        cell_start_.push_back(0);
        break;
      }
      if (cell_key_[existing] == key &&
          std::equal(coords, coords + dim_,
                     cell_coords_.data() + existing * dim_)) {
        cell_id = existing;
        break;
      }
    }
    point_cell_[i] = cell_id;
    ++cell_start_[cell_id + 1];
  }

  // Counts -> CSR offsets; fill in ascending point order so each cell's list
  // preserves insertion order (the iteration-order contract of
  // for_neighbors()).
  const std::size_t cells = cell_key_.size();
  for (std::size_t c = 0; c < cells; ++c) cell_start_[c + 1] += cell_start_[c];
  cell_points_.resize(n);
  // cell_start_[c] serves as cell c's write cursor during the fill; the
  // shift below restores it to the CSR begin-offset array.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t cell_id = point_cell_[i];
    cell_points_[cell_start_[cell_id]] = static_cast<std::uint32_t>(i);
    ++cell_start_[cell_id];
  }
  for (std::size_t c = cells; c > 0; --c) cell_start_[c] = cell_start_[c - 1];
  cell_start_[0] = 0;
}

MeanShiftResult mean_shift(const PointSet& points,
                           const MeanShiftConfig& config) {
  MeanShiftWorkspace workspace;
  MeanShiftResult result;
  mean_shift(points, config, workspace, result);
  return result;
}

void mean_shift(const PointSet& points, const MeanShiftConfig& config,
                MeanShiftWorkspace& workspace, MeanShiftResult& out) {
  out.labels.clear();
  out.modes.clear();
  out.cluster_sizes.clear();
  out.total_iterations = 0;
  const std::size_t n = points.size();
  if (n == 0) return;
  MOSAIC_ASSERT(config.bandwidth > 0.0);

  const std::size_t dim = points.dim();
  const double h = config.bandwidth;
  // Gaussian support truncated at 3h; the grid cell must cover the largest
  // query radius used.
  const double support =
      config.kernel == Kernel::kGaussian ? 3.0 * h : h;
  workspace.grid.build(points, support);
  const GridIndex& index = workspace.grid;

  const double merge_radius =
      config.mode_merge_radius > 0.0 ? config.mode_merge_radius : h / 2.0;

  // Iterations-to-converge distribution: the knob the bandwidth ablation
  // turns (a too-small bandwidth shows up as points hitting max_iterations).
  static constexpr double kIterationEdges[] = {1, 2, 4, 8, 16, 32, 64, 128,
                                               256};
  static obs::Histogram& iterations_hist = obs::Registry::global().histogram(
      obs::names::kMeanShiftIterations, kIterationEdges,
      "Mean-Shift iterations until a point converged");
  static obs::Counter& points_counter = obs::Registry::global().counter(
      obs::names::kMeanShiftPoints, "points shifted by Mean-Shift");
  points_counter.add(n);

  // Shift every point to its density mode. converged is a flat n*dim store;
  // current/next swap roles each iteration instead of copying.
  workspace.converged.resize(n * dim);
  std::vector<double>& current = workspace.current;
  std::vector<double>& next = workspace.next;
  current.resize(dim);
  next.resize(dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto seed = points.point(i);
    current.assign(seed.begin(), seed.end());
    std::size_t iterations_used = config.max_iterations;
    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
      std::fill(next.begin(), next.end(), 0.0);
      double weight_sum = 0.0;
      index.for_neighbors(current, support, [&](std::size_t j) {
        const auto q = points.point(j);
        double w = 1.0;
        if (config.kernel == Kernel::kGaussian) {
          const double d2 = squared_distance(current, q);
          w = std::exp(-d2 / (2.0 * h * h));
        }
        for (std::size_t d = 0; d < dim; ++d) next[d] += w * q[d];
        weight_sum += w;
      });
      if (weight_sum <= 0.0) {  // isolated point: already a mode
        iterations_used = iter + 1;
        break;
      }
      double shift2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        next[d] /= weight_sum;
        const double delta = next[d] - current[d];
        shift2 += delta * delta;
      }
      current.swap(next);
      if (shift2 < config.convergence_tol * config.convergence_tol) {
        iterations_used = iter + 1;
        break;
      }
    }
    iterations_hist.observe(static_cast<double>(iterations_used));
    out.total_iterations += iterations_used;
    std::copy(current.begin(), current.end(),
              workspace.converged.data() + i * dim);
  }

  // Merge converged modes within merge_radius into clusters (modes is a flat
  // m*dim buffer; m is small in practice).
  const double merge2 = merge_radius * merge_radius;
  workspace.raw_label.resize(n);
  workspace.modes.clear();
  const auto converged_point = [&](std::size_t i) {
    return std::span<const double>{workspace.converged.data() + i * dim, dim};
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t mode_count = workspace.modes.size() / dim;
    std::size_t assigned = mode_count;
    for (std::size_t m = 0; m < mode_count; ++m) {
      const std::span<const double> mode{workspace.modes.data() + m * dim,
                                         dim};
      if (squared_distance(converged_point(i), mode) <= merge2) {
        assigned = m;
        break;
      }
    }
    if (assigned == mode_count) {
      const auto p = converged_point(i);
      workspace.modes.insert(workspace.modes.end(), p.begin(), p.end());
    }
    workspace.raw_label[i] = assigned;
  }

  // Renumber clusters by decreasing size (stable: ties keep first-seen order).
  const std::size_t mode_count = workspace.modes.size() / dim;
  workspace.sizes.assign(mode_count, 0);
  for (const std::size_t label : workspace.raw_label) {
    ++workspace.sizes[label];
  }
  workspace.order.resize(mode_count);
  std::iota(workspace.order.begin(), workspace.order.end(), 0);
  std::stable_sort(workspace.order.begin(), workspace.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return workspace.sizes[a] > workspace.sizes[b];
                   });
  workspace.rank.resize(mode_count);
  for (std::size_t r = 0; r < mode_count; ++r) {
    workspace.rank[workspace.order[r]] = r;
  }

  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.labels[i] = workspace.rank[workspace.raw_label[i]];
  }
  out.modes.resize(mode_count);
  out.cluster_sizes.resize(mode_count);
  for (std::size_t m = 0; m < mode_count; ++m) {
    out.modes[workspace.rank[m]].assign(
        workspace.modes.data() + m * dim,
        workspace.modes.data() + (m + 1) * dim);
    out.cluster_sizes[workspace.rank[m]] = workspace.sizes[m];
  }
}

}  // namespace mosaic::cluster
