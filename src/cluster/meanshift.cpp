#include "cluster/meanshift.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace mosaic::cluster {

PointSet::PointSet(std::size_t dim) : dim_(dim) { MOSAIC_ASSERT(dim >= 1); }

void PointSet::add(std::span<const double> point) {
  MOSAIC_ASSERT(point.size() == dim_);
  data_.insert(data_.end(), point.begin(), point.end());
}

double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept {
  MOSAIC_ASSERT(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

PointSet min_max_scale(const PointSet& points) {
  const std::size_t dim = points.dim();
  const std::size_t n = points.size();
  std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = points.point(i);
    for (std::size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  PointSet scaled(dim);
  std::vector<double> row(dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = points.point(i);
    for (std::size_t d = 0; d < dim; ++d) {
      const double range = hi[d] - lo[d];
      row[d] = range > 0.0 ? (p[d] - lo[d]) / range : 0.0;
    }
    scaled.add(row);
  }
  return scaled;
}

namespace {

/// Uniform-grid spatial index over the unit-scaled feature space. Cell size
/// equals the query radius so a neighborhood scan touches 3^dim cells.
class GridIndex {
 public:
  GridIndex(const PointSet& points, double cell)
      : points_(points), cell_(std::max(cell, 1e-12)) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      cells_[key_of(points.point(i))].push_back(i);
    }
  }

  /// Invokes `fn(index)` for every point within `radius` of `center`
  /// (radius must be <= cell size for the 1-ring scan to be exhaustive).
  template <typename Fn>
  void for_neighbors(std::span<const double> center, double radius,
                     Fn&& fn) const {
    MOSAIC_ASSERT(radius <= cell_ * (1.0 + 1e-9));
    const double r2 = radius * radius;
    std::vector<std::int64_t> base = key_of(center);
    std::vector<std::int64_t> probe(base.size());
    // Enumerate the 3^dim neighboring cells via odometer increment.
    const std::size_t dim = base.size();
    std::vector<int> offset(dim, -1);
    for (;;) {
      for (std::size_t d = 0; d < dim; ++d) probe[d] = base[d] + offset[d];
      if (const auto it = cells_.find(probe); it != cells_.end()) {
        for (const std::size_t i : it->second) {
          if (squared_distance(points_.point(i), center) <= r2) fn(i);
        }
      }
      std::size_t d = 0;
      while (d < dim && ++offset[d] > 1) {
        offset[d] = -1;
        ++d;
      }
      if (d == dim) break;
    }
  }

 private:
  [[nodiscard]] std::vector<std::int64_t> key_of(
      std::span<const double> p) const {
    std::vector<std::int64_t> key(p.size());
    for (std::size_t d = 0; d < p.size(); ++d) {
      key[d] = static_cast<std::int64_t>(std::floor(p[d] / cell_));
    }
    return key;
  }

  const PointSet& points_;
  double cell_;
  std::map<std::vector<std::int64_t>, std::vector<std::size_t>> cells_;
};

}  // namespace

MeanShiftResult mean_shift(const PointSet& points,
                           const MeanShiftConfig& config) {
  MeanShiftResult result;
  const std::size_t n = points.size();
  if (n == 0) return result;
  MOSAIC_ASSERT(config.bandwidth > 0.0);

  const std::size_t dim = points.dim();
  const double h = config.bandwidth;
  // Gaussian support truncated at 3h; the grid cell must cover the largest
  // query radius used.
  const double support =
      config.kernel == Kernel::kGaussian ? 3.0 * h : h;
  const GridIndex index(points, support);

  const double merge_radius =
      config.mode_merge_radius > 0.0 ? config.mode_merge_radius : h / 2.0;

  // Iterations-to-converge distribution: the knob the bandwidth ablation
  // turns (a too-small bandwidth shows up as points hitting max_iterations).
  static constexpr double kIterationEdges[] = {1, 2, 4, 8, 16, 32, 64, 128,
                                               256};
  static obs::Histogram& iterations_hist = obs::Registry::global().histogram(
      obs::names::kMeanShiftIterations, kIterationEdges,
      "Mean-Shift iterations until a point converged");
  static obs::Counter& points_counter = obs::Registry::global().counter(
      obs::names::kMeanShiftPoints, "points shifted by Mean-Shift");
  points_counter.add(n);

  // Shift every point to its density mode.
  std::vector<std::vector<double>> converged(n);
  std::vector<double> current(dim);
  std::vector<double> next(dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto seed = points.point(i);
    current.assign(seed.begin(), seed.end());
    std::size_t iterations_used = config.max_iterations;
    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
      std::fill(next.begin(), next.end(), 0.0);
      double weight_sum = 0.0;
      index.for_neighbors(current, support, [&](std::size_t j) {
        const auto q = points.point(j);
        double w = 1.0;
        if (config.kernel == Kernel::kGaussian) {
          const double d2 = squared_distance(current, q);
          w = std::exp(-d2 / (2.0 * h * h));
        }
        for (std::size_t d = 0; d < dim; ++d) next[d] += w * q[d];
        weight_sum += w;
      });
      if (weight_sum <= 0.0) {  // isolated point: already a mode
        iterations_used = iter + 1;
        break;
      }
      double shift2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        next[d] /= weight_sum;
        const double delta = next[d] - current[d];
        shift2 += delta * delta;
      }
      current = next;
      if (shift2 < config.convergence_tol * config.convergence_tol) {
        iterations_used = iter + 1;
        break;
      }
    }
    iterations_hist.observe(static_cast<double>(iterations_used));
    result.total_iterations += iterations_used;
    converged[i] = current;
  }

  // Merge converged modes within merge_radius into clusters.
  const double merge2 = merge_radius * merge_radius;
  std::vector<std::size_t> raw_label(n);
  std::vector<std::vector<double>> modes;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t assigned = modes.size();
    for (std::size_t m = 0; m < modes.size(); ++m) {
      if (squared_distance(converged[i], modes[m]) <= merge2) {
        assigned = m;
        break;
      }
    }
    if (assigned == modes.size()) modes.push_back(converged[i]);
    raw_label[i] = assigned;
  }

  // Renumber clusters by decreasing size (stable: ties keep first-seen order).
  std::vector<std::size_t> sizes(modes.size(), 0);
  for (const std::size_t label : raw_label) ++sizes[label];
  std::vector<std::size_t> order(modes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sizes[a] > sizes[b];
  });
  std::vector<std::size_t> rank(modes.size());
  for (std::size_t r = 0; r < order.size(); ++r) rank[order[r]] = r;

  result.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.labels[i] = rank[raw_label[i]];
  result.modes.resize(modes.size());
  result.cluster_sizes.resize(modes.size());
  for (std::size_t m = 0; m < modes.size(); ++m) {
    result.modes[rank[m]] = std::move(modes[m]);
    result.cluster_sizes[rank[m]] = sizes[m];
  }
  return result;
}

}  // namespace mosaic::cluster
