// k-means clustering (k-means++ seeding, Lloyd iterations).
//
// The paper's future work (§V) suggests making category determination "more
// automatic using clustering methods". This is the substrate for that
// experiment (bench/future_autocategories): traces are embedded as feature
// vectors of their measured behavior and clustered without reference to the
// hand-designed Table I rules; the alignment between discovered clusters and
// assigned categories is then measured with the adjusted Rand index.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/meanshift.hpp"  // PointSet
#include "util/rng.hpp"

namespace mosaic::cluster {

/// k-means configuration.
struct KMeansConfig {
  std::size_t k = 8;                ///< clusters (clamped to point count)
  std::size_t max_iterations = 100; ///< Lloyd iterations per restart
  double convergence_tol = 1e-6;  ///< stop when centroids move less
  std::uint64_t seed = 7;         ///< k-means++ seeding stream
  std::size_t restarts = 4;       ///< keep the lowest-inertia run
};

/// Clustering result.
struct KMeansResult {
  std::vector<std::size_t> labels;              ///< cluster per point
  std::vector<std::vector<double>> centroids;   ///< k centroids
  double inertia = 0.0;  ///< sum of squared distances to assigned centroids
};

/// Runs k-means over `points`. k is clamped to the number of points; empty
/// input yields an empty result.
[[nodiscard]] KMeansResult k_means(const PointSet& points,
                                   const KMeansConfig& config = {});

/// Adjusted Rand index between two partitions of the same item set, in
/// [-1, 1]; 1 means identical partitions, ~0 means chance agreement.
/// Precondition: equal sizes.
[[nodiscard]] double adjusted_rand_index(std::span<const std::size_t> a,
                                         std::span<const std::size_t> b);

}  // namespace mosaic::cluster
