// Mean-Shift clustering (Fukunaga & Hostetler 1975), implemented from
// scratch for MOSAIC's periodicity detector (paper §III-B3a).
//
// Segments of a trace are embedded as low-dimensional feature points
// (duration, volume); Mean-Shift finds density modes without a preset
// cluster count — exactly why the paper prefers it over k-means: a trace may
// contain zero, one or several periodic operations. Groups of size >= 2
// correspond to repeated (periodic) segments.
//
// The implementation offers the flat (uniform ball) kernel the classic
// algorithm uses and a Gaussian kernel, plus a uniform-grid neighborhood
// index that keeps iteration cost near O(n) for the small, well-separated
// point sets segmentation produces. The grid is an open-addressing flat hash
// over packed (zigzag-encoded) cell keys with CSR point lists, and all
// per-call scratch lives in a reusable MeanShiftWorkspace so the steady-state
// batch path runs allocation-free (DESIGN.md §12).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace mosaic::cluster {

/// Kernel used to weight neighbors during the shift step.
enum class Kernel : std::uint8_t {
  kFlat,      ///< uniform weight inside the bandwidth ball
  kGaussian,  ///< exp(-d^2 / (2 h^2)), truncated at 3h
};

/// Mean-Shift parameters.
struct MeanShiftConfig {
  double bandwidth = 0.12;   ///< kernel radius in feature space
  Kernel kernel = Kernel::kFlat;       ///< neighbor weighting
  std::size_t max_iterations = 200;   ///< per-point shift iterations
  double convergence_tol = 1e-5;      ///< stop when shift distance < tol
  double mode_merge_radius = -1.0;    ///< modes closer than this merge;
                                      ///< < 0 means bandwidth / 2
};

/// Clustering result. labels[i] is the cluster of point i; clusters are
/// numbered 0..mode_count-1 in decreasing size order.
struct MeanShiftResult {
  std::vector<std::size_t> labels;          ///< cluster index per input point
  std::vector<std::vector<double>> modes;   ///< converged mode per cluster
  std::vector<std::size_t> cluster_sizes;   ///< points per cluster
  std::size_t total_iterations = 0;         ///< shift iterations, all points
};

/// Squared Euclidean distance between two equal-length vectors.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b) noexcept;

/// A set of points with a fixed dimensionality, stored row-major in one
/// contiguous buffer (point i occupies data()[i*dim .. i*dim+dim)).
class PointSet {
 public:
  /// Precondition: dim >= 1.
  explicit PointSet(std::size_t dim);

  /// Appends one point. Precondition: point.size() == dim().
  void add(std::span<const double> point);

  /// Drops all points and switches to `dim` coordinates per point, keeping
  /// the underlying capacity. Lets a workspace reuse one PointSet across
  /// traces without reallocating. Precondition: dim >= 1.
  void reset(std::size_t dim);

  /// Number of coordinates per point.
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  /// Number of points.
  [[nodiscard]] std::size_t size() const noexcept {
    return data_.size() / dim_;
  }
  /// The i-th point as a dim()-length view.
  [[nodiscard]] std::span<const double> point(std::size_t i) const noexcept {
    return {data_.data() + i * dim_, dim_};
  }
  /// The whole row-major coordinate buffer.
  [[nodiscard]] std::span<const double> raw() const noexcept { return data_; }

 private:
  friend void min_max_scale(const PointSet& points, PointSet& out);

  std::size_t dim_;
  std::vector<double> data_;
};

/// Uniform-grid spatial index over a point set: an open-addressing flat hash
/// maps packed cell keys to CSR point lists, so a radius query touches the
/// 3^dim neighboring cells and nothing else. Cell size must be >= the query
/// radius for the 1-ring scan to be exhaustive.
///
/// Cell coordinates come from floor(p[d] / cell), which is exact for
/// negative coordinates too; keys are zigzag-packed so negative cells hash
/// without wrap-around, and lookups compare the full coordinate tuple, never
/// just the hash. All storage is reused across build() calls.
class GridIndex {
 public:
  /// Dimensionality ceiling of the stack-allocated cell-probe buffers.
  static constexpr std::size_t kMaxDim = 8;

  GridIndex() = default;

  /// (Re)builds the index over `points` with the given cell size (clamped to
  /// a small positive minimum). `points` must outlive the index; existing
  /// hash and CSR storage is reused. Precondition: points.dim() <= kMaxDim.
  void build(const PointSet& points, double cell);

  /// Invokes `fn(index)` for every point within `radius` of `center`, in
  /// cell-probe order (odometer over the 3^dim ring, first dimension
  /// fastest) and ascending point index within a cell — a deterministic
  /// order independent of hash layout. Precondition: radius <= cell size
  /// used at build().
  template <typename Fn>
  void for_neighbors(std::span<const double> center, double radius,
                     Fn&& fn) const {
    MOSAIC_ASSERT(radius <= cell_ * (1.0 + 1e-9));
    const double r2 = radius * radius;
    const std::size_t dim = dim_;
    std::int64_t base[kMaxDim];
    std::int64_t probe[kMaxDim];
    int offset[kMaxDim];
    for (std::size_t d = 0; d < dim; ++d) {
      base[d] = cell_coord(center[d]);
      offset[d] = -1;
    }
    // Enumerate the 3^dim neighboring cells via odometer increment.
    for (;;) {
      for (std::size_t d = 0; d < dim; ++d) probe[d] = base[d] + offset[d];
      if (const std::uint32_t cell = find_cell({probe, dim});
          cell != kNoCell) {
        for (std::uint32_t s = cell_start_[cell]; s < cell_start_[cell + 1];
             ++s) {
          const std::size_t i = cell_points_[s];
          if (squared_distance(points_->point(i), center) <= r2) fn(i);
        }
      }
      std::size_t d = 0;
      while (d < dim && ++offset[d] > 1) {
        offset[d] = -1;
        ++d;
      }
      if (d == dim) break;
    }
  }

 private:
  static constexpr std::uint32_t kNoCell = 0xffffffffu;

  [[nodiscard]] std::int64_t cell_coord(double v) const noexcept {
    return static_cast<std::int64_t>(std::floor(v / cell_));
  }
  [[nodiscard]] static std::uint64_t pack_key(
      std::span<const std::int64_t> coords) noexcept;
  [[nodiscard]] std::uint32_t find_cell(
      std::span<const std::int64_t> coords) const noexcept;

  const PointSet* points_ = nullptr;
  double cell_ = 1.0;
  std::size_t dim_ = 0;
  std::size_t mask_ = 0;                    ///< slot count - 1 (power of two)
  std::vector<std::uint32_t> slots_;        ///< open addressing: cell id
  std::vector<std::uint64_t> cell_key_;     ///< packed key per cell
  std::vector<std::int64_t> cell_coords_;   ///< dim coords per cell
  std::vector<std::uint32_t> cell_start_;   ///< CSR offsets (cells + 1)
  std::vector<std::uint32_t> cell_points_;  ///< CSR point indices
  std::vector<std::uint32_t> point_cell_;   ///< build scratch: cell per point
};

/// Reusable scratch for mean_shift(): the grid index plus the per-point
/// shift, label and mode-merge buffers. One instance per worker thread;
/// after the first few traces every buffer has reached its high-water
/// capacity and mean_shift() stops allocating (DESIGN.md §12). Contents are
/// an implementation detail of mean_shift().
struct MeanShiftWorkspace {
  GridIndex grid;                     ///< neighbor index, storage reused
  std::vector<double> converged;      ///< n*dim converged position per point
  std::vector<double> current;        ///< dim: position being shifted
  std::vector<double> next;           ///< dim: weighted neighbor mean
  std::vector<double> modes;          ///< flat m*dim merged mode buffer
  std::vector<std::size_t> raw_label; ///< first-seen mode per point
  std::vector<std::size_t> sizes;     ///< points per raw mode
  std::vector<std::size_t> order;     ///< modes sorted by decreasing size
  std::vector<std::size_t> rank;      ///< raw mode -> final cluster index
};

/// Rescales each coordinate to [0, 1] by column min/max (constant columns
/// map to 0). Returns the scaled copy; the original is untouched.
/// Equal-importance scaling is what makes one bandwidth meaningful across
/// the duration and volume axes.
[[nodiscard]] PointSet min_max_scale(const PointSet& points);

/// As above, but writes into `out` (reset to points.dim(), storage reused) —
/// the allocation-free form the analyzer workspace uses.
/// Precondition: `out` is not `points`.
void min_max_scale(const PointSet& points, PointSet& out);

/// Runs Mean-Shift over `points`. Empty input yields an empty result.
/// Convenience form: allocates a fresh workspace per call.
[[nodiscard]] MeanShiftResult mean_shift(const PointSet& points,
                                         const MeanShiftConfig& config = {});

/// Workspace form: all scratch comes from `workspace` and the clustering is
/// written into `out` (previous contents discarded, storage reused). Results
/// are identical to the convenience form bit for bit — workspaces only
/// change where the buffers live, never the arithmetic.
void mean_shift(const PointSet& points, const MeanShiftConfig& config,
                MeanShiftWorkspace& workspace, MeanShiftResult& out);

}  // namespace mosaic::cluster
