// Mean-Shift clustering (Fukunaga & Hostetler 1975), implemented from
// scratch for MOSAIC's periodicity detector (paper §III-B3a).
//
// Segments of a trace are embedded as low-dimensional feature points
// (duration, volume); Mean-Shift finds density modes without a preset
// cluster count — exactly why the paper prefers it over k-means: a trace may
// contain zero, one or several periodic operations. Groups of size >= 2
// correspond to repeated (periodic) segments.
//
// The implementation offers the flat (uniform ball) kernel the classic
// algorithm uses and a Gaussian kernel, plus a simple uniform-grid
// neighborhood index that keeps iteration cost near O(n) for the small,
// well-separated point sets segmentation produces.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace mosaic::cluster {

/// Kernel used to weight neighbors during the shift step.
enum class Kernel : std::uint8_t {
  kFlat,      ///< uniform weight inside the bandwidth ball
  kGaussian,  ///< exp(-d^2 / (2 h^2)), truncated at 3h
};

/// Mean-Shift parameters.
struct MeanShiftConfig {
  double bandwidth = 0.12;   ///< kernel radius in feature space
  Kernel kernel = Kernel::kFlat;
  std::size_t max_iterations = 200;   ///< per-point shift iterations
  double convergence_tol = 1e-5;      ///< stop when shift distance < tol
  double mode_merge_radius = -1.0;    ///< modes closer than this merge;
                                      ///< < 0 means bandwidth / 2
};

/// Clustering result. labels[i] is the cluster of point i; clusters are
/// numbered 0..mode_count-1 in decreasing size order.
struct MeanShiftResult {
  std::vector<std::size_t> labels;
  std::vector<std::vector<double>> modes;   ///< converged mode per cluster
  std::vector<std::size_t> cluster_sizes;   ///< points per cluster
  std::size_t total_iterations = 0;         ///< shift iterations, all points
};

/// A set of points with a fixed dimensionality, stored row-major.
class PointSet {
 public:
  /// Precondition: dim >= 1.
  explicit PointSet(std::size_t dim);

  /// Appends one point. Precondition: point.size() == dim().
  void add(std::span<const double> point);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return data_.size() / dim_;
  }
  [[nodiscard]] std::span<const double> point(std::size_t i) const noexcept {
    return {data_.data() + i * dim_, dim_};
  }
  [[nodiscard]] std::span<const double> raw() const noexcept { return data_; }

 private:
  std::size_t dim_;
  std::vector<double> data_;
};

/// Rescales each coordinate to [0, 1] by column min/max (constant columns
/// map to 0). Returns the scaled copy; the original is untouched.
/// Equal-importance scaling is what makes one bandwidth meaningful across
/// the duration and volume axes.
[[nodiscard]] PointSet min_max_scale(const PointSet& points);

/// Runs Mean-Shift over `points`. Empty input yields an empty result.
[[nodiscard]] MeanShiftResult mean_shift(const PointSet& points,
                                         const MeanShiftConfig& config = {});

/// Squared Euclidean distance between two equal-length vectors.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b) noexcept;

}  // namespace mosaic::cluster
