#include "cluster/fft.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <memory>
#include <numbers>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/simd.hpp"

namespace mosaic::cluster {

namespace {

// One cached transform plan: the bit-reversal swap list plus stage-packed
// twiddle tables (n - 1 values each direction; stage len contributes its
// len/2 factors). Both tables are generated with exactly the recurrence the
// cold path runs (w starts at 1 and accumulates w *= wlen), so a planned
// transform performs the same float operations in the same order as an
// unplanned one — bit-identical output, which the golden A/B test relies on.
struct FftPlan {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps;
  std::vector<std::complex<double>> forward;
  std::vector<std::complex<double>> inverse;
};

std::vector<std::complex<double>> stage_twiddles(std::size_t n, bool inverse) {
  std::vector<std::complex<double>> table;
  table.reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen{std::cos(angle), std::sin(angle)};
    std::complex<double> w{1.0, 0.0};
    for (std::size_t k = 0; k < len / 2; ++k) {
      table.push_back(w);
      w *= wlen;
    }
  }
  return table;
}

FftPlan make_plan(std::size_t n) {
  FftPlan plan;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      plan.swaps.emplace_back(static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j));
    }
  }
  plan.forward = stage_twiddles(n, /*inverse=*/false);
  plan.inverse = stage_twiddles(n, /*inverse=*/true);
  return plan;
}

// Plans are O(n) memory each, so the per-thread cache is capped; transforms
// larger than 2^kMaxCachedLog2 points take the cold path. The cache is
// thread-local because the batch analyzer runs one analysis per pool worker
// concurrently and plan lookup must stay synchronization-free.
constexpr std::size_t kMaxCachedLog2 = 16;

const FftPlan* cached_plan(std::size_t n) {
  if (n < 2 || n > (std::size_t{1} << kMaxCachedLog2)) return nullptr;
  thread_local std::array<std::unique_ptr<FftPlan>, kMaxCachedLog2 + 1> plans;
  auto& slot = plans[static_cast<std::size_t>(std::countr_zero(n))];
  if (!slot) slot = std::make_unique<FftPlan>(make_plan(n));
  return slot.get();
}

// The shared transform body. A null plan selects the cold path, which
// recomputes the permutation and twiddles inline (the original, reference
// implementation).
void transform(std::vector<std::complex<double>>& data, bool inverse,
               const FftPlan* plan) {
  const std::size_t n = data.size();
  if (n == 1) return;

  // Both paths multiply odd by the twiddle through simd::complex_mul_fma
  // (the scalar reference of the AVX2 fmaddsub butterfly), so planned,
  // cold, scalar-dispatch and AVX2 transforms all stay bit-identical.
  const util::simd::Level level = util::simd::active_level();
  if (plan != nullptr) {
    for (const auto& [i, j] : plan->swaps) std::swap(data[i], data[j]);
    const std::complex<double>* stage =
        (inverse ? plan->inverse : plan->forward).data();
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len / 2;
      for (std::size_t start = 0; start < n; start += len) {
        util::simd::fft_butterfly(data.data() + start,
                                  data.data() + start + half, stage, half,
                                  level);
      }
      stage += half;
    }
  } else {
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(data[i], data[j]);
    }

    // Butterfly passes. The twiddle recurrence (w *= wlen) matches the plan
    // tables exactly; the butterfly arithmetic goes through the same fused
    // complex multiply the planned path uses.
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double angle =
          (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
      const std::complex<double> wlen{std::cos(angle), std::sin(angle)};
      for (std::size_t start = 0; start < n; start += len) {
        std::complex<double> w{1.0, 0.0};
        for (std::size_t k = 0; k < len / 2; ++k) {
          const auto even = data[start + k];
          const auto odd =
              util::simd::complex_mul_fma(data[start + k + len / 2], w);
          data[start + k] = even + odd;
          data[start + k + len / 2] = even - odd;
          w *= wlen;
        }
      }
    }
  }

  if (inverse) {
    util::simd::complex_scale_div(data.data(), n, static_cast<double>(n),
                                  level);
  }
}

void observe_size(std::size_t n) {
  // Transform-size distribution: the DFT backend's cost driver, and the
  // first thing to check when frequency-mode periodicity slows a batch.
  static constexpr double kSizeEdges[] = {64,    256,    1024,   4096,
                                          16384, 65536,  262144, 1048576};
  static obs::Histogram& size_hist = obs::Registry::global().histogram(
      obs::names::kFftSize, kSizeEdges, "radix-2 FFT transform size");
  size_hist.observe(static_cast<double>(n));
}

}  // namespace

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  MOSAIC_ASSERT(n >= 1 && (n & (n - 1)) == 0);
  observe_size(n);
  transform(data, inverse, cached_plan(n));
}

void fft_uncached(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  MOSAIC_ASSERT(n >= 1 && (n & (n - 1)) == 0);
  observe_size(n);
  transform(data, inverse, nullptr);
}

std::vector<double> bin_series(
    std::span<const std::pair<double, double>> samples, double duration,
    double bin_seconds) {
  std::vector<double> series;
  bin_series(samples, duration, bin_seconds, series);
  return series;
}

void bin_series(std::span<const std::pair<double, double>> samples,
                double duration, double bin_seconds,
                std::vector<double>& series) {
  MOSAIC_ASSERT(duration > 0.0);
  MOSAIC_ASSERT(bin_seconds > 0.0);
  const auto bins = static_cast<std::size_t>(
      std::max(1.0, std::ceil(duration / bin_seconds)));
  series.assign(bins, 0.0);
  // Same index math as simd::bin_add's scalar reference: the clamp happens
  // in double space before the integer conversion, so out-of-range and NaN
  // times land in edge bins instead of hitting float-cast UB. In-range
  // samples map to the identical bins as the pre-clamp formulation.
  const double max_index = static_cast<double>(bins - 1);
  for (const auto& [time, weight] : samples) {
    double pos = std::floor(time / bin_seconds);
    pos = pos < max_index ? pos : max_index;
    pos = pos > 0.0 ? pos : 0.0;
    series[static_cast<std::size_t>(pos)] += weight;
  }
}

void bin_series(const double* times, const double* weights, std::size_t n,
                double duration, double bin_seconds,
                std::vector<double>& series) {
  MOSAIC_ASSERT(duration > 0.0);
  MOSAIC_ASSERT(bin_seconds > 0.0);
  const auto bins = static_cast<std::size_t>(
      std::max(1.0, std::ceil(duration / bin_seconds)));
  series.assign(bins, 0.0);
  util::simd::bin_add(times, weights, n, bin_seconds, series.data(), bins);
}

DftPeriodicity detect_periodicity_dft(std::span<const double> series,
                                      const DftDetectorConfig& config) {
  DftPeriodicity result;
  const std::size_t n = series.size();
  if (n < 8) return result;

  // --- Autocorrelation via Wiener-Khinchin (2x zero-padding makes the
  // circular autocorrelation linear over the lags of interest). ------------
  const std::size_t padded = next_pow2(2 * n);
  std::vector<std::complex<double>> work(padded, {0.0, 0.0});
  // Lane-structured sum and fused power spectrum: identical across SIMD
  // levels by construction (DESIGN.md §18), though the mean's association
  // differs from a plain sequential sum — part of the documented frequency-
  // backend regeneration in the A/B goldens.
  const double mean = util::simd::sum(series) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) work[i] = series[i] - mean;

  fft(work);
  util::simd::complex_norm(work.data(), padded);
  fft(work, /*inverse=*/true);

  const std::size_t max_lag = n / 2;
  if (max_lag < 4) return result;
  std::vector<double> acf(max_lag + 1);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    acf[lag] = work[lag].real();
  }
  if (acf[0] <= 0.0) return result;  // constant signal

  std::vector<double> prefix(max_lag + 2, 0.0);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    prefix[lag + 1] = prefix[lag] + acf[lag];
  }
  const auto range_sum = [&](std::size_t lo, std::size_t hi) {  // [lo, hi]
    lo = std::max<std::size_t>(lo, 1);
    hi = std::min(hi, max_lag);
    if (lo > hi) return 0.0;
    return prefix[hi + 1] - prefix[lo];
  };

  const auto min_lag = static_cast<std::size_t>(
      std::max(4.0, config.min_period_bins));
  if (min_lag >= max_lag) return result;

  // Noise scale of the autocorrelation, from a robust spread estimate over
  // the candidate lag range (median absolute value ~ 0.6745 sigma for a
  // centered Gaussian). A windowed sum of w noisy ACF values fluctuates
  // with sigma * sqrt(w), so detection must be gated on a z-score — a raw
  // mass fraction lets broadband noise through on fluctuation alone.
  double sigma_acf;
  {
    std::vector<double> magnitudes;
    magnitudes.reserve(max_lag - min_lag + 1);
    for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
      magnitudes.push_back(std::abs(acf[lag]));
    }
    const auto middle = magnitudes.begin() +
        static_cast<std::ptrdiff_t>(magnitudes.size() / 2);
    std::nth_element(magnitudes.begin(), middle, magnitudes.end());
    sigma_acf = magnitudes[magnitudes.size() / 2] / 0.6745;
    sigma_acf = std::max(sigma_acf, 1e-12 * acf[0]);
  }

  struct Confidence {
    double score = 0.0;  ///< prominence / attainable mass, in [0,1]
    double z = 0.0;      ///< prominence in noise sigmas
  };
  // Confidence at a lag: jitter smears a burst train's autocorrelation peak
  // over a window proportional to the lag, so the mass is integrated over a
  // +-5% window; subtracting equally sized flanking windows (prominence)
  // cancels any slow baseline.
  const auto confidence = [&](std::size_t lag) {
    Confidence c;
    const auto halfwidth = static_cast<std::size_t>(
        std::max(1.0, 0.05 * static_cast<double>(lag)));
    const double center = range_sum(lag - halfwidth, lag + halfwidth);
    const double left = range_sum(lag - 3 * halfwidth - 1, lag - halfwidth - 1);
    const double right =
        range_sum(lag + halfwidth + 1, lag + 3 * halfwidth + 1);
    const double prominence = center - 0.5 * (left + right);
    const double attainable =
        acf[0] * (1.0 - static_cast<double>(lag) / static_cast<double>(n));
    if (attainable <= 0.0) return c;
    const double window = static_cast<double>(2 * halfwidth + 1);
    c.score = std::clamp(prominence / attainable, 0.0, 1.0);
    c.z = prominence / (sigma_acf * std::sqrt(3.0 * window));
    return c;
  };
  // Required significance of a peak, in noise sigmas.
  constexpr double kMinZ = 4.0;

  // --- Candidate lags: local maxima of the confidence curve itself. The
  // prefix sums make each evaluation O(1), so a full scan over the lag
  // range is cheap and — unlike spectral peak picking — immune to harmonic
  // combs outshining the fundamental.
  std::vector<double> curve(max_lag + 1, 0.0);
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    curve[lag] = confidence(lag).score;
  }

  // Repeat evidence: a true period P elevates the autocorrelation at every
  // multiple of P, while a single coincidentally aligned pair of bursts
  // produces one isolated spike. Requiring mass at 2P kills those phantom
  // candidates (periods too long to repeat inside the window are exempt).
  const auto repeats = [&](std::size_t lag) {
    if (2 * lag > max_lag) return true;
    const Confidence second = confidence(2 * lag);
    return second.score >= 0.25 * curve[lag];
  };

  struct Scored {
    std::size_t lag;
    double score;
  };
  std::vector<Scored> scored;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    if (curve[lag] < config.min_score) continue;
    if (lag > min_lag && curve[lag] < curve[lag - 1]) continue;
    if (lag < max_lag && curve[lag] <= curve[lag + 1]) continue;
    const Confidence c = confidence(lag);
    if (c.z < kMinZ) continue;
    if (!repeats(lag)) continue;
    scored.push_back({lag, c.score});
  }
  constexpr std::size_t kMaxMultiple = 6;
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });

  for (const Scored& candidate : scored) {
    if (result.peaks.size() >= config.max_peaks) break;
    // Any lag related to an accepted period by an integer factor (either
    // way) is the same behavior.
    bool related = false;
    for (const SpectralPeak& accepted : result.peaks) {
      const double accepted_lag = accepted.period_seconds / config.bin_seconds;
      const double ratio = accepted_lag > static_cast<double>(candidate.lag)
                               ? accepted_lag / static_cast<double>(candidate.lag)
                               : static_cast<double>(candidate.lag) / accepted_lag;
      const double nearest = std::round(ratio);
      if (nearest >= 1.0 && std::abs(ratio - nearest) < 0.1 * nearest) {
        related = true;
        break;
      }
    }
    if (related) continue;
    // Divide down to the fundamental: a multiple of the true period scores
    // as high or higher (its window also grows), so take the smallest
    // divisor that retains most of the confidence.
    std::size_t best_lag = candidate.lag;
    double best_score = candidate.score;
    for (std::size_t m = kMaxMultiple; m >= 2; --m) {
      const auto sub = static_cast<std::size_t>(std::llround(
          static_cast<double>(candidate.lag) / static_cast<double>(m)));
      if (sub < min_lag) continue;
      const Confidence c = confidence(sub);
      if (c.score >= 0.25 * candidate.score && c.z >= kMinZ) {
        best_lag = sub;
        best_score = c.score;
        break;  // largest m first -> smallest fundamental
      }
    }
    // The confidence curve is plateau-shaped (windowed sums), so the chosen
    // lag can sit a few bins off the true period; snap to the raw ACF
    // argmax inside the window.
    {
      const auto halfwidth = static_cast<std::size_t>(
          std::max(1.0, 0.05 * static_cast<double>(best_lag)));
      std::size_t snapped = best_lag;
      for (std::size_t l = best_lag > halfwidth ? best_lag - halfwidth : min_lag;
           l <= std::min(max_lag, best_lag + halfwidth); ++l) {
        if (acf[l] > acf[snapped]) snapped = l;
      }
      best_lag = snapped;
    }
    SpectralPeak peak;
    peak.period_seconds = static_cast<double>(best_lag) * config.bin_seconds;
    peak.power = acf[best_lag];
    peak.score = best_score;
    result.peaks.push_back(peak);
  }

  std::sort(result.peaks.begin(), result.peaks.end(),
            [](const SpectralPeak& a, const SpectralPeak& b) {
              return a.score > b.score;
            });
  result.periodic = !result.peaks.empty();
  return result;
}

}  // namespace mosaic::cluster
