// Radix-2 FFT and a frequency-domain periodicity detector.
//
// The paper's future work (§V) points at signal-processing techniques
// (Tarraf et al., IPDPS 2024) for periodic I/O detection. MOSAIC ships that
// baseline so the ablation bench can compare it against the segmentation +
// Mean-Shift approach — including the failure case the paper cites: two
// intricate (superposed) periodic behaviors.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace mosaic::cluster {

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// Repeated transforms of the same size reuse a thread-local plan (bit-
/// reversal swap list + per-stage twiddle tables), so the per-call setup cost
/// is amortized across a batch. Plans are precomputed with exactly the
/// arithmetic of the cold path, making cached and uncached transforms
/// bit-identical (see fft_uncached and DESIGN.md §12). Sizes above the cache
/// cap fall back to the cold path automatically.
/// Precondition: data.size() is a power of two (>= 1).
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Reference cold path: same transform as fft() but recomputing the
/// bit-reversal permutation and twiddle factors on every call, never touching
/// the plan cache. Exists so tests can assert the cached path is bit-identical
/// and as the fallback for transforms too large to cache.
/// Precondition: data.size() is a power of two (>= 1).
void fft_uncached(std::vector<std::complex<double>>& data,
                  bool inverse = false);

/// Next power of two >= n (n == 0 -> 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// One detected spectral peak.
struct SpectralPeak {
  double period_seconds = 0.0;  ///< 1 / frequency
  double power = 0.0;           ///< |X(f)|^2 at the fundamental bin
  /// Harmonic-comb score in [0,1]: the fraction of AC power captured by the
  /// fundamental and its harmonics, in excess of the white-noise baseline.
  /// Burst trains concentrate energy in the comb, so this is the robust
  /// periodicity measure (a lone-bin share under-reports spike trains).
  double score = 0.0;
};

/// Configuration for the DFT periodicity detector.
struct DftDetectorConfig {
  double bin_seconds = 1.0;     ///< time-series resolution
  double min_score = 0.15;      ///< dominance required to call it periodic
  std::size_t max_peaks = 3;    ///< strongest peaks reported
  double min_period_bins = 2.0; ///< ignore periods below Nyquist-adjacent noise
};

/// Result of frequency-domain analysis of one activity signal.
struct DftPeriodicity {
  bool periodic = false;
  std::vector<SpectralPeak> peaks;  ///< sorted by decreasing comb score
};

/// Bins (time, weight) samples into a fixed-step series over [0, duration).
[[nodiscard]] std::vector<double> bin_series(
    std::span<const std::pair<double, double>> samples, double duration,
    double bin_seconds);

/// As above, but writes into `out` (resized and zeroed, capacity reused) —
/// the allocation-free form used by the analyzer workspace.
void bin_series(std::span<const std::pair<double, double>> samples,
                double duration, double bin_seconds, std::vector<double>& out);

/// Columnar form: separate time/weight columns, scatter-added through the
/// runtime-dispatched simd::bin_add kernel. Bit-identical to the pair form
/// for the same samples in the same order.
void bin_series(const double* times, const double* weights, std::size_t n,
                double duration, double bin_seconds, std::vector<double>& out);

/// Detects periodicity in an activity time series via the power spectrum:
/// mean-removed signal -> FFT -> dominant peak test against min_score.
[[nodiscard]] DftPeriodicity detect_periodicity_dft(
    std::span<const double> series, const DftDetectorConfig& config = {});

}  // namespace mosaic::cluster
