#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace mosaic::cluster {

namespace {

/// One k-means run from a k-means++ seeding.
KMeansResult run_once(const PointSet& points, std::size_t k,
                      std::size_t max_iterations, double tol,
                      util::Rng& rng) {
  const std::size_t n = points.size();
  const std::size_t dim = points.dim();

  // k-means++ seeding: first centroid uniform, the rest proportional to the
  // squared distance to the nearest chosen centroid.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  {
    const auto first = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto p = points.point(first);
    centroids.emplace_back(p.begin(), p.end());
  }
  std::vector<double> nearest_d2(n, 0.0);
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& centroid : centroids) {
        best = std::min(best, squared_distance(points.point(i), centroid));
      }
      nearest_d2[i] = best;
      total += best;
    }
    if (total <= 0.0) break;  // fewer distinct points than k
    double target = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= nearest_d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    const auto p = points.point(chosen);
    centroids.emplace_back(p.begin(), p.end());
  }
  const std::size_t actual_k = centroids.size();

  // Lloyd iterations.
  KMeansResult result;
  result.labels.assign(n, 0);
  std::vector<std::vector<double>> sums(actual_k, std::vector<double>(dim));
  std::vector<std::size_t> counts(actual_k);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Assign.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < actual_k; ++c) {
        const double d2 = squared_distance(points.point(i), centroids[c]);
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      result.labels[i] = best_c;
    }
    // Update.
    for (auto& sum : sums) std::fill(sum.begin(), sum.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = points.point(i);
      auto& sum = sums[result.labels[i]];
      for (std::size_t d = 0; d < dim; ++d) sum[d] += p[d];
      ++counts[result.labels[i]];
    }
    double moved = 0.0;
    for (std::size_t c = 0; c < actual_k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t d = 0; d < dim; ++d) {
        const double updated =
            sums[c][d] / static_cast<double>(counts[c]);
        const double delta = updated - centroids[c][d];
        moved += delta * delta;
        centroids[c][d] = updated;
      }
    }
    if (moved < tol * tol) break;
  }

  result.centroids = std::move(centroids);
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia +=
        squared_distance(points.point(i), result.centroids[result.labels[i]]);
  }
  return result;
}

}  // namespace

KMeansResult k_means(const PointSet& points, const KMeansConfig& config) {
  KMeansResult best;
  const std::size_t n = points.size();
  if (n == 0) return best;
  const std::size_t k = std::min(std::max<std::size_t>(config.k, 1), n);

  util::Rng master(config.seed);
  for (std::size_t restart = 0; restart < std::max<std::size_t>(
                                              config.restarts, 1);
       ++restart) {
    util::Rng rng = master.fork(restart);
    KMeansResult candidate = run_once(points, k, config.max_iterations,
                                      config.convergence_tol, rng);
    if (restart == 0 || candidate.inertia < best.inertia) {
      best = std::move(candidate);
    }
  }
  return best;
}

double adjusted_rand_index(std::span<const std::size_t> a,
                           std::span<const std::size_t> b) {
  MOSAIC_ASSERT(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 1.0;

  // Contingency table.
  std::map<std::pair<std::size_t, std::size_t>, double> joint;
  std::map<std::size_t, double> rows;
  std::map<std::size_t, double> cols;
  for (std::size_t i = 0; i < n; ++i) {
    joint[{a[i], b[i]}] += 1.0;
    rows[a[i]] += 1.0;
    cols[b[i]] += 1.0;
  }
  const auto choose2 = [](double m) { return m * (m - 1.0) / 2.0; };
  double sum_joint = 0.0;
  for (const auto& [key, count] : joint) sum_joint += choose2(count);
  double sum_rows = 0.0;
  for (const auto& [key, count] : rows) sum_rows += choose2(count);
  double sum_cols = 0.0;
  for (const auto& [key, count] : cols) sum_cols += choose2(count);
  const double total = choose2(static_cast<double>(n));
  const double expected = sum_rows * sum_cols / total;
  const double maximum = 0.5 * (sum_rows + sum_cols);
  if (maximum - expected == 0.0) return 1.0;  // both partitions trivial
  return (sum_joint - expected) / (maximum - expected);
}

}  // namespace mosaic::cluster
