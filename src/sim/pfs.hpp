// Parallel file-system performance model.
//
// The trace generator needs realistic durations for I/O windows: a 2 TiB
// checkpoint does not land in a millisecond, and op duration drives the
// busy-time categories and the temporal footprint of every synthetic trace.
// The model is a Lustre-like abstraction calibrated on Blue Waters' scratch
// tier (360 OSSs / 1440 OSTs, ~1 TB/s aggregate): a transfer is striped over
// a bounded number of OSTs, each contributing fixed bandwidth, degraded by a
// concurrency factor as more ranks pile onto the same stripes, plus a
// per-request metadata latency floor.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace mosaic::sim {

/// Static description of the storage tier.
struct PfsConfig {
  std::uint32_t ost_count = 1440;          ///< object storage targets
  double ost_bandwidth = 1.2e9;            ///< bytes/s per OST (spec ~1.7 TB/s
                                           ///< aggregate; sustained lower)
  std::uint32_t default_stripe_count = 4;  ///< Lustre default striping
  /// Efficiency lost when many client ranks share a stripe set; the
  /// effective bandwidth is multiplied by 1 / (1 + sharing_penalty *
  /// log2(ranks_per_stripe)) — a standard contention curve shape.
  double sharing_penalty = 0.15;
  /// Latency floor per operation (open + RPC round trips), seconds.
  double op_latency = 0.005;
  /// Metadata server service rate (requests/s); the Mistral-like saturation
  /// point the paper cites is ~3000 req/s.
  double mds_rate = 3000.0;
};

/// Deterministic performance model over a PfsConfig.
class PfsModel {
 public:
  explicit PfsModel(PfsConfig config = {}) : config_(config) {
    MOSAIC_ASSERT(config_.ost_count >= 1);
    MOSAIC_ASSERT(config_.ost_bandwidth > 0.0);
  }

  /// Wall-clock seconds for `bytes` moved by `ranks` cooperating processes
  /// over `stripe_count` OSTs (0 -> default stripe count).
  [[nodiscard]] double transfer_seconds(std::uint64_t bytes,
                                        std::uint32_t ranks,
                                        std::uint32_t stripe_count = 0) const;

  /// Seconds for the metadata server to absorb `requests` requests.
  [[nodiscard]] double metadata_seconds(std::uint64_t requests) const;

  /// Aggregate bandwidth (bytes/s) seen by `ranks` over `stripe_count` OSTs.
  [[nodiscard]] double effective_bandwidth(std::uint32_t ranks,
                                           std::uint32_t stripe_count = 0) const;

  [[nodiscard]] const PfsConfig& config() const noexcept { return config_; }

 private:
  PfsConfig config_;
};

}  // namespace mosaic::sim
