// Ground-truth export: the generator knows which categories it planted in
// every synthetic trace (the substitute for the paper's manual validation of
// 512 sampled traces, §IV-E). This module serializes that knowledge as a
// JSONL sidecar (`mosaic generate --truth`) so a later `mosaic report
// --confusion` run can join provenance records against it without re-running
// the generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/appspec.hpp"
#include "util/error.hpp"

namespace mosaic::sim {

/// One trace's ground truth, as written to the truth JSONL sidecar.
struct TruthRecord {
  std::string app_key;
  std::uint64_t job_id = 0;
  std::string archetype;   ///< population archetype the spec came from
  bool ambiguous = false;  ///< planted on a classifier decision boundary
  std::vector<std::string> categories;  ///< intended labels, by name
};

/// Extracts truth records from a generated population. Corrupted traces are
/// skipped — corruption voids the planted truth (paper §III-B1).
[[nodiscard]] std::vector<TruthRecord> truth_records(
    const std::vector<LabeledTrace>& population);

/// Writes records as JSONL (one compact object per line) via the atomic
/// temp+rename writer.
[[nodiscard]] util::Status write_truth_jsonl(
    const std::vector<TruthRecord>& records, const std::string& path);

/// Reads a truth JSONL file. Blank lines are skipped; a malformed line is an
/// error naming its line number.
[[nodiscard]] util::Expected<std::vector<TruthRecord>> read_truth_jsonl(
    const std::string& path);

}  // namespace mosaic::sim
