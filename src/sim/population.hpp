// Year-scale synthetic trace population, calibrated against the Blue Waters
// 2019 marginals reported in the paper.
//
// A population is a mixture of application archetypes. Each archetype has a
// share of the *unique applications* and a heavy-tailed rerun-count
// distribution; the product of the two shapes both the single-run and the
// all-runs statistics (Tables II/III, Fig. 4) — the paper's key observation
// that a few metadata/IO-heavy applications run enormously often falls out
// of the rerun tail. 32% of executions are corrupted in place, feeding the
// Fig. 3 funnel.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/generator.hpp"

namespace mosaic::sim {

/// One population component.
struct Archetype {
  AppSpec spec;
  Intent intent;
  double app_fraction = 0.0;  ///< share of unique applications
  double mean_runs = 1.0;     ///< mean executions per application
};

/// The default mixture, hand-calibrated so that MOSAIC's output on the
/// population approximates the Blue Waters 2019 numbers (see EXPERIMENTS.md
/// for paper-vs-measured).
[[nodiscard]] std::vector<Archetype> blue_waters_profile();

/// Population generation parameters.
struct PopulationConfig {
  /// Total executions to synthesize. Default is 1/10 of the 462,502 traces
  /// of Blue Waters 2019 — scale up with --scale in the benches.
  std::size_t target_traces = 46250;
  /// Fraction of executions corrupted in place (paper Fig. 3: 32%).
  double corruption_fraction = 0.32;
  /// Master seed; every derived stream forks from it.
  std::uint64_t seed = 20190410;
  /// Multiplier on every archetype's mean_runs (sweeps the dedup ratio).
  double runs_scale = 1.0;
  /// Also record DXT-level per-operation events in every LabeledTrace
  /// (costs memory; used by the aggregation ablation).
  bool emit_dxt = false;
  /// Archetype mixture; empty selects blue_waters_profile().
  std::vector<Archetype> archetypes;
};

/// A generated population in execution order.
struct Population {
  std::vector<LabeledTrace> traces;
  std::size_t app_count = 0;  ///< distinct (user, app) pairs generated
};

/// Generates the population. Deterministic for a given config, including
/// when a thread pool is supplied (per-app RNG streams are forked from the
/// master seed, and assembly order is fixed).
[[nodiscard]] Population generate_population(
    const PopulationConfig& config, parallel::ThreadPool* pool = nullptr);

/// Strips labels: just the traces, as the analysis pipeline receives them.
[[nodiscard]] std::vector<trace::Trace> to_traces(Population population);

}  // namespace mosaic::sim
