#include "sim/interference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/merge.hpp"

namespace mosaic::sim {

namespace {

/// One operation's state inside the fluid simulation.
struct FlowOp {
  double start = 0.0;
  double remaining_bytes = 0.0;
  double solo_rate = 0.0;  ///< bytes/s when uncontended
  int job = 0;             ///< 0 = a, 1 = b
  bool active = false;
  bool done = false;
  double finish = 0.0;     ///< filled when the op completes
};

}  // namespace

JobLoad job_load_from_trace(const trace::Trace& trace) {
  JobLoad load;
  load.nprocs = trace.meta.nprocs;
  for (const trace::OpKind kind : {trace::OpKind::kRead, trace::OpKind::kWrite}) {
    auto ops = core::merge_ops(trace::extract_ops(trace, kind),
                               trace.meta.run_time);
    load.ops.insert(load.ops.end(), ops.begin(), ops.end());
  }
  std::sort(load.ops.begin(), load.ops.end(),
            [](const trace::IoOp& x, const trace::IoOp& y) {
              return x.start < y.start;
            });
  load.metadata = trace::metadata_timeline(trace);
  return load;
}

InterferenceResult simulate_pair(const JobLoad& a, const JobLoad& b,
                                 const InterferenceConfig& config) {
  const PfsModel pfs(config.pfs);
  InterferenceResult result;

  // Solo baselines and flow-op setup.
  std::vector<FlowOp> flows;
  const auto add_job = [&](const JobLoad& job, int index, JobOutcome& outcome) {
    const double rate = pfs.effective_bandwidth(job.nprocs);
    for (const trace::IoOp& op : job.ops) {
      outcome.solo_io_seconds += pfs.transfer_seconds(op.bytes, job.nprocs);
      FlowOp flow;
      flow.start = op.start;
      flow.remaining_bytes = static_cast<double>(op.bytes);
      flow.solo_rate = rate;
      flow.job = index;
      flows.push_back(flow);
    }
  };
  add_job(a, 0, result.a);
  add_job(b, 1, result.b);

  const double capacity =
      config.shared_capacity_factor *
      std::max(pfs.effective_bandwidth(a.nprocs),
               pfs.effective_bandwidth(b.nprocs));

  // Event-driven fluid simulation: events are op starts and the earliest
  // projected completion at the current (proportionally throttled) rates.
  std::sort(flows.begin(), flows.end(),
            [](const FlowOp& x, const FlowOp& y) { return x.start < y.start; });
  std::size_t next_start = 0;
  double now = flows.empty() ? 0.0 : flows.front().start;
  std::size_t remaining = flows.size();

  while (remaining > 0) {
    // Activate everything that has started by `now`.
    while (next_start < flows.size() && flows[next_start].start <= now + 1e-12) {
      if (!flows[next_start].done) flows[next_start].active = true;
      ++next_start;
    }

    // Current demand and throttle factor.
    double demand = 0.0;
    bool job_active[2] = {false, false};
    for (const FlowOp& flow : flows) {
      if (flow.active && !flow.done) {
        demand += flow.solo_rate;
        job_active[flow.job] = true;
      }
    }

    if (demand <= 0.0) {
      // Idle gap: jump to the next op start.
      if (next_start >= flows.size()) break;  // nothing left to run
      now = flows[next_start].start;
      continue;
    }
    const double throttle = demand > capacity ? capacity / demand : 1.0;

    // Next event: the earliest completion at current rates, or next start.
    double next_event = std::numeric_limits<double>::infinity();
    if (next_start < flows.size()) next_event = flows[next_start].start;
    for (const FlowOp& flow : flows) {
      if (!flow.active || flow.done) continue;
      const double rate =
          std::max(flow.solo_rate * throttle, 1.0);  // floor avoids stalls
      next_event = std::min(next_event, now + flow.remaining_bytes / rate);
    }
    MOSAIC_ASSERT(std::isfinite(next_event));
    const double dt = std::max(next_event - now, 0.0);
    // Floating-point guard: at large `now`, a sub-ulp completion interval
    // rounds dt to zero and the loop would never drain the last bytes. Any
    // op within `time_epsilon` seconds of finishing completes at this event.
    const double time_epsilon = 1e-9 * (std::abs(now) + 1.0);

    // Integrate.
    if (job_active[0] && job_active[1]) result.overlap_seconds += dt;
    for (FlowOp& flow : flows) {
      if (!flow.active || flow.done) continue;
      const double rate = std::max(flow.solo_rate * throttle, 1.0);
      flow.remaining_bytes -= rate * dt;
      (flow.job == 0 ? result.a : result.b).shared_io_seconds += dt;
      if (flow.remaining_bytes <= rate * time_epsilon) {
        flow.done = true;
        flow.active = false;
        flow.finish = next_event;
        --remaining;
      }
    }
    now = next_event;
  }

  // Per-op latency floors count in both views identically.
  result.a.shared_io_seconds +=
      static_cast<double>(a.ops.size()) * config.pfs.op_latency;
  result.b.shared_io_seconds +=
      static_cast<double>(b.ops.size()) * config.pfs.op_latency;

  // Metadata overload: per-second combined request histogram vs MDS rate.
  if (!a.metadata.empty() || !b.metadata.empty()) {
    double horizon = 1.0;
    for (const auto& event : a.metadata) horizon = std::max(horizon, event.time);
    for (const auto& event : b.metadata) horizon = std::max(horizon, event.time);
    const auto seconds = static_cast<std::size_t>(std::ceil(horizon)) + 1;
    std::vector<double> requests(seconds, 0.0);
    const auto fill = [&](const std::vector<trace::MetaEvent>& events) {
      for (const auto& event : events) {
        const auto bin = static_cast<std::size_t>(
            std::clamp(event.time, 0.0, horizon));
        requests[bin] += static_cast<double>(event.requests);
      }
    };
    fill(a.metadata);
    fill(b.metadata);
    for (const double r : requests) {
      if (r > config.pfs.mds_rate) result.mds_overload_seconds += 1.0;
    }
  }

  return result;
}

}  // namespace mosaic::sim
