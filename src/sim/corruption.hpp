// Corruption injection for synthetic traces.
//
// The Blue Waters 2019 dataset loses 32% of its traces to corruption
// (paper Fig. 3); the canonical example given is a deallocation recorded
// before the end of the application's execution. The injector mutates an
// otherwise valid trace into one of the corruption classes the validator
// detects, so the pre-processing funnel and its eviction breakdown can be
// exercised end to end.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace mosaic::sim {

/// Supported mutation styles (each maps to a trace::CorruptionKind the
/// validator reports).
enum class CorruptionStyle : std::uint8_t {
  kDeallocationPastEnd,  ///< close timestamp beyond the job window
  kNegativeTimestamp,    ///< open timestamp below zero
  kInvertedWindow,       ///< close before open
  kNonFinite,            ///< NaN run time
  kCounterMismatch,      ///< bytes recorded with zero calls
  kZeroRuntime,          ///< run_time forced to zero
};

inline constexpr std::size_t kCorruptionStyleCount = 6;

/// Applies `style` to the trace in place. Traces without file records can
/// only take the job-level styles; the injector falls back to kZeroRuntime
/// in that case.
void corrupt_trace(trace::Trace& trace, CorruptionStyle style, util::Rng& rng);

/// Picks a style with the rough mix observed in practice (timing corruption
/// dominates).
[[nodiscard]] CorruptionStyle random_corruption_style(util::Rng& rng);

}  // namespace mosaic::sim
