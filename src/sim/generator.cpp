#include "sim/generator.hpp"

#include <algorithm>
#include <cmath>

#include "core/metadata.hpp"
#include "core/periodicity.hpp"

namespace mosaic::sim {

using core::Category;
using core::Temporality;
using trace::FileRecord;
using trace::OpKind;

namespace {

/// Marks intents whose realized geometry sits near a classifier boundary.
bool near_chunk_boundary(double frac) noexcept {
  for (const double boundary : {0.25, 0.5, 0.75}) {
    if (std::abs(frac - boundary) < 0.04) return true;
  }
  return false;
}

/// Approximate I/O call count for a byte volume (4 MiB average requests).
std::uint64_t call_count(std::uint64_t bytes) noexcept {
  return std::max<std::uint64_t>(1, bytes >> 22);
}

}  // namespace

LabeledTrace TraceGenerator::generate(const AppSpec& spec, const Intent& intent,
                                      const JobIdentity& id,
                                      util::Rng& rng) const {
  LabeledTrace out;
  out.archetype = spec.name;
  trace::Trace& t = out.trace;

  // --- Job shape -----------------------------------------------------------
  double runtime =
      rng.lognormal(std::log(spec.runtime_median), spec.runtime_sigma);
  runtime = std::clamp(runtime, 120.0, 7.0 * 86400.0);
  MOSAIC_ASSERT(spec.log2_nprocs_min <= spec.log2_nprocs_max);
  const auto nprocs = static_cast<std::uint32_t>(
      1u << rng.uniform_int(spec.log2_nprocs_min, spec.log2_nprocs_max));

  t.meta.job_id = id.job_id;
  t.meta.app_name = spec.name;
  t.meta.user = id.user;
  t.meta.nprocs = nprocs;
  t.meta.start_time = id.start_epoch;
  t.meta.run_time = runtime;

  // --- Plant bookkeeping ----------------------------------------------------
  std::uint64_t planted_read = 0;
  std::uint64_t planted_write = 0;
  bool ambiguous = false;

  const auto volume_noise = [&] {
    return rng.lognormal(0.0, spec.volume_sigma);
  };

  /// Adds one aggregated file record covering [t0, t1] moving `bytes`.
  std::uint32_t file_counter = 0;
  const auto add_record = [&](OpKind kind, std::uint64_t bytes, double t0,
                              double t1, std::uint64_t opens,
                              std::uint64_t seeks, const char* tag) {
    ++file_counter;
    t0 = std::clamp(t0, 0.0, runtime - 0.01);
    t1 = std::clamp(t1, t0 + 1e-4, runtime);
    FileRecord record;
    record.file_id =
        util::mix64(id.job_id * 0x9E3779B1ull + file_counter * 0x85EBCA77ull);
    record.file_name =
        "/scratch/" + id.user + "/" + spec.name + "/" + tag + "_" +
        std::to_string(file_counter);
    record.rank = trace::kSharedRank;
    record.opens = std::max<std::uint64_t>(opens, 1);
    record.closes = record.opens;
    record.seeks = seeks;
    record.open_ts = std::max(0.0, t0 - 0.02);
    record.close_ts = std::min(runtime, t1 + 0.05);
    if (bytes > 0) {
      if (kind == OpKind::kRead) {
        record.bytes_read = bytes;
        record.reads = call_count(bytes);
        record.first_read_ts = t0;
        record.last_read_ts = t1;
        planted_read += bytes;
      } else {
        record.bytes_written = bytes;
        record.writes = call_count(bytes);
        record.first_write_ts = t0;
        record.last_write_ts = t1;
        planted_write += bytes;
      }
    }
    t.files.push_back(std::move(record));
  };

  /// Records one fine-grained event as DXT would see it.
  const auto add_dxt = [&](OpKind kind, std::uint64_t bytes, double t0,
                           double t1) {
    if (!emit_dxt_ || bytes == 0) return;
    trace::IoOp op;
    op.start = std::clamp(t0, 0.0, runtime - 0.01);
    op.end = std::clamp(t1, op.start + 1e-4, runtime);
    op.bytes = bytes;
    op.kind = kind;
    out.dxt_ops.push_back(op);
  };

  /// Opens attributed to one planted element, from its share of the ranks.
  const auto elem_opens = [&](double factor, std::uint32_t files) {
    const double total = std::max(1.0, factor * static_cast<double>(nprocs));
    return static_cast<std::uint64_t>(
        std::max(1.0, std::round(total / std::max(1u, files))));
  };

  // --- Steady streams (aggregation hides any inner structure) ---------------
  for (const SteadySpec& steady : spec.steady) {
    const auto bytes = static_cast<std::uint64_t>(
        static_cast<double>(steady.bytes) * volume_noise());
    const double start_frac = std::clamp(
        steady.start_frac + rng.normal(0.0, steady.edge_jitter), 0.0, 0.9);
    const double end_frac = std::clamp(
        steady.end_frac + rng.normal(0.0, steady.edge_jitter),
        start_frac + 0.05, 1.0);
    // Long-open streams are written/read sequentially: essentially no SEEKs,
    // so their metadata footprint is the opens alone.
    add_record(steady.kind, bytes, start_frac * runtime, end_frac * runtime,
               elem_opens(0.25, 1), 0, "stream");
    if (emit_dxt_) {
      const double window_start = start_frac * runtime;
      const double window_end = end_frac * runtime;
      if (steady.inner_period > 0.0) {
        // The hidden truth: periodic appends inside the long-open window.
        const auto appends = static_cast<std::size_t>(std::max(
            1.0, std::floor((window_end - window_start) / steady.inner_period)));
        const std::uint64_t per_append =
            std::max<std::uint64_t>(1, bytes / appends);
        for (std::size_t i = 0; i < appends; ++i) {
          const double at = window_start +
                            static_cast<double>(i) * steady.inner_period +
                            rng.normal(0.0, 0.01 * steady.inner_period);
          const double duration = pfs_.transfer_seconds(per_append, nprocs);
          add_dxt(steady.kind, per_append, at, at + duration);
        }
      } else {
        add_dxt(steady.kind, bytes, window_start, window_end);
      }
    }
    // Shrunk coverage drives the chunk profile toward the steady-CV rule's
    // boundary; flag it so the accuracy report can attribute those errors.
    if (end_frac - start_frac < 0.7) ambiguous = true;
  }

  // --- One-off bursts --------------------------------------------------------
  for (const BurstSpec& burst : spec.bursts) {
    const auto bytes = static_cast<std::uint64_t>(
        static_cast<double>(burst.bytes) * volume_noise());
    const double position = std::clamp(
        burst.position_frac + rng.normal(0.0, burst.position_jitter), 0.0,
        0.985);
    const double start = position * runtime;
    const double duration =
        burst.duration_frac > 0.0
            ? burst.duration_frac * runtime * rng.lognormal(0.0, 0.25)
            : pfs_.transfer_seconds(bytes, nprocs) * rng.lognormal(0.0, 0.2);
    const std::uint64_t per_file_bytes =
        std::max<std::uint64_t>(1, bytes / std::max(1u, burst.file_count));
    for (std::uint32_t f = 0; f < burst.file_count; ++f) {
      // Rank desynchronization staggers the per-file windows slightly; the
      // merging passes must fuse them back into one burst.
      const double stagger = std::abs(rng.normal(0.0, spec.desync_sigma));
      const double widen = std::abs(rng.normal(0.0, spec.desync_sigma));
      add_record(burst.kind, per_file_bytes, start + stagger,
                 start + stagger + duration + widen,
                 elem_opens(1.0, burst.file_count), per_file_bytes >> 24,
                 "burst");
      add_dxt(burst.kind, per_file_bytes, start + stagger,
              start + stagger + duration + widen);
    }
    if (near_chunk_boundary(position)) ambiguous = true;
    // A wide window split substantially across a chunk boundary is exactly
    // the "operation unequally spread across multiple chunks" case the paper
    // blames for most errors.
    if (burst.duration_frac > 0.0) {
      const double window_end = position + duration / runtime;
      for (const double boundary : {0.25, 0.5, 0.75}) {
        if (position < boundary && window_end > boundary) {
          const double left = boundary - position;
          const double right = window_end - boundary;
          const double width = window_end - position;
          if (left > 0.25 * width && right > 0.25 * width) ambiguous = true;
        }
      }
    }
  }

  // --- Periodic operations (fresh files per burst stay visible) -------------
  struct RealizedPeriodic {
    OpKind kind;
    double period;
    double busy_ratio;
    std::size_t count;
  };
  std::vector<RealizedPeriodic> realized_periodic;
  for (const PeriodicSpec& periodic : spec.periodic) {
    const double window =
        (periodic.end_frac - periodic.start_frac) * runtime;
    const auto count = static_cast<std::size_t>(
        std::floor(window / periodic.period_seconds)) + 1;
    const auto burst_bytes = static_cast<std::uint64_t>(
        static_cast<double>(periodic.bytes_per_burst) * volume_noise());
    const double duration = pfs_.transfer_seconds(burst_bytes, nprocs);
    const std::uint64_t per_file_bytes = std::max<std::uint64_t>(
        1, burst_bytes / std::max(1u, periodic.files_per_burst));
    for (std::size_t i = 0; i < count; ++i) {
      const double jitter =
          rng.normal(0.0, periodic.period_jitter_frac * periodic.period_seconds);
      const double start = periodic.start_frac * runtime +
                           static_cast<double>(i) * periodic.period_seconds +
                           jitter;
      if (start + duration >= runtime) break;
      for (std::uint32_t f = 0; f < periodic.files_per_burst; ++f) {
        const double stagger = std::abs(rng.normal(0.0, spec.desync_sigma));
        add_record(periodic.kind, per_file_bytes, start + stagger,
                   start + stagger + duration,
                   elem_opens(1.0, periodic.files_per_burst),
                   per_file_bytes >> 24, "ckpt");
        add_dxt(periodic.kind, per_file_bytes, start + stagger,
                start + stagger + duration);
      }
    }
    realized_periodic.push_back({periodic.kind, periodic.period_seconds,
                                 duration / periodic.period_seconds, count});
  }

  // --- Metadata storms --------------------------------------------------------
  for (const MetaStormSpec& storm : spec.storms) {
    for (std::uint32_t s = 0; s < storm.spike_count; ++s) {
      const double at = storm.start_frac * runtime +
                        static_cast<double>(s) * storm.spacing_seconds;
      if (at >= runtime - 1.0) break;
      add_record(OpKind::kRead, 0, at, at + 0.2, storm.requests_per_spike / 2,
                 storm.requests_per_spike - storm.requests_per_spike / 2,
                 "meta");
    }
  }

  // --- Ambient activity (library loads, config files) ------------------------
  // The volume is heavy-tailed: a rare run drags in a massive software stack
  // whose loading crosses the significance threshold. Ground truth keeps
  // calling that insignificant (it is not application I/O), reproducing the
  // miscategorization mode the paper acknowledges for §III-A's thresholds.
  std::uint64_t ambient_bytes = 0;
  if (spec.ambient_opens > 0) {
    ambient_bytes = static_cast<std::uint64_t>(std::clamp(
        rng.lognormal(std::log(spec.ambient_mb_median * 1e6),
                      spec.ambient_mb_sigma),
        1e5, 1e9));
    add_record(OpKind::kRead, ambient_bytes, 0.0, 0.4, spec.ambient_opens, 0,
               "lib");
    planted_read -= ambient_bytes;  // not application I/O: excluded from truth
    if (static_cast<double>(ambient_bytes) >
        0.5 * static_cast<double>(thresholds_.min_bytes)) {
      ambiguous = true;
    }
  }

  // --- Ground truth -----------------------------------------------------------
  const std::uint64_t min_bytes = thresholds_.min_bytes;
  const Temporality read_label =
      planted_read < min_bytes ? Temporality::kInsignificant
                               : intent.read_temporality;
  const Temporality write_label =
      planted_write < min_bytes ? Temporality::kInsignificant
                                : intent.write_temporality;
  if (planted_read > 0 && static_cast<double>(planted_read) >
                              0.7 * static_cast<double>(min_bytes) &&
      static_cast<double>(planted_read) <
          1.4 * static_cast<double>(min_bytes)) {
    ambiguous = true;
  }
  if (planted_write > 0 && static_cast<double>(planted_write) >
                               0.7 * static_cast<double>(min_bytes) &&
      static_cast<double>(planted_write) <
          1.4 * static_cast<double>(min_bytes)) {
    ambiguous = true;
  }

  core::CategorySet truth;
  truth.insert(core::temporality_category(OpKind::kRead, read_label));
  truth.insert(core::temporality_category(OpKind::kWrite, write_label));

  for (const RealizedPeriodic& p : realized_periodic) {
    // Detectability needs >= 3 occurrences (two same-length segments), and
    // the kind must be significant — matching the pipeline's gating.
    const bool read_kind = p.kind == OpKind::kRead;
    const Temporality kind_label = read_kind ? read_label : write_label;
    if (p.count < 3 || kind_label == Temporality::kInsignificant) continue;
    truth.insert(read_kind ? Category::kReadPeriodic : Category::kWritePeriodic);
    switch (core::classify_period_magnitude(p.period, thresholds_)) {
      case core::PeriodMagnitude::kSecond:
        truth.insert(read_kind ? Category::kReadPeriodicSecond
                               : Category::kWritePeriodicSecond);
        break;
      case core::PeriodMagnitude::kMinute:
        truth.insert(read_kind ? Category::kReadPeriodicMinute
                               : Category::kWritePeriodicMinute);
        break;
      case core::PeriodMagnitude::kHour:
        truth.insert(read_kind ? Category::kReadPeriodicHour
                               : Category::kWritePeriodicHour);
        break;
      case core::PeriodMagnitude::kDayOrMore:
        truth.insert(read_kind ? Category::kReadPeriodicDayOrMore
                               : Category::kWritePeriodicDayOrMore);
        break;
    }
    if (p.busy_ratio >= thresholds_.busy_ratio_split) {
      truth.insert(read_kind ? Category::kReadPeriodicHighBusyTime
                             : Category::kWritePeriodicHighBusyTime);
    } else {
      truth.insert(read_kind ? Category::kReadPeriodicLowBusyTime
                             : Category::kWritePeriodicLowBusyTime);
    }
    if (p.count == 3) ambiguous = true;  // borderline detectability
  }

  // Metadata rules are definitional; applying them to the planted timeline
  // *is* the ground truth.
  const core::MetadataResult metadata_truth = core::classify_metadata(
      trace::metadata_timeline(t), runtime, nprocs, thresholds_);
  if (metadata_truth.insignificant) {
    truth.insert(Category::kMetadataInsignificantLoad);
  } else {
    if (metadata_truth.high_spike) truth.insert(Category::kMetadataHighSpike);
    if (metadata_truth.multiple_spikes) {
      truth.insert(Category::kMetadataMultipleSpikes);
    }
    if (metadata_truth.high_density) truth.insert(Category::kMetadataHighDensity);
  }

  out.truth.categories = truth;
  out.truth.ambiguous = ambiguous;
  return out;
}

}  // namespace mosaic::sim
