// Application behavior specifications for the trace generator.
//
// An AppSpec is a parametric model of one HPC application's I/O personality:
// which bursts, periodic operations, steady streams and metadata storms it
// performs, how large they are, and how desynchronized its ranks run. The
// generator realizes a spec into a Darshan-shaped Trace; because it knows
// what it planted, every synthetic trace carries ground-truth categories —
// the substitute for the paper's manual validation of 512 sampled traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/categories.hpp"
#include "trace/trace.hpp"

namespace mosaic::sim {

/// A repeated (checkpoint-like) operation: `count` bursts `period` seconds
/// apart, each moving `bytes_per_burst` split over `files_per_burst` files.
struct PeriodicSpec {
  trace::OpKind kind = trace::OpKind::kWrite;
  double period_seconds = 600.0;
  double period_jitter_frac = 0.02;   ///< per-burst start jitter (fraction
                                      ///< of the period)
  std::uint64_t bytes_per_burst = 1ull << 30;
  std::uint32_t files_per_burst = 1;  ///< distinct files per burst
  double start_frac = 0.05;           ///< first burst position (fraction of
                                      ///< runtime)
  double end_frac = 0.98;             ///< last possible burst position
};

/// A one-off burst at a position in the run (input read, final result, ...).
struct BurstSpec {
  trace::OpKind kind = trace::OpKind::kRead;
  double position_frac = 0.0;   ///< burst start as a fraction of runtime
  double position_jitter = 0.02;  ///< per-run Gaussian jitter on the position;
                                  ///< runs drifting across a chunk boundary
                                  ///< become the classifier's hard cases
  /// When > 0, the access window spans this fraction of the runtime instead
  /// of the PFS-derived transfer time — sloppy post-processing phases whose
  /// bytes spread unevenly across chunks (the paper's main error source).
  double duration_frac = 0.0;
  std::uint64_t bytes = 4ull << 30;
  std::uint32_t file_count = 1;
};

/// A long-open file accessed throughout execution. Darshan's aggregation
/// collapses it into one window spanning the run — the paper's "likely
/// actually periodic" steady case (§IV-A).
struct SteadySpec {
  trace::OpKind kind = trace::OpKind::kWrite;
  std::uint64_t bytes = 8ull << 30;
  double start_frac = 0.01;  ///< window begin
  double end_frac = 0.99;    ///< window end
  /// Per-run Gaussian jitter applied independently to both window edges;
  /// shrinking coverage pushes the chunk profile toward the steady-CV
  /// boundary, another of the classifier's hard cases.
  double edge_jitter = 0.0;
  /// When > 0, the stream is *actually periodic*: appends to the long-open
  /// file every inner_period seconds. Darshan's per-file aggregation hides
  /// this (one window spanning the run -> steady), which is the limitation
  /// the paper discusses in SIV-A; DXT-level traces reveal it.
  double inner_period = 0.0;
};

/// A deliberate assault on the metadata server: `spike_count` bursts of
/// `requests_per_spike` opens (of tiny files), `spacing_seconds` apart.
struct MetaStormSpec {
  double start_frac = 0.1;
  std::uint32_t spike_count = 8;
  std::uint32_t requests_per_spike = 300;
  double spacing_seconds = 30.0;
};

/// Complete I/O personality of an application.
struct AppSpec {
  std::string name;

  // Job shape. Runtime is lognormal(log(runtime_median), runtime_sigma);
  // nprocs is 2^U[log2_nprocs_min, log2_nprocs_max].
  double runtime_median = 3600.0;
  double runtime_sigma = 0.3;
  std::uint32_t log2_nprocs_min = 5;   ///< 32 ranks
  std::uint32_t log2_nprocs_max = 9;   ///< 512 ranks

  std::vector<PeriodicSpec> periodic;
  std::vector<BurstSpec> bursts;
  std::vector<SteadySpec> steady;
  std::vector<MetaStormSpec> storms;

  /// Std-dev (seconds) of rank desynchronization applied to burst windows.
  double desync_sigma = 0.5;
  /// Per-run scale noise applied to every byte volume (lognormal sigma).
  double volume_sigma = 0.1;
  /// Incidental metadata activity (library loads, rc files): opens spread at
  /// job start, roughly this many per run. Kept below nprocs for quiet apps.
  std::uint32_t ambient_opens = 2;
  /// Ambient read volume (library loading) in MB: lognormal(median, sigma).
  /// A heavy tail (sigma >~ 1) occasionally crosses the 100 MB significance
  /// threshold — the paper's stated limitation where massive library loading
  /// at start is miscategorized as application read_on_start (§III-A).
  double ambient_mb_median = 3.0;
  double ambient_mb_sigma = 0.5;
};

/// Ground-truth labels attached by the generator. `categories` holds the
/// intended category set; `ambiguous` marks traces the spec deliberately
/// places on a classifier boundary (e.g. a burst straddling two temporal
/// chunks), which are expected to account for most MOSAIC errors (§IV-E).
struct GroundTruth {
  core::CategorySet categories;
  bool ambiguous = false;
};

/// A generated trace bundled with its provenance.
struct LabeledTrace {
  trace::Trace trace;
  GroundTruth truth;
  std::string archetype;   ///< population archetype name
  bool corrupted = false;  ///< corruption was injected (truth then void)
  /// Fine-grained per-operation events, as Darshan's DXT module would have
  /// recorded them (only filled when the generator runs with emit_dxt).
  /// Where the aggregated trace collapses a long-open file into one window,
  /// dxt_ops keeps the individual accesses — the basis of the aggregation
  /// ablation (bench/ablation_aggregation).
  std::vector<trace::IoOp> dxt_ops;
};

}  // namespace mosaic::sim
