// Co-scheduling interference simulation (paper §V, long-term future work).
//
// The paper's end goal is concurrency-aware job scheduling: "identify
// whether some categories are more conflicting than others". This module
// provides the measurement substrate: a fluid-flow simulation of two jobs
// whose I/O operations share a storage allocation. Each operation demands
// its solo bandwidth; when the combined demand exceeds the shared capacity,
// all active operations are throttled proportionally, stretching their
// completion. The per-job slowdown (shared I/O time / solo I/O time) is the
// conflict measure, and the metadata timelines are checked against the
// metadata-server service rate for overload seconds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/pfs.hpp"
#include "trace/trace.hpp"

namespace mosaic::sim {

/// The I/O load of one job, as an operation stream plus its scale.
struct JobLoad {
  std::vector<trace::IoOp> ops;  ///< merged ops (any kind), sorted by start
  std::uint32_t nprocs = 1;
  std::vector<trace::MetaEvent> metadata;  ///< optional, for MDS overload
};

/// Interference simulation parameters.
struct InterferenceConfig {
  PfsConfig pfs{};
  /// Shared allocation capacity, as a multiple of the larger job's solo
  /// bandwidth. 2.0 means the pair never contends; 1.0 means either job
  /// alone saturates the allocation. Defaults to mild overcommit.
  double shared_capacity_factor = 1.5;
};

/// Per-job outcome of a co-scheduled run.
struct JobOutcome {
  double solo_io_seconds = 0.0;    ///< sum of op durations when run alone
  double shared_io_seconds = 0.0;  ///< same ops under contention

  /// >= 1; 1.0 means unaffected by the co-scheduled peer.
  [[nodiscard]] double slowdown() const noexcept {
    return solo_io_seconds > 0.0 ? shared_io_seconds / solo_io_seconds : 1.0;
  }
};

/// Result of simulating one job pair.
struct InterferenceResult {
  JobOutcome a;
  JobOutcome b;
  /// Wall-clock seconds during which both jobs had I/O in flight.
  double overlap_seconds = 0.0;
  /// Seconds in which the combined metadata request rate exceeded the
  /// metadata server's service rate.
  double mds_overload_seconds = 0.0;
};

/// Runs the fluid simulation for two jobs started at the same instant.
/// Operation start times are fixed (jobs are compute-bound between I/O
/// phases); only durations stretch under contention.
[[nodiscard]] InterferenceResult simulate_pair(
    const JobLoad& a, const JobLoad& b, const InterferenceConfig& config = {});

/// Convenience: builds a JobLoad from a trace (merged read + write ops and
/// the metadata timeline).
[[nodiscard]] JobLoad job_load_from_trace(const trace::Trace& trace);

}  // namespace mosaic::sim
