#include "sim/pfs.hpp"

#include <algorithm>
#include <cmath>

namespace mosaic::sim {

double PfsModel::effective_bandwidth(std::uint32_t ranks,
                                     std::uint32_t stripe_count) const {
  if (stripe_count == 0) stripe_count = config_.default_stripe_count;
  stripe_count = std::min(stripe_count, config_.ost_count);
  ranks = std::max<std::uint32_t>(ranks, 1);

  const double raw =
      static_cast<double>(stripe_count) * config_.ost_bandwidth;
  const double ranks_per_stripe = std::max(
      1.0, static_cast<double>(ranks) / static_cast<double>(stripe_count));
  const double contention =
      1.0 / (1.0 + config_.sharing_penalty * std::log2(ranks_per_stripe));
  return raw * contention;
}

double PfsModel::transfer_seconds(std::uint64_t bytes, std::uint32_t ranks,
                                  std::uint32_t stripe_count) const {
  const double bandwidth = effective_bandwidth(ranks, stripe_count);
  return config_.op_latency + static_cast<double>(bytes) / bandwidth;
}

double PfsModel::metadata_seconds(std::uint64_t requests) const {
  return static_cast<double>(requests) / config_.mds_rate;
}

}  // namespace mosaic::sim
