// Realizes AppSpecs into Darshan-shaped traces with ground-truth labels.
//
// The generator emits exactly what Blue Waters Darshan logs expose: per-file
// aggregated access windows and counters. It reproduces the dataset's known
// behaviors and pathologies — rank desynchronization (staggered windows that
// the merging passes must fuse), long-open files whose periodic accesses are
// hidden by aggregation, fresh-file-per-checkpoint patterns that stay
// visible, and metadata request storms.
#pragma once

#include "core/temporality.hpp"
#include "core/thresholds.hpp"
#include "sim/appspec.hpp"
#include "sim/pfs.hpp"
#include "util/rng.hpp"

namespace mosaic::sim {

/// Per-kind intent an archetype declares; realized volumes may demote a
/// label to insignificant (the generator re-checks against the thresholds).
struct Intent {
  core::Temporality read_temporality = core::Temporality::kInsignificant;
  core::Temporality write_temporality = core::Temporality::kInsignificant;
};

/// Identity of one synthetic execution.
struct JobIdentity {
  std::uint64_t job_id = 0;
  std::string user = "u0";
  double start_epoch = 1.5e9;
};

/// Spec realization engine. Stateless; all randomness comes from the Rng
/// passed per call, so population generation parallelizes with forked
/// streams.
class TraceGenerator {
 public:
  /// `emit_dxt` additionally records per-operation events in
  /// LabeledTrace::dxt_ops (what Darshan's DXT module would capture),
  /// including the inner structure that per-file aggregation hides.
  explicit TraceGenerator(PfsModel pfs = PfsModel{},
                          core::Thresholds thresholds = {},
                          bool emit_dxt = false)
      : pfs_(pfs), thresholds_(thresholds), emit_dxt_(emit_dxt) {}

  /// Generates one labeled trace for `spec` with the declared `intent`.
  [[nodiscard]] LabeledTrace generate(const AppSpec& spec, const Intent& intent,
                                      const JobIdentity& id,
                                      util::Rng& rng) const;

  [[nodiscard]] const PfsModel& pfs() const noexcept { return pfs_; }

 private:
  PfsModel pfs_;
  core::Thresholds thresholds_;
  bool emit_dxt_ = false;
};

}  // namespace mosaic::sim
