#include "sim/corruption.hpp"

#include <array>
#include <limits>

namespace mosaic::sim {

void corrupt_trace(trace::Trace& trace, CorruptionStyle style, util::Rng& rng) {
  const bool has_files = !trace.files.empty();
  if (!has_files && (style == CorruptionStyle::kDeallocationPastEnd ||
                     style == CorruptionStyle::kNegativeTimestamp ||
                     style == CorruptionStyle::kInvertedWindow ||
                     style == CorruptionStyle::kCounterMismatch)) {
    style = CorruptionStyle::kZeroRuntime;
  }

  const auto pick_file = [&]() -> trace::FileRecord& {
    const auto index = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(trace.files.size()) - 1));
    return trace.files[index];
  };

  switch (style) {
    case CorruptionStyle::kDeallocationPastEnd: {
      // The paper's example: the close lands beyond the job window, as if
      // the deallocation happened before the execution finished recording.
      trace::FileRecord& file = pick_file();
      file.close_ts = trace.meta.run_time * rng.uniform(1.5, 4.0) + 120.0;
      break;
    }
    case CorruptionStyle::kNegativeTimestamp: {
      trace::FileRecord& file = pick_file();
      file.open_ts = -rng.uniform(1.0, 1e4);
      break;
    }
    case CorruptionStyle::kInvertedWindow: {
      trace::FileRecord& file = pick_file();
      const double open = file.open_ts;
      file.open_ts = file.close_ts + rng.uniform(1.0, 60.0) + 2.0;
      file.close_ts = open;
      break;
    }
    case CorruptionStyle::kNonFinite:
      trace.meta.run_time = std::numeric_limits<double>::quiet_NaN();
      break;
    case CorruptionStyle::kCounterMismatch: {
      trace::FileRecord& file = pick_file();
      if (file.bytes_written > 0) {
        file.writes = 0;
      } else {
        file.bytes_read =
            std::max<std::uint64_t>(file.bytes_read, 1ull << 20);
        if (file.first_read_ts == trace::kNoTimestamp) {
          file.first_read_ts = file.open_ts;
          file.last_read_ts = file.close_ts;
        }
        file.reads = 0;
      }
      break;
    }
    case CorruptionStyle::kZeroRuntime:
      trace.meta.run_time = 0.0;
      break;
  }
}

CorruptionStyle random_corruption_style(util::Rng& rng) {
  // Timing-related corruption dominates real logs; the rest is a long tail.
  static constexpr std::array<double, kCorruptionStyleCount> kWeights{
      0.45,  // deallocation past end
      0.15,  // negative timestamp
      0.15,  // inverted window
      0.08,  // non-finite
      0.10,  // counter mismatch
      0.07,  // zero runtime
  };
  return static_cast<CorruptionStyle>(rng.categorical(kWeights));
}

}  // namespace mosaic::sim
