#include "sim/truth.hpp"

#include <fstream>
#include <sstream>

#include "json/json.hpp"
#include "util/fs.hpp"

namespace mosaic::sim {

namespace {

json::Value truth_to_json(const TruthRecord& record) {
  json::Object out;
  out.set("app_key", record.app_key);
  out.set("job_id", record.job_id);
  out.set("archetype", record.archetype);
  out.set("ambiguous", record.ambiguous);
  json::Array categories;
  categories.reserve(record.categories.size());
  for (const std::string& name : record.categories) {
    categories.emplace_back(name);
  }
  out.set("categories", std::move(categories));
  return out;
}

util::Expected<TruthRecord> truth_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return util::Error(util::ErrorCode::kParseError,
                       "truth record must be a JSON object");
  }
  const json::Object& object = value.as_object();
  TruthRecord record;
  if (const json::Value* v = object.find("app_key");
      v != nullptr && v->is_string()) {
    record.app_key = v->as_string();
  }
  if (const json::Value* v = object.find("job_id");
      v != nullptr && v->is_number()) {
    record.job_id = static_cast<std::uint64_t>(v->as_number());
  }
  if (const json::Value* v = object.find("archetype");
      v != nullptr && v->is_string()) {
    record.archetype = v->as_string();
  }
  if (const json::Value* v = object.find("ambiguous");
      v != nullptr && v->is_bool()) {
    record.ambiguous = v->as_bool();
  }
  if (const json::Value* v = object.find("categories");
      v != nullptr && v->is_array()) {
    for (const json::Value& item : v->as_array()) {
      if (!item.is_string()) {
        return util::Error(util::ErrorCode::kParseError,
                           "truth categories must be strings");
      }
      record.categories.push_back(item.as_string());
    }
  }
  return record;
}

}  // namespace

std::vector<TruthRecord> truth_records(
    const std::vector<LabeledTrace>& population) {
  std::vector<TruthRecord> records;
  records.reserve(population.size());
  for (const LabeledTrace& labeled : population) {
    if (labeled.corrupted) continue;  // corruption voids the planted truth
    TruthRecord record;
    record.app_key = labeled.trace.app_key();
    record.job_id = labeled.trace.meta.job_id;
    record.archetype = labeled.archetype;
    record.ambiguous = labeled.truth.ambiguous;
    record.categories = labeled.truth.categories.names();
    records.push_back(std::move(record));
  }
  return records;
}

util::Status write_truth_jsonl(const std::vector<TruthRecord>& records,
                               const std::string& path) {
  std::ostringstream out;
  for (const TruthRecord& record : records) {
    out << json::serialize(truth_to_json(record), /*pretty=*/false) << '\n';
  }
  return util::write_file_atomic(path, out.str());
}

util::Expected<std::vector<TruthRecord>> read_truth_jsonl(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return util::Error(util::ErrorCode::kNotFound,
                       "cannot open truth file " + path);
  }
  std::vector<TruthRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto parsed = json::parse(line);
    if (!parsed.has_value()) {
      return util::Error(util::ErrorCode::kParseError,
                         path + ":" + std::to_string(line_no) + ": " +
                             parsed.error().message);
    }
    auto record = truth_from_json(*parsed);
    if (!record.has_value()) {
      return util::Error(util::ErrorCode::kParseError,
                         path + ":" + std::to_string(line_no) + ": " +
                             record.error().message);
    }
    records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace mosaic::sim
