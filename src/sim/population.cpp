#include "sim/population.hpp"

#include <algorithm>
#include <cmath>

#include "sim/corruption.hpp"

namespace mosaic::sim {

using core::Temporality;
using trace::OpKind;

namespace {

/// Builders keep the archetype table below readable.
AppSpec base_spec(const char* name, double runtime_median, double sigma,
                  std::uint32_t log2_np_min, std::uint32_t log2_np_max) {
  AppSpec spec;
  spec.name = name;
  spec.runtime_median = runtime_median;
  spec.runtime_sigma = sigma;
  spec.log2_nprocs_min = log2_np_min;
  spec.log2_nprocs_max = log2_np_max;
  return spec;
}

BurstSpec burst(OpKind kind, double position, std::uint64_t bytes,
                std::uint32_t files = 2, double jitter = 0.02,
                double duration_frac = 0.0) {
  BurstSpec b;
  b.kind = kind;
  b.position_frac = position;
  b.position_jitter = jitter;
  b.duration_frac = duration_frac;
  b.bytes = bytes;
  b.file_count = files;
  return b;
}

SteadySpec steady(OpKind kind, std::uint64_t bytes, double start = 0.02,
                  double end = 0.98, double edge_jitter = 0.0,
                  double inner_period = 0.0) {
  SteadySpec s;
  s.kind = kind;
  s.bytes = bytes;
  s.start_frac = start;
  s.end_frac = end;
  s.edge_jitter = edge_jitter;
  s.inner_period = inner_period;
  return s;
}

PeriodicSpec periodic(OpKind kind, double period, std::uint64_t bytes,
                      std::uint32_t files = 1) {
  PeriodicSpec p;
  p.kind = kind;
  p.period_seconds = period;
  p.bytes_per_burst = bytes;
  p.files_per_burst = files;
  return p;
}

MetaStormSpec storm(double start, std::uint32_t spikes, std::uint32_t requests,
                    double spacing) {
  MetaStormSpec m;
  m.start_frac = start;
  m.spike_count = spikes;
  m.requests_per_spike = requests;
  m.spacing_seconds = spacing;
  return m;
}

Intent intent(Temporality read, Temporality write) {
  Intent i;
  i.read_temporality = read;
  i.write_temporality = write;
  return i;
}

constexpr std::uint64_t GiB = 1ull << 30;

}  // namespace

std::vector<Archetype> blue_waters_profile() {
  std::vector<Archetype> profile;
  const auto add = [&](AppSpec spec, Intent in, double fraction, double runs) {
    profile.push_back({std::move(spec), in, fraction, runs});
  };

  // 1. Quiet: the bulk of the machine does negligible I/O (85%+ of apps read
  //    or write under 100 MB). Ambient library loads only.
  {
    AppSpec spec = base_spec("quiet", 1800.0, 0.5, 4, 7);
    // Heavy-tailed library loading: ~2% of runs cross the 100 MB threshold.
    spec.ambient_mb_median = 10.0;
    // The dedup stage keeps the *heaviest* run per application, which
    // selects exactly the tail draws — sigma is set with that bias in mind.
    spec.ambient_mb_sigma = 1.07;
    add(std::move(spec),
        intent(Temporality::kInsignificant, Temporality::kInsignificant), 82.4,
        5.3);
  }

  // 2. Read-compute-write: the canonical simulation; input at start, result
  //    at the end. Drives the read_on_start <-> write_on_end correlation.
  {
    AppSpec spec = base_spec("sim_rcw", 3600.0, 0.35, 5, 9);
    spec.bursts.push_back(burst(OpKind::kRead, 0.015, 8 * GiB, 4));
    spec.bursts.push_back(burst(OpKind::kWrite, 0.93, 4 * GiB, 2));
    add(std::move(spec), intent(Temporality::kOnStart, Temporality::kOnEnd),
        4.5, 32.0);
  }

  // 3. Pure reader: ingests input, writes nothing significant.
  {
    AppSpec spec = base_spec("reader", 2700.0, 0.4, 5, 8);
    spec.bursts.push_back(burst(OpKind::kRead, 0.02, 6 * GiB, 3));
    add(std::move(spec),
        intent(Temporality::kOnStart, Temporality::kInsignificant), 0.7, 28.0);
  }

  // 4. Streaming writer: reads input, then keeps result files open for the
  //    whole run (Darshan aggregation -> write_steady). Output rotation
  //    creates periodic metadata spikes.
  {
    AppSpec spec = base_spec("stream_writer", 3600.0, 0.3, 5, 9);
    spec.bursts.push_back(burst(OpKind::kRead, 0.02, 4 * GiB, 2));
    // The long-open output is *actually* appended periodically; Darshan's
    // aggregation hides it (paper SIV-A) — the DXT ablation reveals it.
    spec.steady.push_back(
        steady(OpKind::kWrite, 24 * GiB, 0.02, 0.98, 0.0, 420.0));
    // Rare but massive output rotations: a high spike without the
    // five-second spike train that multiple_spikes requires.
    spec.storms.push_back(storm(0.05, 2, 280, 900.0));
    add(std::move(spec), intent(Temporality::kOnStart, Temporality::kSteady),
        1.0, 260.0);
  }

  // 5. Streaming reader (ML-style loader): one long-open dataset.
  {
    AppSpec spec = base_spec("ml_reader", 5400.0, 0.3, 5, 8);
    // Edge jitter occasionally shrinks the window toward the steady-CV
    // boundary — a deliberate hard case.
    spec.steady.push_back(steady(OpKind::kRead, 30 * GiB, 0.04, 0.94, 0.05));
    add(std::move(spec),
        intent(Temporality::kSteady, Temporality::kInsignificant), 1.5, 165.0);
  }

  // 6. Coupled in/out streams.
  {
    AppSpec spec = base_spec("coupled_sim", 7200.0, 0.3, 6, 9);
    spec.steady.push_back(steady(OpKind::kRead, 16 * GiB));
    spec.steady.push_back(
        steady(OpKind::kWrite, 20 * GiB, 0.02, 0.98, 0.0, 900.0));
    spec.storms.push_back(storm(0.05, 6, 300, 500.0));
    add(std::move(spec), intent(Temporality::kSteady, Temporality::kSteady),
        0.5, 330.0);
  }

  // 7. Minute-scale checkpointer: fresh files per burst stay visible to the
  //    segmentation (Table II minute bucket).
  {
    AppSpec spec = base_spec("ckpt_minute", 3600.0, 0.3, 6, 9);
    spec.periodic.push_back(periodic(OpKind::kWrite, 480.0, 3 * GiB / 2, 2));
    add(std::move(spec),
        intent(Temporality::kInsignificant, Temporality::kSteady), 1.2, 60.0);
  }

  // 8. Long simulation with hourly checkpoints and periodic input cycling —
  //    the paper's "both checkpointing and periodic reading" example
  //    (Table II hour bucket; the rare periodic-read population).
  {
    AppSpec spec = base_spec("ckpt_cycle", 28800.0, 0.25, 6, 9);
    spec.periodic.push_back(periodic(OpKind::kWrite, 7200.0, 4 * GiB, 2));
    spec.periodic.push_back(periodic(OpKind::kRead, 300.0, 3 * GiB / 4, 1));
    add(std::move(spec), intent(Temporality::kSteady, Temporality::kSteady),
        0.8, 45.0);
  }

  // 9. Post-processing shapes: mid-run reads with a final result write.
  {
    AppSpec spec = base_spec("postproc_early", 3600.0, 0.35, 5, 8);
    spec.bursts.push_back(
        burst(OpKind::kRead, 0.32, 4 * GiB, 2, 0.08, 0.16));
    spec.bursts.push_back(burst(OpKind::kWrite, 0.94, 2 * GiB, 1));
    add(std::move(spec), intent(Temporality::kAfterStart, Temporality::kOnEnd),
        1.0, 7.0);
  }
  {
    AppSpec spec = base_spec("postproc_late", 3600.0, 0.35, 5, 8);
    spec.bursts.push_back(
        burst(OpKind::kRead, 0.58, 4 * GiB, 2, 0.08, 0.16));
    spec.bursts.push_back(burst(OpKind::kWrite, 0.94, 2 * GiB, 1));
    add(std::move(spec), intent(Temporality::kBeforeEnd, Temporality::kOnEnd),
        0.8, 7.0);
  }
  {
    AppSpec spec = base_spec("midspan", 3600.0, 0.35, 5, 8);
    spec.steady.push_back(steady(OpKind::kRead, 6 * GiB, 0.28, 0.72, 0.06));
    spec.bursts.push_back(burst(OpKind::kWrite, 0.94, 3 * GiB / 2, 1));
    add(std::move(spec),
        intent(Temporality::kAfterStartBeforeEnd, Temporality::kOnEnd), 0.7,
        7.0);
  }

  // 10. Mid-run writers (out-of-core phases).
  {
    AppSpec spec = base_spec("ooc_early", 3600.0, 0.35, 5, 8);
    spec.bursts.push_back(
        burst(OpKind::kWrite, 0.33, 3 * GiB, 2, 0.08, 0.16));
    add(std::move(spec),
        intent(Temporality::kInsignificant, Temporality::kAfterStart), 1.0,
        9.0);
  }
  {
    AppSpec spec = base_spec("ooc_late", 3600.0, 0.35, 5, 8);
    spec.bursts.push_back(
        burst(OpKind::kWrite, 0.6, 3 * GiB, 2, 0.08, 0.16));
    add(std::move(spec),
        intent(Temporality::kInsignificant, Temporality::kBeforeEnd), 1.0,
        9.0);
  }

  // 11. Metadata bomb: reads a pile of small files up front and hammers the
  //     MDS throughout — the high_density population, rerun very often.
  {
    AppSpec spec = base_spec("file_bomb", 900.0, 0.2, 5, 8);
    spec.bursts.push_back(burst(OpKind::kRead, 0.02, GiB, 8));
    spec.bursts.push_back(burst(OpKind::kWrite, 0.95, 3 * GiB / 2, 2));
    spec.storms.push_back(storm(0.04, 60, 800, 12.0));
    add(std::move(spec), intent(Temporality::kOnStart, Temporality::kOnEnd),
        1.3, 60.0);
  }

  // 11b. Small-file ingest: a second metadata-dense shape (many tiny input
  //      files opened throughout), keeping high_density anchored to
  //      read_on_start as §IV-D observes.
  {
    AppSpec spec = base_spec("smallfile_ingest", 1100.0, 0.25, 5, 8);
    spec.bursts.push_back(burst(OpKind::kRead, 0.02, 3 * GiB / 2, 8));
    spec.bursts.push_back(burst(OpKind::kWrite, 0.94, GiB, 2));
    spec.storms.push_back(storm(0.04, 70, 800, 14.0));
    add(std::move(spec), intent(Temporality::kOnStart, Temporality::kOnEnd),
        0.7, 85.0);
  }

  // 12. Late-stage reader (staging / verification pass).
  {
    AppSpec spec = base_spec("staging_reader", 3600.0, 0.35, 5, 8);
    spec.bursts.push_back(
        burst(OpKind::kRead, 0.88, 3 * GiB, 2, 0.05, 0.1));
    add(std::move(spec),
        intent(Temporality::kOnEnd, Temporality::kInsignificant), 1.0, 6.0);
  }

  // 13. Defensive checkpointing at second scale with a high duty cycle —
  //     the rare periodic_high_busy_time population.
  {
    AppSpec spec = base_spec("defensive_ckpt", 1200.0, 0.25, 7, 9);
    spec.periodic.push_back(periodic(OpKind::kWrite, 30.0, 20 * GiB, 2));
    add(std::move(spec),
        intent(Temporality::kInsignificant, Temporality::kSteady), 0.1, 25.0);
  }

  return profile;
}

namespace {

/// Heavy-tailed rerun count with the archetype's mean: lognormal with
/// sigma s has mean = median * exp(s^2/2). Sigma balances realism (a few
/// applications rerun enormously often — the paper's LAMMPS runs ~12k times)
/// against the variance of all-runs statistics at bench scale.
std::size_t draw_runs(double mean_runs, util::Rng& rng) {
  constexpr double kSigma = 0.7;
  const double median =
      std::max(1.0, mean_runs) / std::exp(kSigma * kSigma / 2.0);
  const double draw = rng.lognormal(std::log(median), kSigma);
  return static_cast<std::size_t>(std::clamp(std::round(draw), 1.0, 5e4));
}

struct AppPlan {
  std::size_t archetype = 0;
  std::size_t app_index = 0;
  std::size_t runs = 0;
  std::size_t first_trace = 0;  ///< offset into the output vector
};

}  // namespace

Population generate_population(const PopulationConfig& config,
                               parallel::ThreadPool* pool) {
  const std::vector<Archetype>& archetypes =
      config.archetypes.empty() ? blue_waters_profile() : config.archetypes;
  MOSAIC_ASSERT(!archetypes.empty());

  util::Rng master(config.seed);
  std::vector<double> weights;
  weights.reserve(archetypes.size());
  for (const Archetype& archetype : archetypes) {
    weights.push_back(archetype.app_fraction);
  }

  // Plan applications until the execution budget is met. Archetypes are
  // allocated by largest deficit against their target fractions (stratified
  // rather than sampled) so the mixture composition is stable at any scale;
  // run counts and trace contents remain random.
  double weight_total = 0.0;
  for (const double w : weights) weight_total += w;
  std::vector<AppPlan> plans;
  std::vector<double> allocated(archetypes.size(), 0.0);
  std::size_t planned = 0;
  while (planned < config.target_traces) {
    std::size_t pick = 0;
    double best_deficit = -1e300;
    for (std::size_t a = 0; a < archetypes.size(); ++a) {
      const double target =
          weights[a] / weight_total * (static_cast<double>(plans.size()) + 1.0);
      const double deficit = target - allocated[a];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        pick = a;
      }
    }
    allocated[pick] += 1.0;
    AppPlan plan;
    plan.archetype = pick;
    plan.app_index = plans.size();
    plan.runs =
        draw_runs(archetypes[pick].mean_runs * config.runs_scale, master);
    plan.runs = std::min(plan.runs, config.target_traces - planned);
    plan.first_trace = planned;
    planned += plan.runs;
    plans.push_back(plan);
  }

  Population population;
  population.app_count = plans.size();
  population.traces.resize(planned);

  const TraceGenerator generator(PfsModel{}, core::Thresholds{},
                                 config.emit_dxt);
  const std::uint64_t corruption_salt = util::mix64(config.seed ^ 0xC0DEull);

  const auto realize_app = [&](const AppPlan& plan) {
    const Archetype& archetype = archetypes[plan.archetype];
    util::Rng rng = master.fork(0x5EED0000ull + plan.app_index);

    // Unique identity: same archetype, different application/user.
    AppSpec spec = archetype.spec;
    spec.name += "_v" + std::to_string(plan.app_index);
    const std::string user = "u" + std::to_string(plan.app_index);
    const double epoch_base = 1.5463e9 + rng.uniform(0.0, 300.0 * 86400.0);

    for (std::size_t r = 0; r < plan.runs; ++r) {
      JobIdentity id;
      id.job_id = 9000000 + plan.first_trace + r;
      id.user = user;
      id.start_epoch = epoch_base + static_cast<double>(r) * 3600.0;
      LabeledTrace labeled = generator.generate(spec, archetype.intent, id, rng);
      labeled.archetype = archetype.spec.name;  // base name, not the _v alias
      // Corruption is decided by a salted hash of the job id so the decision
      // is stable regardless of generation order.
      util::Rng corruption_rng(util::mix64(id.job_id ^ corruption_salt));
      if (corruption_rng.chance(config.corruption_fraction)) {
        corrupt_trace(labeled.trace, random_corruption_style(corruption_rng),
                      corruption_rng);
        labeled.corrupted = true;
      }
      population.traces[plan.first_trace + r] = std::move(labeled);
    }
  };

  if (pool != nullptr) {
    parallel::parallel_for(*pool, plans.size(),
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               realize_app(plans[i]);
                             }
                           });
  } else {
    for (const AppPlan& plan : plans) realize_app(plan);
  }
  return population;
}

std::vector<trace::Trace> to_traces(Population population) {
  std::vector<trace::Trace> traces;
  traces.reserve(population.traces.size());
  for (LabeledTrace& labeled : population.traces) {
    traces.push_back(std::move(labeled.trace));
  }
  return traces;
}

}  // namespace mosaic::sim
