// Bounded thread pool used to parallelize per-trace analysis.
//
// The paper's Python implementation distributes trace processing with Dispy;
// here a fixed pool of worker threads drains a mutex-protected task queue.
// Per-trace pipelines are independent, so a simple FIFO queue with chunked
// parallel_for scheduling gives near-linear scaling until the memory bus
// saturates (the paper reports memory as the bottleneck, §IV-E).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace mosaic::parallel {

/// Fixed-size worker pool. Tasks are void() callables; exceptions thrown by
/// a task are captured and rethrown from wait_idle()/submit futures.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 -> hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. Rethrows the
  /// first exception captured from a task since the previous wait_idle().
  /// Further exceptions captured in the same interval are counted (see
  /// suppressed_error_count) and logged, never silently dropped.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Sentinel returned by worker_index() off a pool thread.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// Index of the calling pool worker in [0, thread_count()), or kNotAWorker
  /// when called from a thread no pool owns. Stable for the thread's
  /// lifetime, which lets callers keep one scratch workspace per worker
  /// (e.g. core::analyze_preprocessed) without any synchronization.
  [[nodiscard]] static std::size_t worker_index() noexcept;

  /// Total exceptions swallowed because an earlier one was already pending
  /// rethrow. Monotonic over the pool's lifetime.
  [[nodiscard]] std::size_t suppressed_error_count() const noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::size_t suppressed_errors_ = 0;
};

/// Partitions [0, count) into contiguous chunks and runs `body(begin, end)`
/// on the pool. Blocks until every chunk completes; rethrows task errors.
/// `grain` caps scheduling overhead: chunks hold at least `grain` items.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1);

/// Maps `fn` over `inputs` in parallel, preserving order of results.
template <typename In, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<In>& inputs, Fn&& fn)
    -> std::vector<decltype(fn(inputs.front()))> {
  using Out = decltype(fn(inputs.front()));
  std::vector<Out> results(inputs.size());
  parallel_for(pool, inputs.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) results[i] = fn(inputs[i]);
  });
  return results;
}

}  // namespace mosaic::parallel
