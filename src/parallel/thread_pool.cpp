#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/profiler.hpp"
#include "util/log.hpp"

namespace mosaic::parallel {

namespace {

/// Pool-wide instruments, shared by every pool in the process (the CLI runs
/// one). Handles are resolved once; updates are relaxed atomics.
struct PoolMetrics {
  obs::Gauge& threads;
  obs::Gauge& queue_depth;
  obs::Gauge& active_workers;
  obs::Counter& tasks;
  obs::Histogram& task_ms;
  obs::Counter& suppressed_errors;

  static PoolMetrics& get() {
    static PoolMetrics instance{
        obs::Registry::global().gauge(obs::names::kPoolThreads,
                                      "worker threads in the pool"),
        obs::Registry::global().gauge(obs::names::kPoolQueueDepth,
                                      "tasks waiting in the pool queue"),
        obs::Registry::global().gauge(obs::names::kPoolActiveWorkers,
                                      "workers currently running a task"),
        obs::Registry::global().counter(obs::names::kPoolTasks,
                                        "tasks executed by the pool"),
        obs::Registry::global().histogram(obs::names::kPoolTaskMs,
                                          obs::latency_buckets_ms(),
                                          "task execution latency"),
        obs::Registry::global().counter(
            obs::names::kPoolSuppressedErrors,
            "task exceptions dropped behind a pending rethrow"),
    };
    return instance;
  }
};

/// The owning pool's index for this worker thread; kNotAWorker elsewhere.
thread_local std::size_t tls_worker_index = ThreadPool::kNotAWorker;

}  // namespace

std::size_t ThreadPool::worker_index() noexcept { return tls_worker_index; }

std::size_t ThreadPool::suppressed_error_count() const noexcept {
  const std::scoped_lock lock(mutex_);
  return suppressed_errors_;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  PoolMetrics::get().threads.set(static_cast<std::int64_t>(threads));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      tls_worker_index = i;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MOSAIC_ASSERT(task != nullptr);
  {
    const std::scoped_lock lock(mutex_);
    MOSAIC_ASSERT(!stopping_);
    queue_.push_back(std::move(task));
    PoolMetrics::get().queue_depth.set(
        static_cast<std::int64_t>(queue_.size()));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
      metrics.active_workers.set(static_cast<std::int64_t>(active_));
    }
    try {
      // Root profiler frame: samples inside tasks whose stages are too fast
      // to hold a span scope still attribute to the pool instead of idling.
      const obs::ProfilerFrame profiler_frame("pool-task");
      const obs::ScopedTimerMs timer(metrics.task_ms);
      task();
      metrics.tasks.add();
    } catch (const std::exception& e) {
      metrics.tasks.add();
      const std::scoped_lock lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      } else {
        ++suppressed_errors_;
        metrics.suppressed_errors.add();
        MOSAIC_LOG_WARN("thread pool: suppressing task error behind a "
                        "pending one: %s", e.what());
      }
    } catch (...) {
      metrics.tasks.add();
      const std::scoped_lock lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      } else {
        ++suppressed_errors_;
        metrics.suppressed_errors.add();
        MOSAIC_LOG_WARN("thread pool: suppressing non-std task error behind "
                        "a pending one");
      }
    }
    {
      const std::scoped_lock lock(mutex_);
      --active_;
      metrics.active_workers.set(static_cast<std::int64_t>(active_));
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);
  // Oversubscribe chunks 4x relative to threads so stragglers rebalance,
  // but never below the grain size.
  const std::size_t target_chunks = pool.thread_count() * 4;
  const std::size_t chunk =
      std::max(grain, (count + target_chunks - 1) / target_chunks);
  for (std::size_t begin = 0; begin < count; begin += chunk) {
    const std::size_t end = std::min(count, begin + chunk);
    pool.submit([&body, begin, end] { body(begin, end); });
  }
  pool.wait_idle();
}

}  // namespace mosaic::parallel
