#include "dist/dispatch.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <limits>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "darshan/io.hpp"
#include "dist/journal.hpp"
#include "dist/protocol.hpp"
#include "dist/task_runner.hpp"
#include "dist/telemetry.hpp"
#include "ingest/shard.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "parallel/thread_pool.hpp"
#include "report/partial.hpp"
#include "util/backoff.hpp"
#include "util/log.hpp"

namespace mosaic::dist {

using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

namespace {

struct DispatchMetrics {
  obs::Counter& done;
  obs::Counter& retries;
  obs::Counter& reassigned;
  obs::Counter& quarantined;
  obs::Counter& workers_lost;
  obs::Counter& degraded;
  obs::Counter& resumed;
  obs::Counter& heartbeats;
  obs::Histogram& task_ms;
  obs::Histogram& connect_ms;

  static DispatchMetrics& get() {
    static auto& registry = obs::Registry::global();
    static DispatchMetrics metrics{
        registry.counter(obs::names::kDispatchTasksDone,
                         "shard tasks that reached done"),
        registry.counter(obs::names::kDispatchRetries,
                         "task re-requests after a retryable failure"),
        registry.counter(obs::names::kDispatchReassigned,
                         "tasks orphaned by a worker failure"),
        registry.counter(obs::names::kDispatchQuarantined,
                         "tasks given up on after repeated failure"),
        registry.counter(obs::names::kDispatchWorkersLost,
                         "workers declared permanently dead"),
        registry.counter(obs::names::kDispatchDegradedTasks,
                         "tasks the manager ran in-process"),
        registry.counter(obs::names::kDispatchResumedTasks,
                         "task outcomes replayed from the journal"),
        registry.counter(obs::names::kDispatchHeartbeats,
                         "heartbeat frames received from workers"),
        registry.histogram(obs::names::kDispatchTaskMs,
                           obs::latency_buckets_ms(),
                           "per-attempt wall time seen by the manager"),
        registry.histogram(obs::names::kDispatchConnectMs,
                           obs::latency_buckets_ms(),
                           "worker connect + hello handshake latency"),
    };
    return metrics;
  }
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class TaskState { kQueued, kAssigned, kDone, kQuarantined };

/// One shard task and its full lifecycle state.
struct Task {
  ingest::ShardSpec shard;
  std::vector<std::string> paths;  ///< pre-filtered to owned files

  TaskState state = TaskState::kQueued;
  std::size_t attempts = 0;  ///< assignments consumed (global counter)
  std::set<std::string> failed_workers;
  double eligible_at_ms = 0.0;  ///< backoff gate for re-queued tasks
  util::ExponentialBackoff backoff{50.0, 2.0, 2000.0};
  std::string last_error;

  // Terminal facts.
  std::string worker;
  std::string partial_path;
};

/// Why one task attempt on a live connection ended.
enum class AttemptResult {
  kDone,            ///< partial received, validated, persisted
  kRetryable,       ///< corrupt/unparseable frame: re-request, conn fine
  kTaskFailed,      ///< worker reported kTaskError, conn fine
  kFatalArtifact,   ///< schema-invalid partial: quarantine, conn fine
  kConnectionLost,  ///< death / hang / deadline: reassign, conn dead
};

/// The shared scheduler: task table + stats + journal behind one mutex.
class Scheduler {
 public:
  Scheduler(const DispatchOptions& options, std::vector<Task> tasks)
      : options_(options), tasks_(std::move(tasks)) {
    for (const Task& task : tasks_) {
      if (task.state == TaskState::kQueued) ++open_;
    }
    if (options_.telemetry != nullptr) {
      // The hub's staleness horizon is the scheduler's hang detector: a
      // worker silent past the grace is both "hung" here and "stale" there.
      options_.telemetry->set_heartbeat_grace(
          options_.heartbeat_grace_seconds);
      options_.telemetry->set_shard_total(tasks_.size());
      for (const Task& task : tasks_) {
        // Resumed shards enter the board already done.
        push_board(task,
                   task.state == TaskState::kDone ? "done" : "queued",
                   task.worker);
      }
    }
  }

  [[nodiscard]] Status open_journal() {
    if (options_.journal_path.empty()) return Status::success();
    return journal_.open(options_.journal_path);
  }

  enum class Claim { kTask, kFinished, kAbort };

  /// Blocks until a queued task is eligible (preferring tasks this worker
  /// has not already failed), all tasks are terminal, or the run aborts.
  Claim claim(const std::string& worker, std::size_t* out_index) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      if (aborted_ || externally_stopped()) {
        aborted_ = true;
        return Claim::kAbort;
      }
      if (open_ == 0) return Claim::kFinished;
      const double now = now_ms();
      std::size_t best = tasks_.size();
      bool best_fresh = false;
      double next_eligible = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < tasks_.size(); ++i) {
        const Task& task = tasks_[i];
        if (task.state != TaskState::kQueued) continue;
        if (task.eligible_at_ms > now) {
          next_eligible = std::min(next_eligible, task.eligible_at_ms);
          continue;
        }
        const bool fresh = task.failed_workers.count(worker) == 0;
        if (best == tasks_.size() || (fresh && !best_fresh)) {
          best = i;
          best_fresh = fresh;
        }
      }
      if (best < tasks_.size()) {
        Task& task = tasks_[best];
        task.state = TaskState::kAssigned;
        ++task.attempts;
        push_board(task, "assigned", worker);
        *out_index = best;
        return Claim::kTask;
      }
      // Nothing claimable right now: wait for a backoff to expire or for an
      // assigned task to come back. Short cap keeps stop_flag responsive.
      double wait = 100.0;
      if (next_eligible < std::numeric_limits<double>::max()) {
        wait = std::min(wait, std::max(1.0, next_eligible - now));
      }
      cv_.wait_for(lock, std::chrono::duration<double, std::milli>(wait));
    }
  }

  /// Records a finished task (worker partial or degraded local run).
  void task_done(std::size_t index, const std::string& worker,
                 const std::string& partial_path) {
    std::lock_guard<std::mutex> lock(mutex_);
    Task& task = tasks_[index];
    task.state = TaskState::kDone;
    task.worker = worker;
    task.partial_path = partial_path;
    --open_;
    ++stats_.tasks_done;
    DispatchMetrics::get().done.add();
    push_board(task, "done", worker);
    journal_append({task.shard.index, task.shard.count, "done", worker,
                    task.attempts, partial_path, ""});
    ++partials_received_;
    if (options_.abort_after_partials != 0 &&
        partials_received_ >= options_.abort_after_partials) {
      // Simulated manager crash for resume tests: stop scheduling abruptly.
      aborted_ = true;
    }
    cv_.notify_all();
  }

  /// A retryable reply (corrupt frame): back to the queue under backoff,
  /// connection still usable, no blame on the worker.
  void task_retry(std::size_t index, const std::string& error) {
    std::lock_guard<std::mutex> lock(mutex_);
    Task& task = tasks_[index];
    task.last_error = error;
    ++stats_.retries;
    DispatchMetrics::get().retries.add();
    requeue_or_quarantine(task);
    push_retry_board(task);
    cv_.notify_all();
  }

  /// The worker reported a task error on a live connection.
  void task_failed(std::size_t index, const std::string& worker,
                   const std::string& error) {
    std::lock_guard<std::mutex> lock(mutex_);
    Task& task = tasks_[index];
    task.last_error = error;
    task.failed_workers.insert(worker);
    ++stats_.retries;
    DispatchMetrics::get().retries.add();
    requeue_or_quarantine(task);
    push_retry_board(task);
    cv_.notify_all();
  }

  /// The worker died / hung / blew the deadline while holding the task.
  void task_orphaned(std::size_t index, const std::string& worker,
                     const std::string& error) {
    std::lock_guard<std::mutex> lock(mutex_);
    Task& task = tasks_[index];
    task.last_error = error;
    task.failed_workers.insert(worker);
    ++stats_.reassigned;
    DispatchMetrics::get().reassigned.add();
    requeue_or_quarantine(task);
    push_retry_board(task);
    cv_.notify_all();
  }

  /// A parsed-but-invalid partial: the artifact itself is corrupt, so no
  /// number of retries will help. Straight to quarantine.
  void task_fatal(std::size_t index, const std::string& error) {
    std::lock_guard<std::mutex> lock(mutex_);
    quarantine(tasks_[index], error);
    cv_.notify_all();
  }

  void note_worker_lost(const std::string& worker) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.workers_lost;
    DispatchMetrics::get().workers_lost.add();
    if (options_.telemetry != nullptr) {
      options_.telemetry->note_worker_state(worker, "lost");
    }
    MOSAIC_LOG_WARN("dispatch: worker %s declared lost", worker.c_str());
  }

  /// Marks a claimed task as actively running on `worker` (board only).
  void note_running(std::size_t index, const std::string& worker) {
    std::lock_guard<std::mutex> lock(mutex_);
    push_board(tasks_[index], "running", worker);
  }

  void note_degraded_done() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.degraded_tasks;
    DispatchMetrics::get().degraded.add();
  }

  void note_resumed(std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.resumed_tasks += count;
    DispatchMetrics::get().resumed.add(count);
  }

  void note_journal_dropped(std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.journal_dropped += count;
  }

  /// Flips any task stranded in kAssigned (its worker thread is gone) back
  /// to kQueued so the degraded path can claim it. Worker threads re-queue
  /// on every failure path, so this is a belt-and-braces sweep.
  void requeue_stranded() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Task& task : tasks_) {
      if (task.state == TaskState::kAssigned) {
        task.state = TaskState::kQueued;
        task.eligible_at_ms = 0.0;
        push_board(task, "queued", "");
      }
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool aborted() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (externally_stopped()) aborted_ = true;
    return aborted_;
  }

  /// Indices of tasks still open (queued or orphaned-assigned), for the
  /// degraded path after every worker thread has exited.
  [[nodiscard]] std::vector<std::size_t> open_tasks() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::size_t> open;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i].state == TaskState::kQueued ||
          tasks_[i].state == TaskState::kAssigned) {
        // A worker thread that exits re-queues its task first, but be
        // defensive: an assigned task with no live worker is open.
        open.push_back(i);
      }
    }
    return open;
  }

  [[nodiscard]] const Task& task(std::size_t index) const {
    return tasks_[index];
  }

  /// Builds a TaskRequest for the task's next attempt (attempt numbers are
  /// 0-based on the wire).
  [[nodiscard]] TaskRequest request_for(std::size_t index) {
    std::lock_guard<std::mutex> lock(mutex_);
    const Task& task = tasks_[index];
    TaskRequest request;
    request.shard = task.shard;
    request.attempt = task.attempts - 1;
    request.paths = task.paths;
    request.max_retries = options_.ingest_max_retries;
    request.file_deadline_seconds = options_.ingest_file_deadline_seconds;
    request.thresholds = options_.thresholds;
    request.telemetry = options_.telemetry != nullptr;
    request.collect_spans = options_.collect_spans;
    return request;
  }

  [[nodiscard]] DispatchResult result() {
    std::lock_guard<std::mutex> lock(mutex_);
    DispatchResult out;
    out.stats = stats_;
    out.aborted = aborted_;
    for (const Task& task : tasks_) {
      TaskOutcome outcome;
      outcome.shard = task.shard.index;
      outcome.worker = task.worker;
      outcome.attempts = task.attempts;
      outcome.partial_path = task.partial_path;
      outcome.error = task.last_error;
      switch (task.state) {
        case TaskState::kDone:
          outcome.status = "done";
          out.partial_paths.push_back(task.partial_path);
          break;
        case TaskState::kQuarantined:
          outcome.status = "quarantined";
          break;
        default:
          outcome.status = "open";  // only after an abort
          break;
      }
      out.outcomes.push_back(std::move(outcome));
    }
    return out;
  }

  void close_journal() {
    std::lock_guard<std::mutex> lock(mutex_);
    journal_.close();
  }

 private:
  [[nodiscard]] bool externally_stopped() const {
    return options_.stop_flag != nullptr &&
           options_.stop_flag->load(std::memory_order_relaxed);
  }

  /// Re-queues a failed task under backoff, or quarantines it once it has
  /// exhausted its attempt budget across enough distinct workers. The
  /// distinct-worker requirement (capped by fleet size) keeps one flaky
  /// worker from condemning a healthy shard.
  void requeue_or_quarantine(Task& task) {
    const std::size_t distinct_needed =
        std::min<std::size_t>(2, std::max<std::size_t>(1,
                                                       options_.workers.size()));
    if (task.attempts >= options_.max_task_attempts &&
        task.failed_workers.size() >= distinct_needed) {
      quarantine(task, task.last_error);
      return;
    }
    task.state = TaskState::kQueued;
    task.eligible_at_ms = now_ms() + task.backoff.next_delay_ms();
  }

  /// Mirrors one task transition onto the telemetry hub's status board.
  /// Caller holds mutex_; the hub is independently synchronized.
  void push_board(const Task& task, std::string_view state,
                  const std::string& worker) {
    if (options_.telemetry == nullptr) return;
    options_.telemetry->note_task_state(task.shard.index, state, worker,
                                        task.attempts);
  }

  /// Board update after requeue_or_quarantine resolved a failure.
  void push_retry_board(const Task& task) {
    push_board(task,
               task.state == TaskState::kQuarantined ? "quarantined"
                                                     : "retrying",
               "");
  }

  void quarantine(Task& task, const std::string& error) {
    task.state = TaskState::kQuarantined;
    task.last_error = error;
    --open_;
    ++stats_.quarantined;
    DispatchMetrics::get().quarantined.add();
    push_board(task, "quarantined", "");
    MOSAIC_LOG_WARN("dispatch: quarantined shard %zu after %zu attempt(s): %s",
                    task.shard.index, task.attempts, error.c_str());
    journal_append({task.shard.index, task.shard.count, "quarantined", "",
                    task.attempts, "", error});
  }

  void journal_append(const DispatchJournalEntry& entry) {
    if (const auto status = journal_.append(entry); !status.ok()) {
      // Journal trouble must not abort the dispatch it protects.
      MOSAIC_LOG_WARN("dispatch: %s", status.error().to_string().c_str());
    }
  }

  const DispatchOptions& options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Task> tasks_;
  std::size_t open_ = 0;
  bool aborted_ = false;
  std::size_t partials_received_ = 0;
  DispatchStats stats_;
  DispatchJournalWriter journal_;
};

/// Connects to a worker and completes the hello handshake. On success the
/// handshake doubles as a clock-sync probe: the worker's hello reply carries
/// its span clock, and the midpoint of our send/recv timestamps estimates
/// what our clock read at that instant — assuming symmetric network delay,
/// `offset = worker_now - midpoint` maps worker span timestamps onto the
/// manager timeline (manager_ns = worker_ns - offset).
Expected<Connection> connect_and_handshake(const Address& address,
                                           double timeout_seconds,
                                           TelemetryHub* hub) {
  MOSAIC_SPAN("dispatch-connect");
  obs::ScopedTimerMs timer(DispatchMetrics::get().connect_ms);
  auto conn = connect_to(address, timeout_seconds);
  if (!conn.has_value()) return conn.error();
  const std::uint64_t t_send = obs::SpanTracer::now_ns();
  if (const auto status =
          write_frame(*conn, FrameType::kHello, hello_payload());
      !status.ok()) {
    return status.error();
  }
  auto reply = read_frame(*conn, timeout_seconds);
  const std::uint64_t t_recv = obs::SpanTracer::now_ns();
  if (!reply.has_value()) return reply.error();
  if (reply->type != FrameType::kHello) {
    return Error{ErrorCode::kParseError,
                 "worker " + address.to_string() + " answered the hello "
                 "with frame type " +
                     std::to_string(static_cast<int>(reply->type))};
  }
  if (const auto status = check_hello_payload(reply->payload); !status.ok()) {
    return status.error();
  }
  if (hub != nullptr) {
    if (const auto worker_now = hello_now_ns(reply->payload);
        worker_now.has_value()) {
      const std::int64_t offset =
          static_cast<std::int64_t>(*worker_now) -
          static_cast<std::int64_t>((t_send + t_recv) / 2);
      hub->note_clock_sync(address.to_string(), offset);
    }
  }
  return std::move(*conn);
}

/// Validates a received partial against the expected shard and persists it
/// atomically. Returns the artifact path.
Expected<std::string> accept_partial(const DispatchOptions& options,
                                     const ingest::ShardSpec& shard,
                                     const report::PartialArtifact& partial) {
  if (partial.shard_index != shard.index ||
      partial.shard_count != shard.count) {
    return Error{ErrorCode::kCorruptTrace,
                 "partial declares shard " +
                     std::to_string(partial.shard_index) + "/" +
                     std::to_string(partial.shard_count) + ", expected " +
                     std::to_string(shard.index) + "/" +
                     std::to_string(shard.count)};
  }
  const std::string path =
      (std::filesystem::path(options.out_dir) /
       ingest::partial_filename(shard.index))
          .string();
  // write_partial goes through util::write_file_atomic (temp + rename), so
  // a manager killed mid-write never leaves a torn artifact for --resume.
  if (const auto status = report::write_partial(partial, path); !status.ok()) {
    return status.error();
  }
  return path;
}

struct AttemptOutcome {
  AttemptResult result;
  std::string error;
  std::string partial_path;
};

/// Drives one task attempt over a live connection: send the task, consume
/// heartbeats (folding any piggybacked telemetry into the hub), and classify
/// however it ends.
AttemptOutcome run_attempt(const DispatchOptions& options, Connection& conn,
                           const std::string& worker,
                           const TaskRequest& request) {
  MOSAIC_SPAN("dispatch-attempt");
  if (const auto status = write_frame(conn, FrameType::kTask,
                                      task_request_to_payload(request));
      !status.ok()) {
    return {AttemptResult::kConnectionLost, status.error().to_string(), ""};
  }
  const double start = now_ms();
  double last_activity = start;
  const double grace_ms = options.heartbeat_grace_seconds * 1000.0;
  const double deadline_ms = options.task_deadline_seconds * 1000.0;
  // Poll in short slices so small grace/deadline values (tests) are honored.
  const double slice_s =
      std::clamp(options.heartbeat_grace_seconds / 4.0, 0.05, 0.25);

  while (true) {
    auto frame = read_frame(conn, slice_s);
    const double now = now_ms();
    if (!frame.has_value()) {
      switch (frame.error().code) {
        case ErrorCode::kTimeout:
          if (deadline_ms > 0.0 && now - start > deadline_ms) {
            return {AttemptResult::kConnectionLost,
                    "task deadline exceeded (" +
                        std::to_string(options.task_deadline_seconds) + "s)",
                    ""};
          }
          if (grace_ms > 0.0 && now - last_activity > grace_ms) {
            return {AttemptResult::kConnectionLost,
                    "worker silent past heartbeat grace (" +
                        std::to_string(options.heartbeat_grace_seconds) +
                        "s)",
                    ""};
          }
          continue;
        case ErrorCode::kParseError:
          // Corrupt frame, stream still aligned: retryable.
          return {AttemptResult::kRetryable, frame.error().to_string(), ""};
        default:
          return {AttemptResult::kConnectionLost, frame.error().to_string(),
                  ""};
      }
    }
    last_activity = now;
    switch (frame->type) {
      case FrameType::kHeartbeat:
        DispatchMetrics::get().heartbeats.add();
        if (options.telemetry != nullptr) {
          // Liveness was already credited above; a malformed telemetry
          // payload degrades inside the hub and never fails the attempt.
          options.telemetry->ingest_heartbeat(worker, frame->payload);
        }
        if (deadline_ms > 0.0 && now - start > deadline_ms) {
          // Alive but never finishing still violates the deadline contract.
          return {AttemptResult::kConnectionLost,
                  "task deadline exceeded (" +
                      std::to_string(options.task_deadline_seconds) + "s)",
                  ""};
        }
        continue;
      case FrameType::kTaskError:
        return {AttemptResult::kTaskFailed,
                task_error_from_payload(frame->payload).to_string(), ""};
      case FrameType::kPartial: {
        auto parsed = json::parse(frame->payload);
        if (!parsed.has_value()) {
          // Payload passed the checksum but is not JSON — treat like wire
          // corruption: retryable re-request.
          return {AttemptResult::kRetryable,
                  "partial payload is not JSON: " +
                      parsed.error().to_string(),
                  ""};
        }
        if (options.telemetry != nullptr) {
          // The telemetry rider is independent of partial validity: ingest
          // it even if the artifact below fails schema checks.
          options.telemetry->ingest_partial_telemetry(worker, *parsed);
        }
        auto partial = report::partial_from_json(*parsed);
        if (!partial.has_value()) {
          // Well-formed JSON that fails schema validation is a corrupt
          // artifact, not line noise; retrying cannot fix it.
          return {AttemptResult::kFatalArtifact,
                  partial.error().to_string(), ""};
        }
        auto path = accept_partial(options, request.shard, *partial);
        if (!path.has_value()) {
          if (path.error().code == ErrorCode::kCorruptTrace) {
            return {AttemptResult::kFatalArtifact, path.error().to_string(),
                    ""};
          }
          return {AttemptResult::kTaskFailed, path.error().to_string(), ""};
        }
        return {AttemptResult::kDone, "", *path};
      }
      default:
        MOSAIC_LOG_WARN("dispatch: unexpected frame type %d mid-task",
                        static_cast<int>(frame->type));
        continue;
    }
  }
}

/// One manager-side worker thread: owns the connection to one worker
/// address, claims tasks, classifies failures, reconnects with backoff, and
/// exits when the run is over or the worker is declared lost.
void run_worker_thread(const DispatchOptions& options, Scheduler& scheduler,
                       const Address& address) {
  const std::string name = address.to_string();
  util::ExponentialBackoff reconnect(options.retry_initial_delay_ms,
                                     options.retry_multiplier,
                                     options.retry_max_delay_ms);
  std::size_t connect_failures = 0;
  std::optional<Connection> conn;

  while (true) {
    if (!conn.has_value()) {
      if (scheduler.aborted()) return;
      auto connected = connect_and_handshake(
          address, options.connect_timeout_seconds, options.telemetry);
      if (!connected.has_value()) {
        ++connect_failures;
        if (connect_failures > options.reconnect_attempts) {
          scheduler.note_worker_lost(name);
          return;
        }
        MOSAIC_LOG_WARN("dispatch: connect to %s failed (%s), retrying",
                        name.c_str(),
                        connected.error().to_string().c_str());
        util::sleep_for_ms(reconnect.next_delay_ms());
        continue;
      }
      conn = std::move(*connected);
      connect_failures = 0;
      reconnect.reset();
      if (options.telemetry != nullptr) {
        options.telemetry->note_worker_state(name, "connected");
      }
    }

    std::size_t index = 0;
    const auto claim = scheduler.claim(name, &index);
    if (claim != Scheduler::Claim::kTask) {
      // Run over (finished or aborted): release the worker politely.
      (void)write_frame(*conn, FrameType::kShutdown, "");
      return;
    }

    const TaskRequest request = scheduler.request_for(index);
    scheduler.note_running(index, name);
    const double attempt_start = now_ms();
    AttemptOutcome outcome = run_attempt(options, *conn, name, request);
    DispatchMetrics::get().task_ms.observe(now_ms() - attempt_start);

    switch (outcome.result) {
      case AttemptResult::kDone:
        scheduler.task_done(index, name, outcome.partial_path);
        break;
      case AttemptResult::kRetryable:
        MOSAIC_LOG_WARN("dispatch: shard %zu retryable on %s: %s",
                        request.shard.index, name.c_str(),
                        outcome.error.c_str());
        scheduler.task_retry(index, outcome.error);
        break;
      case AttemptResult::kTaskFailed:
        MOSAIC_LOG_WARN("dispatch: shard %zu failed on %s: %s",
                        request.shard.index, name.c_str(),
                        outcome.error.c_str());
        scheduler.task_failed(index, name, outcome.error);
        break;
      case AttemptResult::kFatalArtifact:
        scheduler.task_fatal(index, outcome.error);
        break;
      case AttemptResult::kConnectionLost:
        MOSAIC_LOG_WARN("dispatch: shard %zu orphaned by %s: %s",
                        request.shard.index, name.c_str(),
                        outcome.error.c_str());
        scheduler.task_orphaned(index, name, outcome.error);
        conn->close();
        conn.reset();
        if (options.telemetry != nullptr) {
          options.telemetry->note_worker_state(name, "disconnected");
        }
        break;
    }
  }
}

}  // namespace

bool DispatchResult::complete() const noexcept {
  if (aborted) return false;
  if (outcomes.empty()) return false;
  return std::all_of(outcomes.begin(), outcomes.end(),
                     [](const TaskOutcome& o) { return o.status == "done"; });
}

Expected<DispatchResult> run_dispatch(const DispatchOptions& options) {
  MOSAIC_SPAN("dispatch-run");
  if (options.workers.empty() && !options.allow_degraded) {
    return Error{ErrorCode::kInvalidArgument,
                 "no workers given and degraded (in-process) execution is "
                 "disabled"};
  }
  if (options.out_dir.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "dispatch needs an output directory for partial artifacts"};
  }
  std::error_code ec;
  std::filesystem::create_directories(options.out_dir, ec);
  if (ec) {
    return Error{ErrorCode::kIoError, "cannot create output directory " +
                                          options.out_dir + ": " +
                                          ec.message()};
  }

  const std::size_t shard_count =
      options.shard_count != 0
          ? options.shard_count
          : std::max<std::size_t>(1, options.workers.size());

  // Expand directories and pre-partition the corpus: each task ships only
  // the files its shard owns, so wire size scales with the shard. The
  // worker's own ShardSpec filter re-checks ownership (a no-op here).
  std::vector<std::string> files;
  for (const std::string& arg : options.paths) {
    if (std::filesystem::is_directory(arg, ec)) {
      auto scanned = darshan::scan_trace_dir(arg);
      if (!scanned.has_value()) return scanned.error();
      files.insert(files.end(), scanned->begin(), scanned->end());
    } else {
      files.push_back(arg);
    }
  }

  std::vector<Task> tasks(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    tasks[k].shard = ingest::ShardSpec{k, shard_count};
    tasks[k].backoff =
        util::ExponentialBackoff(options.retry_initial_delay_ms,
                                 options.retry_multiplier,
                                 options.retry_max_delay_ms);
  }
  for (const std::string& file : files) {
    tasks[ingest::shard_of(file, shard_count)].paths.push_back(file);
  }

  // Resume: replay journaled "done" outcomes whose artifacts still exist
  // and still parse; everything else (including previously quarantined
  // shards — a resume is a fresh chance) is scheduled again.
  std::size_t resumed = 0;
  std::size_t journal_dropped = 0;
  if (options.resume && !options.journal_path.empty()) {
    auto journal =
        load_dispatch_journal(options.journal_path, &journal_dropped);
    if (!journal.has_value()) return journal.error();
    for (auto& [shard, entry] : *journal) {
      if (entry.status != "done" || entry.shard_count != shard_count ||
          shard >= shard_count) {
        continue;
      }
      auto partial = report::read_partial(entry.partial_path);
      if (!partial.has_value() || partial->shard_index != shard ||
          partial->shard_count != shard_count) {
        MOSAIC_LOG_WARN(
            "dispatch: journaled partial for shard %zu unusable, "
            "re-scheduling", shard);
        continue;
      }
      Task& task = tasks[shard];
      task.state = TaskState::kDone;
      task.worker = entry.worker;
      task.attempts = entry.attempts;
      task.partial_path = entry.partial_path;
      ++resumed;
    }
  }

  Scheduler scheduler(options, std::move(tasks));
  scheduler.note_resumed(resumed);
  scheduler.note_journal_dropped(journal_dropped);
  if (const auto status = scheduler.open_journal(); !status.ok()) {
    return status.error();
  }

  std::vector<std::thread> threads;
  threads.reserve(options.workers.size());
  for (const Address& address : options.workers) {
    threads.emplace_back([&options, &scheduler, &address] {
      run_worker_thread(options, scheduler, address);
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Graceful degradation: every worker thread has exited (fleet lost, or
  // there never was one) but shards remain. Run them in-process with the
  // same task runner the workers use — slow, but the run completes and the
  // artifacts are byte-identical.
  if (options.allow_degraded && !scheduler.aborted()) {
    scheduler.requeue_stranded();
    const std::size_t open = scheduler.open_tasks().size();
    if (open != 0) {
      MOSAIC_LOG_WARN(
          "dispatch: degraded mode — running %zu remaining shard(s) "
          "in-process", open);
      parallel::ThreadPool pool(options.degraded_threads);
      while (!scheduler.aborted()) {
        std::size_t claimed = 0;
        if (scheduler.claim("local", &claimed) != Scheduler::Claim::kTask) {
          break;
        }
        const TaskRequest request = scheduler.request_for(claimed);
        scheduler.note_running(claimed, "local");
        MOSAIC_SPAN("dispatch-degraded-task");
        const double start = now_ms();
        auto partial = run_shard_task(request, pool);
        DispatchMetrics::get().task_ms.observe(now_ms() - start);
        if (!partial.has_value()) {
          scheduler.task_fatal(claimed, partial.error().to_string());
          continue;
        }
        auto path = accept_partial(options, request.shard, *partial);
        if (!path.has_value()) {
          scheduler.task_fatal(claimed, path.error().to_string());
          continue;
        }
        scheduler.task_done(claimed, "local", *path);
        scheduler.note_degraded_done();
      }
    }
  }

  scheduler.close_journal();
  return scheduler.result();
}

}  // namespace mosaic::dist
