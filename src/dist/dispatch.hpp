// The manager half of distributed dispatch: partitions a corpus into shard
// tasks, farms them out to a worker pool over the frame protocol, survives
// worker failure, and collects the partial artifacts for merging.
//
// Task lifecycle (DESIGN.md §14):
//
//   queued -> assigned -> running -> done
//                |           |
//                +-----------+--> retrying ----(backoff)----> queued
//                            |
//                            +--> quarantined
//
// Failure detection is three-pronged, matching the protocol error taxonomy:
//   - closed socket (kIoError)      worker died / network partition,
//   - missed heartbeats (kTimeout)  worker hung or stalled,
//   - task deadline exceeded        worker alive but never finishing.
// Any of them orphans the task: it re-enters the queue under capped
// exponential backoff and is reassigned — preferentially to a *different*
// worker, since the previous one just failed it. A task that keeps failing
// is quarantined (recorded, skipped, reported) once it has exhausted its
// attempt budget across distinct workers, so one poisoned shard cannot
// wedge the fleet.
//
// Degradation: when every worker is lost and tasks remain, the manager runs
// them in-process through the same task runner the workers use. Slower, but
// the run completes — and because partials are deterministic, the output is
// still byte-identical to the single-shot run.
//
// Crash safety: terminal outcomes stream into a JSONL journal
// (journal.hpp); `--resume` replays it and only schedules what remains.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/thresholds.hpp"
#include "dist/net.hpp"
#include "util/error.hpp"

namespace mosaic::dist {

class TelemetryHub;

struct DispatchOptions {
  std::vector<Address> workers;
  std::size_t shard_count = 0;  ///< 0 = one shard per worker
  /// Corpus files/directories as given on the command line.
  std::vector<std::string> paths;
  core::Thresholds thresholds;

  /// Per-file ingest knobs forwarded to workers inside each task.
  int ingest_max_retries = 3;
  double ingest_file_deadline_seconds = 30.0;

  /// Wall-clock budget for one task attempt (0 = unlimited). Exceeding it
  /// counts as a worker failure even if heartbeats keep arriving.
  double task_deadline_seconds = 300.0;
  /// Declare a worker hung when it is silent (no heartbeat, no frame) for
  /// this long while a task runs.
  double heartbeat_grace_seconds = 5.0;
  double connect_timeout_seconds = 5.0;

  /// Assignments a task may consume before quarantine is considered.
  std::size_t max_task_attempts = 3;
  /// Capped exponential backoff between a task's retries.
  double retry_initial_delay_ms = 50.0;
  double retry_multiplier = 2.0;
  double retry_max_delay_ms = 2000.0;
  /// Reconnect attempts before a worker is declared permanently lost.
  std::size_t reconnect_attempts = 2;

  /// Directory receiving the per-shard partial artifacts.
  std::string out_dir;
  /// Append terminal task outcomes here (JSONL); empty disables.
  std::string journal_path;
  /// Replay the journal and only schedule the shards that remain.
  bool resume = false;

  /// Finish remaining shards in-process when every worker is lost.
  bool allow_degraded = true;
  std::size_t degraded_threads = 0;  ///< 0 = hardware concurrency

  /// Cooperative cancellation (SIGINT/SIGTERM). Checked at every scheduling
  /// step; a stopped run flushes the journal and returns with aborted set.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Test seam simulating a manager crash: stop abruptly once this many
  /// partials have been received and journaled. 0 disables.
  std::size_t abort_after_partials = 0;

  /// Optional fleet telemetry sink (dist/telemetry.hpp). When set, tasks ask
  /// workers to ship metric snapshots on heartbeats/partials, the scheduler
  /// mirrors every lifecycle transition onto the hub's status board, and
  /// handshakes feed it clock-offset estimates. Null = no federation; the
  /// wire payloads stay byte-identical to pre-federation builds.
  TelemetryHub* telemetry = nullptr;
  /// Also ask workers to record spans and ship them with their partials
  /// (only meaningful with `telemetry` set).
  bool collect_spans = false;
};

/// Robustness counters for one dispatch run (mirrored into obs metrics).
struct DispatchStats {
  std::size_t tasks_done = 0;       ///< partials received or run locally
  std::size_t retries = 0;          ///< re-requests on a live connection
  std::size_t reassigned = 0;       ///< tasks orphaned by a worker failure
  std::size_t quarantined = 0;      ///< tasks given up on
  std::size_t workers_lost = 0;     ///< workers declared permanently dead
  std::size_t degraded_tasks = 0;   ///< tasks the manager ran in-process
  std::size_t resumed_tasks = 0;    ///< outcomes replayed from the journal
  std::size_t journal_dropped = 0;  ///< malformed journal lines skipped
};

/// Terminal outcome of one shard task.
struct TaskOutcome {
  std::size_t shard = 0;
  std::string status;        ///< "done" | "quarantined"
  std::string worker;        ///< producer ("local" = degraded/in-process)
  std::size_t attempts = 0;
  std::string partial_path;  ///< for "done"
  std::string error;         ///< last failure, for "quarantined"
};

struct DispatchResult {
  /// Partial artifact paths of every done shard, ordered by shard index.
  std::vector<std::string> partial_paths;
  /// One entry per shard, ordered by shard index.
  std::vector<TaskOutcome> outcomes;
  DispatchStats stats;
  bool aborted = false;  ///< stop_flag or abort_after_partials tripped

  /// True when every shard reached "done" (nothing quarantined, no abort).
  [[nodiscard]] bool complete() const noexcept;
};

/// Runs one distributed dispatch: partition, assign, retry, merge-ready.
/// Errors only on setup-level failures (no workers and degradation
/// disabled, unusable out_dir/journal); task failures are data in the
/// result, not errors.
[[nodiscard]] util::Expected<DispatchResult> run_dispatch(
    const DispatchOptions& options);

}  // namespace mosaic::dist
