#include "dist/journal.hpp"

#include <filesystem>
#include <fstream>
#include <optional>

#include "json/json.hpp"
#include "util/strings.hpp"

namespace mosaic::dist {

using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

namespace {

std::string entry_to_line(const DispatchJournalEntry& entry) {
  json::Object out;
  out.set("shard", entry.shard);
  out.set("count", entry.shard_count);
  out.set("status", entry.status);
  out.set("worker", entry.worker);
  out.set("attempts", entry.attempts);
  if (!entry.partial_path.empty()) out.set("partial", entry.partial_path);
  if (!entry.error.empty()) out.set("error", entry.error);
  std::string line = json::serialize(json::Value(std::move(out)),
                                     /*pretty=*/false);
  line += '\n';
  return line;
}

/// Parses one journal line; nullopt for anything malformed or incomplete
/// (most commonly the torn final line of a killed manager).
std::optional<DispatchJournalEntry> entry_from_line(std::string_view line) {
  const auto parsed = json::parse(line);
  if (!parsed.has_value() || !parsed->is_object()) return std::nullopt;
  const json::Object& obj = parsed->as_object();

  const auto get_string = [&obj](std::string_view key)
      -> std::optional<std::string> {
    const json::Value* value = obj.find(key);
    if (value == nullptr || !value->is_string()) return std::nullopt;
    return value->as_string();
  };
  const auto get_count = [&obj](std::string_view key)
      -> std::optional<std::size_t> {
    const json::Value* value = obj.find(key);
    if (value == nullptr || !value->is_number()) return std::nullopt;
    const double number = value->as_number();
    if (number < 0.0) return std::nullopt;
    return static_cast<std::size_t>(number);
  };

  DispatchJournalEntry entry;
  const auto shard = get_count("shard");
  const auto count = get_count("count");
  const auto status = get_string("status");
  const auto worker = get_string("worker");
  const auto attempts = get_count("attempts");
  if (!shard || !count || !status || !worker || !attempts) return std::nullopt;
  if (*status != "done" && *status != "quarantined") return std::nullopt;
  if (*count == 0 || *shard >= *count) return std::nullopt;
  entry.shard = *shard;
  entry.shard_count = *count;
  entry.status = *status;
  entry.worker = *worker;
  entry.attempts = *attempts;
  if (const auto partial = get_string("partial")) {
    entry.partial_path = *partial;
  }
  if (const auto error = get_string("error")) entry.error = *error;
  if (entry.status == "done" && entry.partial_path.empty()) {
    return std::nullopt;  // a done entry without its artifact is useless
  }
  return entry;
}

}  // namespace

DispatchJournalWriter::~DispatchJournalWriter() { close(); }

Status DispatchJournalWriter::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Error{ErrorCode::kIoError, "cannot open dispatch journal " + path};
  }
  return Status::success();
}

Status DispatchJournalWriter::append(const DispatchJournalEntry& entry) {
  if (file_ == nullptr) return Status::success();  // journaling disabled
  const std::string line = entry_to_line(entry);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    return Error{ErrorCode::kIoError, "dispatch journal append failed"};
  }
  return Status::success();
}

void DispatchJournalWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Expected<std::map<std::size_t, DispatchJournalEntry>> load_dispatch_journal(
    const std::string& path, std::size_t* dropped_lines) {
  std::map<std::size_t, DispatchJournalEntry> entries;
  if (dropped_lines != nullptr) *dropped_lines = 0;

  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return entries;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kIoError, "cannot open dispatch journal " + path};
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (util::trim(line).empty()) continue;
    if (auto entry = entry_from_line(line)) {
      entries[entry->shard] = std::move(*entry);
    } else if (dropped_lines != nullptr) {
      ++*dropped_lines;
    }
  }
  if (in.bad()) {
    return Error{ErrorCode::kIoError,
                 "read failure on dispatch journal " + path};
  }
  return entries;
}

}  // namespace mosaic::dist
