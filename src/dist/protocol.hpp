// Wire protocol of the dispatch/worker pair: length-prefixed, checksummed
// frames carrying JSON payloads.
//
// Layout of one frame (all integers little-endian):
//   u32  magic     0x4D445031 ("MDP1")
//   u8   version   kProtocolVersion
//   u8   type      FrameType
//   u16  reserved  0
//   u32  payload length (bounded by kMaxPayloadBytes)
//   u64  FNV-1a of the payload bytes
//   ...  payload
//
// The checksum is what turns "a bit flipped somewhere on the wire" into a
// *detected, retryable* failure: read_frame consumes the advertised payload
// even when the checksum mismatches, so the stream stays framed and the
// manager can simply re-request the task instead of tearing the connection
// down. A truncated frame (peer died mid-send) surfaces as kIoError; a
// silent peer as kTimeout. The three codes are exactly the retry taxonomy
// the dispatch lifecycle classifies on.
//
// Payloads are JSON (the partial artifact is already the canonical shard
// wire format, and task descriptions are small), so every message is
// inspectable with a pcap and a pretty-printer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/thresholds.hpp"
#include "dist/net.hpp"
#include "ingest/shard.hpp"
#include "util/error.hpp"

namespace mosaic::dist {

inline constexpr std::uint32_t kProtocolMagic = 0x4D445031;  // "MDP1"
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Hard cap on a frame payload; a corrupted length field must not make the
/// receiver try to allocate terabytes.
inline constexpr std::uint32_t kMaxPayloadBytes = 256u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  kHello = 1,        ///< both directions: version handshake
  kTask = 2,         ///< manager -> worker: run this shard task
  kHeartbeat = 3,    ///< worker -> manager: still alive, task in progress
  kPartial = 4,      ///< worker -> manager: the finished partial artifact
  kTaskError = 5,    ///< worker -> manager: task failed (code + message)
  kShutdown = 6,     ///< manager -> worker: session over, stop serving it
  kSubmit = 7,       ///< client -> daemon: categorize this trace file
  kSubmitResult = 8, ///< daemon -> client: trace id, categories, cache state
};

/// True for values that decode to a known FrameType.
[[nodiscard]] bool frame_type_valid(std::uint8_t value) noexcept;

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

/// Sends one frame. `corrupt_payload_byte` is the fault-injection seam: the
/// checksum is computed over the true payload and one byte is flipped
/// afterwards, so the receiver sees a checksum mismatch (never used outside
/// tests/fault specs).
[[nodiscard]] util::Status write_frame(Connection& conn, FrameType type,
                                       std::string_view payload,
                                       bool corrupt_payload_byte = false);

/// Receives one frame. Error codes:
///   kTimeout    peer silent past `timeout_seconds`
///   kIoError    connection closed / reset (possibly mid-frame)
///   kParseError bad magic, unknown type/version, oversized length, or
///               checksum mismatch (stream stays framed; retryable)
[[nodiscard]] util::Expected<Frame> read_frame(Connection& conn,
                                               double timeout_seconds);

/// One shard task as shipped to a worker. The manager pre-filters the path
/// list to the files the shard owns (the worker's ingest re-applies the
/// ShardSpec filter, which is a no-op on an owned list), so wire size scales
/// with the shard, not the corpus.
struct TaskRequest {
  ingest::ShardSpec shard;
  /// Global attempt number for this shard (0-based). Deterministic fault
  /// injection keys on it so transient faults heal across retries.
  std::size_t attempt = 0;
  std::vector<std::string> paths;
  int max_retries = 3;                  ///< per-file ingest retries
  double file_deadline_seconds = 30.0;  ///< per-file ingest budget
  core::Thresholds thresholds;
  /// Telemetry federation opt-ins (obs/federation.hpp). Encoded as optional
  /// payload fields that old managers never send and old workers ignore, so
  /// a mixed-version fleet keeps dispatching — it just loses telemetry from
  /// the old half.
  bool telemetry = false;      ///< ship metric snapshots on heartbeats/partials
  bool collect_spans = false;  ///< record spans and ship them with the partial
};

[[nodiscard]] std::string task_request_to_payload(const TaskRequest& task);
[[nodiscard]] util::Expected<TaskRequest> task_request_from_payload(
    std::string_view payload);

/// Worker-side task failure, round-tripped through the kTaskError payload.
/// Decoding never fails: an undecodable payload decodes to a kParseError
/// describing the payload itself.
[[nodiscard]] std::string task_error_to_payload(const util::Error& error);
[[nodiscard]] util::Error task_error_from_payload(std::string_view payload);

/// Hello payload and its check. Besides the protocol tag
/// ("mosaic-dispatch-v1", the only field the check enforces) the payload
/// carries `now_ns`, the sender's span clock at send time — the raw
/// material for the handshake clock-offset estimate that aligns worker
/// span timestamps onto the manager timeline (obs/federation.hpp).
[[nodiscard]] std::string hello_payload();
[[nodiscard]] util::Status check_hello_payload(std::string_view payload);

/// Extracts `now_ns` from a hello payload; nullopt when the peer predates
/// telemetry federation (its spans then stay unaligned, nothing breaks).
[[nodiscard]] std::optional<std::uint64_t> hello_now_ns(
    std::string_view payload);

/// One trace submitted to the daemon over a kSubmit frame: the client-side
/// file name (its extension picks the parser, exactly as on-disk ingest
/// classifies) and the raw file bytes. Bytes travel hex-encoded inside the
/// JSON payload so the frame stays pcap-inspectable like every other MDP1
/// message; traces are small enough that doubling them is cheaper than a
/// second wire format.
struct SubmitRequest {
  std::string name;
  std::string data;  ///< raw bytes (decoded)
};

[[nodiscard]] std::string submit_request_to_payload(
    const SubmitRequest& request);
[[nodiscard]] util::Expected<SubmitRequest> submit_request_from_payload(
    std::string_view payload);

/// The daemon's kSubmitResult payload. `ok == false` carries only `error`.
struct SubmitReply {
  bool ok = false;
  std::string trace_id;  ///< decimal job id — the /explain/<id> handle
  std::string app_key;
  bool cached = false;   ///< true when the submission was a cache hit
  std::vector<std::string> categories;
  std::string error;
};

[[nodiscard]] std::string submit_reply_to_payload(const SubmitReply& reply);
[[nodiscard]] util::Expected<SubmitReply> submit_reply_from_payload(
    std::string_view payload);

}  // namespace mosaic::dist
