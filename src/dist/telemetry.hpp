// Dispatch-side telemetry federation: the wire payloads that piggyback
// worker observability onto protocol frames, and the manager's TelemetryHub
// that turns them into a live fleet view.
//
// Shipping model (DESIGN.md §15–16): a worker running a telemetry-enabled
// task attaches `{"telemetry":{"snapshot":...,"delta":...,"health":...}}`
// to every kHeartbeat frame and a `"telemetry"` member (snapshot + span
// ring when requested) to its kPartial reply. The first frame of every TCP
// session ships the whole registry; later frames ship only the counters/
// histograms that moved since the previous frame (TelemetrySender). The
// session boundary doubles as the resync rule: reconnect -> reset() ->
// full snapshot, so the manager never applies a delta onto a base it did
// not see, and a lost heartbeat costs freshness, never correctness. Old
// workers send empty heartbeats and plain partials; both parse as "no
// telemetry" (nullopt), so mixed fleets keep dispatching. A payload that is
// present but malformed is an Error the caller *degrades* on: the
// heartbeat still counts as liveness, the task keeps running, and
// mosaic_fleet_telemetry_parse_errors_total is bumped.
//
// The TelemetryHub is the manager's aggregation point: a FleetRegistry of
// worker snapshots/spans/clock offsets, a task+worker status board fed by
// the dispatch scheduler, an optional embedded HTTP endpoint (GET /metrics
// Prometheus text, GET /metrics.json, GET /status JSON lifecycle table)
// served off the dist/net poll loop, and an optional progress logger that
// prints fleet state every interval.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dist/net.hpp"
#include "json/json.hpp"
#include "obs/federation.hpp"
#include "obs/health.hpp"
#include "obs/http.hpp"
#include "util/error.hpp"

namespace mosaic::dist {

/// Telemetry attached to a kHeartbeat or kPartial frame.
struct TelemetryPayload {
  obs::Snapshot snapshot;
  std::vector<obs::FleetSpan> spans;  ///< empty on heartbeats
  /// True when `snapshot` is a counter/histogram delta against the last
  /// frame this sender shipped on the session, not a whole registry.
  bool delta = false;
  /// Worker-evaluated health rollup ("ok" / "warn(...)" / "fail(...)");
  /// empty on frames from pre-delta workers.
  std::string health;
};

/// Worker side: the `{"snapshot":...,"spans":[...]}` wire object built from
/// the process-global registry (and span tracer when `include_spans`).
/// Always a whole snapshot — the delta path lives in TelemetrySender.
[[nodiscard]] json::Value telemetry_wire_json(bool include_spans);

/// Worker side: a complete kHeartbeat payload carrying a whole snapshot.
[[nodiscard]] std::string heartbeat_telemetry_payload();

/// Worker-side delta shipper. The first frame after construction or
/// reset() carries the whole registry; every later frame carries only the
/// counters/histograms that moved (and changed gauges) since the previous
/// one. reset() at session start is the resync rule: a reconnecting worker
/// always re-baselines the manager with a full snapshot, so a manager that
/// missed deltas (it replaced the connection) never applies one onto a
/// stale base. Each frame also carries the worker's own health verdict.
/// Thread-safe (heartbeat pump + session thread share one sender).
class TelemetrySender {
 public:
  /// Forgets the baseline: the next frame ships the whole registry.
  void reset();

  /// The `{"snapshot":...,"delta":...,"health":...[,"spans":...]}` wire
  /// object, advancing the baseline.
  [[nodiscard]] json::Value wire_json(bool include_spans);

  /// A complete kHeartbeat payload (`{"telemetry": wire_json(false)}`),
  /// counting its serialized size into mosaic_worker_telemetry_bytes_total.
  [[nodiscard]] std::string heartbeat_payload();

 private:
  std::mutex mutex_;
  bool has_baseline_ = false;
  obs::Snapshot baseline_;
};

/// Manager side: classifies a kHeartbeat payload.
///   nullopt  no telemetry (empty payload / old worker) — plain liveness
///   Error    telemetry present but malformed — degrade, count, keep going
[[nodiscard]] util::Expected<std::optional<TelemetryPayload>>
parse_heartbeat_telemetry(std::string_view payload);

/// Manager side: pulls the optional "telemetry" member out of a parsed
/// kPartial payload. Same nullopt/Error contract as heartbeats.
[[nodiscard]] util::Expected<std::optional<TelemetryPayload>>
extract_partial_telemetry(const json::Value& partial_payload);

/// One worker's row in the /status board.
struct WorkerBoardEntry {
  std::string worker;
  std::string state;  ///< "connected" | "disconnected" | "lost"
  std::size_t tasks_done = 0;
  std::int64_t clock_offset_ns = 0;
  bool clock_synced = false;
  std::string health;             ///< last piggybacked worker verdict
  std::uint64_t last_seen_ns = 0; ///< manager clock; 0 = never heard from
  bool stale = false;             ///< computed at view time, mirrored here
};

/// One shard's row in the /status board.
struct ShardBoardEntry {
  std::size_t shard = 0;
  std::string state;  ///< queued|assigned|running|retrying|done|quarantined
  std::string worker;
  std::size_t attempts = 0;
};

/// Manager-side fleet aggregation: snapshots + spans + clock offsets per
/// worker, a task/worker status board, an embedded HTTP endpoint and a
/// progress logger. All entry points are thread-safe (the dispatch worker
/// threads, the HTTP thread and the progress thread all poke it).
class TelemetryHub {
 public:
  TelemetryHub() = default;
  ~TelemetryHub();

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  // --- ingestion (dispatch worker threads) ------------------------------
  /// Records the handshake clock-offset estimate for `worker`:
  /// manager_ns = worker_ns - offset_ns.
  void note_clock_sync(const std::string& worker, std::int64_t offset_ns);

  /// Folds one kHeartbeat payload in. Malformed telemetry degrades: the
  /// parse-error counter is bumped and the heartbeat is otherwise ignored.
  void ingest_heartbeat(const std::string& worker, std::string_view payload);

  /// Folds the telemetry member of a parsed kPartial payload in (same
  /// degradation rule).
  void ingest_partial_telemetry(const std::string& worker,
                                const json::Value& partial_payload);

  // --- status board (dispatch scheduler) --------------------------------
  void set_shard_total(std::size_t total);
  void note_task_state(std::size_t shard, std::string_view state,
                       const std::string& worker, std::size_t attempts);
  void note_worker_state(const std::string& worker, std::string_view state);

  // --- configuration ----------------------------------------------------
  /// Staleness horizon: a non-connected worker silent for longer than this
  /// (or one declared "lost") is tagged stale in /status and the fleet
  /// snapshot. <= 0 disables silence-based staleness ("lost" still tags).
  void set_heartbeat_grace(double seconds);

  /// Requires `Authorization: Bearer <token>` on every HTTP request
  /// (constant-time compare; 401 otherwise). Empty = open endpoint.
  void set_auth_token(std::string token);

  /// Replaces the fleet health rule set (defaults to
  /// obs::default_fleet_health_rules()).
  void set_health_rules(std::vector<obs::HealthRule> rules);

  // --- views ------------------------------------------------------------
  /// Fleet-wide merged snapshot: the manager's own registry (source
  /// "manager") plus every worker, per-source labeled + totals. Series of
  /// stale workers carry an extra `stale="true"` label and the
  /// mosaic_fleet_workers_stale gauge counts them.
  [[nodiscard]] obs::Snapshot fleet_snapshot() const;

  /// Fleet health: the rule set evaluated on fleet_snapshot(), folded with
  /// every worker's last piggybacked verdict (worst wins).
  [[nodiscard]] obs::HealthReport fleet_health() const;

  /// /healthz body: fleet verdict + per-worker rollups.
  [[nodiscard]] std::string healthz_json_text() const;
  [[nodiscard]] std::string prometheus_text() const;
  [[nodiscard]] std::string metrics_json_text() const;
  [[nodiscard]] std::string status_json_text() const;
  [[nodiscard]] std::string progress_line() const;

  /// Writes the fleet snapshot to `path` (JSON) + `path + ".prom"`.
  [[nodiscard]] util::Status write_fleet_metrics(const std::string& path);

  /// Writes the merged Chrome trace (manager lane + one named lane per
  /// worker, clock-aligned) to `path`.
  [[nodiscard]] util::Status write_fleet_trace(const std::string& path);

  // --- embedded HTTP endpoint -------------------------------------------
  /// Binds and serves GET /metrics, /metrics.json, /status, /healthz and
  /// /profile (obs::HttpServer routes) on a background thread until stop().
  /// Port 0 binds ephemerally; endpoint_port() reports the resolved port.
  [[nodiscard]] util::Status start_endpoint(const Address& address);
  [[nodiscard]] std::uint16_t endpoint_port() const noexcept {
    return http_.port();
  }

  // --- progress logger --------------------------------------------------
  /// Logs progress_line() every `interval_seconds` (<= 0 starts nothing).
  void start_progress(double interval_seconds);

  /// Joins the HTTP and progress threads (idempotent; destructor calls it).
  void stop();

 private:
  void run_progress(double interval_seconds);
  void register_routes();
  void apply_telemetry(const std::string& worker, TelemetryPayload payload);
  void note_worker_seen(const std::string& worker, std::string_view health);

  /// Refreshes every entry's `stale` flag against `now` and returns the
  /// names of the stale workers. Caller holds board_mutex_.
  [[nodiscard]] std::vector<std::string> refresh_staleness_locked(
      std::uint64_t now_ns) const;

  // Mutable: const views (fleet_snapshot and friends) refresh the manager's
  // own lane at scrape time. FleetRegistry is internally synchronized.
  mutable obs::FleetRegistry registry_;

  mutable std::mutex board_mutex_;
  std::size_t shard_total_ = 0;
  std::map<std::size_t, ShardBoardEntry> shards_;
  mutable std::map<std::string, WorkerBoardEntry> workers_;
  double heartbeat_grace_seconds_ = 0.0;
  std::vector<obs::HealthRule> health_rules_;

  obs::HttpServer http_;
  std::atomic<bool> stop_{false};
  std::thread progress_thread_;
};

}  // namespace mosaic::dist
