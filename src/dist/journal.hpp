// Dispatch resume journal: an append-only JSONL record of per-task outcomes,
// in the same style as the ingest resume journal (ingest/journal.hpp).
//
// A distributed run that dies — SIGINT, OOM, a crashed manager node — must
// not throw away the shards its workers already finished. Every terminal
// task outcome (done, quarantined) is appended as one flushed JSON line;
// `mosaic dispatch --resume` replays the journal, re-validates that each
// "done" entry's partial artifact still exists and parses, and only
// schedules the shards that remain. Because the partial artifacts are
// deterministic, the resumed run's merged output is byte-identical to an
// uninterrupted one (enforced in tests/dist/test_dispatch.cpp and
// tests/cli/cli_dispatch.sh).
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "util/error.hpp"

namespace mosaic::dist {

/// One journaled terminal task outcome.
struct DispatchJournalEntry {
  std::size_t shard = 0;
  std::size_t shard_count = 1;
  std::string status;        ///< "done" | "quarantined"
  std::string worker;        ///< address that produced the outcome
                             ///< ("local" in degraded mode, "" unknown)
  std::size_t attempts = 0;  ///< total assignments the task consumed
  std::string partial_path;  ///< artifact location for "done" entries
  std::string error;         ///< last failure for "quarantined" entries
};

/// Appends entries one JSON line at a time, flushing after each, so a killed
/// manager loses at most the line being written.
class DispatchJournalWriter {
 public:
  DispatchJournalWriter() = default;
  ~DispatchJournalWriter();

  DispatchJournalWriter(const DispatchJournalWriter&) = delete;
  DispatchJournalWriter& operator=(const DispatchJournalWriter&) = delete;

  [[nodiscard]] util::Status open(const std::string& path);
  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }

  /// Appends one entry. Failures are reported but leave the writer usable; a
  /// journal write error must not abort the dispatch it protects.
  [[nodiscard]] util::Status append(const DispatchJournalEntry& entry);

  void close();

 private:
  std::FILE* file_ = nullptr;
};

/// Loads a journal into a shard-keyed map (later entries win; a resumed run
/// may have re-journaled a shard). A missing file yields an empty map —
/// resuming with no journal is a fresh start, not an error. Malformed lines
/// (torn tail) are skipped and counted into `*dropped_lines` when provided.
[[nodiscard]] util::Expected<std::map<std::size_t, DispatchJournalEntry>>
load_dispatch_journal(const std::string& path,
                      std::size_t* dropped_lines = nullptr);

}  // namespace mosaic::dist
