#include "dist/task_runner.hpp"

#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "ingest/ingest.hpp"

namespace mosaic::dist {

using util::Expected;

Expected<report::PartialArtifact> run_shard_task(const TaskRequest& task,
                                                 parallel::ThreadPool& pool) {
  ingest::IngestOptions options;
  options.shard = task.shard;
  options.max_retries = task.max_retries;
  options.file_deadline_seconds = task.file_deadline_seconds;

  auto ingested = ingest::ingest_paths(task.paths, options, pool);
  if (!ingested.has_value()) return std::move(ingested).error();

  // Snapshot the dedup digests before analysis consumes the traces: the
  // merge needs (total bytes, source path) to replay cross-shard dedup.
  std::vector<std::uint64_t> retained_bytes;
  retained_bytes.reserve(ingested->pre.retained.size());
  for (const trace::Trace& t : ingested->pre.retained) {
    retained_bytes.push_back(t.total_bytes());
  }
  std::vector<std::string> retained_paths =
      std::move(ingested->pre.retained_paths);
  const ingest::IngestStats io = ingested->stats;

  core::BatchResult batch = core::analyze_preprocessed(
      std::move(ingested->pre), task.thresholds, &pool);
  MOSAIC_ASSERT(batch.results.size() == retained_paths.size());

  report::PartialArtifact out;
  out.shard_index = task.shard.index;
  out.shard_count = task.shard.count;
  out.ingest = io;
  out.stats = batch.preprocess;
  out.runs_per_app = std::move(batch.runs_per_app);
  out.traces.reserve(batch.results.size());
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    report::ShardTraceResult entry;
    entry.result = std::move(batch.results[i]);
    entry.source_path = std::move(retained_paths[i]);
    entry.total_bytes = retained_bytes[i];
    out.traces.push_back(std::move(entry));
  }
  return out;
}

}  // namespace mosaic::dist
