// Always-on analysis service: `mosaic daemon` (DESIGN.md §17).
//
// The batch pipeline pays full ingest + categorization on every run even
// when the same traces come back; the daemon turns the same funnel into a
// long-running, incremental service. Traces arrive two ways — a poll-based
// scanner over one or more watch directories (reusing the ingest
// scan/classify front end) or kSubmit frames on an MDP1 socket — and every
// submission flows through one path: load, validate, dedup-digest key,
// result-cache lookup, and only on a miss the analyzer (with provenance
// capture forced on, so the cached explain artifact is byte-identical to
// `mosaic explain --json`). Results are served as JSON over the shared
// embedded HTTP endpoint (obs/http.hpp): /results, /explain/<trace-id>,
// /report, plus the standard /metrics, /metrics.json, /healthz and
// /profile — all documented in docs/API.md.
//
// Draining: run() returns when the stop flag is raised (the CLI wires
// SIGINT/SIGTERM to it); in-flight submissions finish, the HTTP endpoint
// and submission listener are joined, and the caller's ObsSession flushes
// the provenance journal and metrics sinks as on every other exit path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/result_cache.hpp"
#include "core/pipeline.hpp"
#include "core/thresholds.hpp"
#include "dist/net.hpp"
#include "dist/protocol.hpp"
#include "ingest/ingest.hpp"
#include "obs/health.hpp"
#include "obs/http.hpp"
#include "util/error.hpp"

namespace mosaic::dist {

struct DaemonOptions {
  /// Directories polled for new trace files. Mutually exclusive with
  /// `listen` at the CLI layer; the library accepts any mix.
  std::vector<std::string> watch_dirs;

  /// MDP1 submission socket (kHello handshake, then kSubmit frames).
  std::optional<Address> listen;

  /// Embedded HTTP endpoint. Port 0 binds ephemerally; http_port() reports
  /// the resolved port.
  Address http{"127.0.0.1", 0};

  /// Seconds between watch-directory sweeps.
  double poll_interval_seconds = 0.5;

  /// Result-cache byte capacity (core::ResultCache).
  std::size_t cache_capacity_bytes = 64ull * 1024 * 1024;

  /// Spool directory for socket submissions (the trace bytes are written
  /// here, then ingested through the same on-disk path as watched files).
  /// Empty picks a per-process directory under the system temp dir.
  std::string spool_dir;

  core::Thresholds thresholds;

  /// Per-file ingest knobs (retries, deadline, fault injection).
  ingest::IngestOptions ingest;

  /// Bearer token required on every HTTP request; empty = open endpoint.
  std::string auth_token;

  /// Health rules evaluated for /healthz; empty = obs::default_health_rules.
  std::vector<obs::HealthRule> health_rules;

  /// Raised by the caller (signal handler) to stop run(). Must outlive the
  /// daemon. nullptr means run() only stops via request_stop().
  const std::atomic<bool>* stop = nullptr;
};

/// Lifetime totals, also exported as mosaic_daemon_* metrics.
struct DaemonStats {
  std::uint64_t submissions = 0;  ///< traces entering the funnel
  std::uint64_t analyzed = 0;     ///< cache misses that ran the pipeline
  std::uint64_t cache_hits = 0;
  std::uint64_t rejected = 0;     ///< load/validate failures
  std::uint64_t scans = 0;        ///< watch-directory sweeps
};

/// The service. start() binds endpoints, run() blocks until stopped.
class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the HTTP endpoint and (when configured) the submission listener.
  [[nodiscard]] util::Status start();

  [[nodiscard]] std::uint16_t http_port() const noexcept;
  /// 0 when no submission listener is configured.
  [[nodiscard]] std::uint16_t listen_port() const noexcept;

  /// Serves until the stop flag is raised, then drains and joins. The
  /// submission listener runs on its own thread; watch-directory sweeps run
  /// on the calling thread.
  void run();

  /// Programmatic stop (tests; the CLI uses DaemonOptions::stop).
  void request_stop() noexcept;

  [[nodiscard]] DaemonStats stats() const;

  /// One watch sweep over every watch directory (exposed for tests; run()
  /// calls it on each poll tick).
  void sweep_watch_dirs();

  /// Submits one on-disk trace through the funnel, as a watch sweep would.
  [[nodiscard]] util::Expected<SubmitReply> submit_path(
      const std::string& path);

 private:
  struct BoardEntry {
    std::string trace_id;
    std::string app_key;
    std::string source_path;
    std::string cache_key;
    std::uint64_t cache_hits = 0;
    core::TraceResult result;
  };

  void register_routes();
  void serve_submissions();
  void handle_submission_session(Connection conn);
  [[nodiscard]] SubmitReply process_file(const std::string& path);
  [[nodiscard]] bool stopped() const noexcept;

  [[nodiscard]] std::string results_json() const;
  [[nodiscard]] std::string report_markdown() const;
  /// /explain/<trace-id> body lookup: nullopt when the id is unknown or the
  /// cached artifact was evicted.
  [[nodiscard]] std::optional<std::string> explain_body(
      const std::string& trace_id) const;

  DaemonOptions options_;
  core::Analyzer analyzer_;
  core::ResultCache cache_;
  obs::HttpServer http_;

  mutable std::mutex board_mutex_;
  std::vector<BoardEntry> board_;                     ///< insertion order
  std::map<std::string, std::size_t> runs_per_app_;   ///< submission counts
  /// Watch-sweep ingestion gate. A file freshly scanned from a watch dir is
  /// NOT submitted on the sweep that first sees it: its (size, mtime)
  /// signature is recorded, and submission happens only once the signature
  /// is unchanged across two consecutive sweeps. A trace still being copied
  /// into the watch directory therefore never reaches the funnel
  /// half-written (it used to be ingested — and rejected as corrupt —
  /// mid-copy). `submitted` keeps a settled path from re-entering.
  struct WatchState {
    std::uintmax_t size = 0;
    std::int64_t mtime = 0;   ///< filesystem clock ticks, equality only
    bool submitted = false;
  };
  std::map<std::string, WatchState> seen_paths_;
  DaemonStats stats_;

  Listener submit_listener_;
  std::thread submit_thread_;
  std::atomic<bool> stop_{false};
};

/// Client side of kSubmit: connect, handshake, ship the file's bytes, wait
/// for the kSubmitResult. The daemon's per-trace outcome (including its
/// rejection errors) comes back as a SubmitReply with ok == false rather
/// than an Expected error, which is reserved for transport failures.
[[nodiscard]] util::Expected<SubmitReply> submit_trace_file(
    const Address& daemon, const std::string& path, double timeout_seconds);

}  // namespace mosaic::dist
