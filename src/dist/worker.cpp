#include "dist/worker.hpp"

#include <mutex>
#include <thread>
#include <utility>

#include "dist/task_runner.hpp"
#include "dist/telemetry.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "report/partial.hpp"
#include "util/backoff.hpp"
#include "util/log.hpp"

namespace mosaic::dist {

using util::Error;
using util::ErrorCode;
using util::Status;

namespace {

struct WorkerMetrics {
  obs::Counter& sessions;
  obs::Counter& tasks;
  obs::Counter& task_errors;
  obs::Counter& heartbeats;
  obs::Histogram& task_ms;

  static WorkerMetrics& get() {
    static auto& registry = obs::Registry::global();
    static WorkerMetrics metrics{
        registry.counter(obs::names::kWorkerSessions,
                         "manager sessions served"),
        registry.counter(obs::names::kWorkerTasks,
                         "shard tasks completed and streamed back"),
        registry.counter(obs::names::kWorkerTaskErrors,
                         "task failures reported to the manager"),
        registry.counter(obs::names::kWorkerHeartbeats,
                         "heartbeat frames sent while tasks ran"),
        registry.histogram(obs::names::kWorkerTaskMs,
                           obs::latency_buckets_ms(),
                           "per-task wall time on the worker"),
    };
    return metrics;
  }
};

/// Sends kHeartbeat frames every interval until stopped. All writes to the
/// shared connection (heartbeats here, the result in the session thread) go
/// through one mutex so frames never interleave.
class HeartbeatPump {
 public:
  HeartbeatPump(Connection& conn, std::mutex& send_mutex,
                double interval_seconds, TelemetrySender* sender)
      : conn_(conn), send_mutex_(send_mutex),
        interval_seconds_(interval_seconds), sender_(sender) {
    thread_ = std::thread([this] { run(); });
  }

  ~HeartbeatPump() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  void run() {
    // Sleep in short slices so stop() returns promptly at task end.
    double since_beat_s = 0.0;
    while (!stop_.load(std::memory_order_relaxed)) {
      constexpr double kSliceS = 0.02;
      util::sleep_for_ms(kSliceS * 1000.0);
      since_beat_s += kSliceS;
      if (since_beat_s < interval_seconds_) continue;
      since_beat_s = 0.0;
      // Snapshot outside the lock; telemetry-enabled tasks piggyback the
      // registry on each beat — whole on the first frame of the session,
      // deltas after (old managers ignore payloads entirely).
      const std::string payload =
          sender_ != nullptr ? sender_->heartbeat_payload() : std::string();
      std::lock_guard<std::mutex> lock(send_mutex_);
      if (!write_frame(conn_, FrameType::kHeartbeat, payload).ok()) return;
      WorkerMetrics::get().heartbeats.add();
    }
  }

  Connection& conn_;
  std::mutex& send_mutex_;
  double interval_seconds_;
  TelemetrySender* sender_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

Worker::Worker(WorkerOptions options)
    : options_(std::move(options)), pool_(options_.threads) {}

Status Worker::bind() { return listener_.listen_on(options_.listen); }

Status Worker::serve() {
  if (!listener_.listening()) {
    if (const auto status = bind(); !status.ok()) return status;
  }
  while (!stop_.load(std::memory_order_relaxed)) {
    // Short accept timeout so stop() is honored promptly.
    auto conn = listener_.accept_connection(0.25);
    if (!conn.has_value()) {
      if (conn.error().code == ErrorCode::kTimeout) continue;
      return conn.error();
    }
    ++stats_.sessions;
    WorkerMetrics::get().sessions.add();
    const bool keep_serving = handle_session(std::move(*conn));
    if (!keep_serving || options_.once) break;
  }
  return Status::success();
}

bool Worker::handle_session(Connection conn) {
  // Handshake: the manager speaks first.
  auto hello = read_frame(conn, 10.0);
  if (!hello.has_value() || hello->type != FrameType::kHello ||
      !check_hello_payload(hello->payload).ok()) {
    MOSAIC_LOG_WARN("worker: rejected session (bad hello)");
    return true;
  }
  if (!write_frame(conn, FrameType::kHello, hello_payload()).ok()) {
    return true;
  }
  // New session, new baseline: the first telemetry frame to this manager
  // ships the whole registry (the delta resync rule).
  telemetry_.reset();

  while (!stop_.load(std::memory_order_relaxed)) {
    auto frame = read_frame(conn, 0.5);
    if (!frame.has_value()) {
      if (frame.error().code == ErrorCode::kTimeout) continue;  // idle
      if (frame.error().code == ErrorCode::kParseError) {
        // Corrupt inbound frame: the stream is still framed; drop it and
        // keep serving.
        MOSAIC_LOG_WARN("worker: %s", frame.error().to_string().c_str());
        continue;
      }
      return true;  // manager closed or connection broke: session over
    }
    switch (frame->type) {
      case FrameType::kShutdown:
        return true;
      case FrameType::kTask: {
        auto task = task_request_from_payload(frame->payload);
        if (!task.has_value()) {
          (void)write_frame(conn, FrameType::kTaskError,
                            task_error_to_payload(task.error()));
          ++stats_.task_errors;
          WorkerMetrics::get().task_errors.add();
          continue;
        }
        if (!handle_task(conn, *task)) return true;
        if (options_.fault.has_value() &&
            options_.fault->kill_after_tasks > 0 &&
            stats_.tasks_done >= options_.fault->kill_after_tasks) {
          // Simulated permanent death: stop listening entirely.
          stats_.killed_by_fault = true;
          MOSAIC_LOG_WARN("worker: fault injection kill_after=%zu tripped",
                          options_.fault->kill_after_tasks);
          return false;
        }
        continue;
      }
      default:
        MOSAIC_LOG_WARN("worker: unexpected frame type %d mid-session",
                        static_cast<int>(frame->type));
        continue;
    }
  }
  return true;
}

bool Worker::handle_task(Connection& conn, const TaskRequest& task) {
  // A span-collecting task turns the tracer on for the rest of the process
  // lifetime; rings are cumulative and shipped whole, so later tasks simply
  // ship a longer ring. Enabled before MOSAIC_SPAN so this task's own span
  // is captured too.
  if (task.collect_spans && !obs::SpanTracer::global().enabled()) {
    obs::SpanTracer::global().enable();
  }
  MOSAIC_SPAN("worker-task");
  MOSAIC_LOG_INFO("worker: task shard %zu/%zu attempt %zu (%zu path(s))",
                  task.shard.index, task.shard.count, task.attempt,
                  task.paths.size());
  const NetFaultSpec* fault =
      options_.fault.has_value() ? &*options_.fault : nullptr;

  // A stall fault silences the worker completely (no heartbeats) before the
  // task starts — indistinguishable from a hang, which is the point.
  if (fault != nullptr && fault->should_stall(task.shard.index,
                                              task.attempt)) {
    util::sleep_for_ms(fault->stall_ms);
  }

  std::mutex send_mutex;
  std::string reply_payload;
  FrameType reply_type;
  {
    obs::ScopedTimerMs timer(WorkerMetrics::get().task_ms);
    HeartbeatPump pump(conn, send_mutex,
                       options_.heartbeat_interval_seconds,
                       task.telemetry ? &telemetry_ : nullptr);
    auto partial = run_shard_task(task, pool_);
    pump.stop();
    if (partial.has_value()) {
      reply_type = FrameType::kPartial;
      json::Value partial_json = report::partial_to_json(*partial);
      if (task.telemetry) {
        // Unknown top-level keys are ignored by partial_from_json, so this
        // rides along without a partial-format version bump.
        partial_json.as_object().set(
            "telemetry", telemetry_.wire_json(task.collect_spans));
      }
      reply_payload = json::serialize(partial_json);
    } else {
      reply_type = FrameType::kTaskError;
      reply_payload = task_error_to_payload(partial.error());
    }
  }

  if (fault != nullptr && fault->should_close(task.shard.index,
                                              task.attempt)) {
    // Simulated death mid-task: the manager sees the socket close and
    // reassigns the orphaned shard.
    MOSAIC_LOG_WARN("worker: fault injection closing connection on shard "
                    "%zu attempt %zu", task.shard.index, task.attempt);
    conn.close();
    return false;
  }
  const bool corrupt =
      fault != nullptr &&
      fault->should_corrupt(task.shard.index, task.attempt);

  std::lock_guard<std::mutex> lock(send_mutex);
  if (!write_frame(conn, reply_type, reply_payload, corrupt).ok()) {
    return false;
  }
  if (reply_type == FrameType::kPartial) {
    ++stats_.tasks_done;
    WorkerMetrics::get().tasks.add();
  } else {
    ++stats_.task_errors;
    WorkerMetrics::get().task_errors.add();
  }
  return true;
}

}  // namespace mosaic::dist
