// Runs one shard task in-process: the library form of the `mosaic batch
// --shard K/N` driver, shared by the worker loop and the manager's
// degradation path (when every worker is lost the manager calls this
// directly so the run still completes).
//
// The output is the same `mosaic-partial-v1` artifact a sharded batch run
// writes, which is what keeps the distributed path inside the PR-5 golden
// guarantee: merging the partials — however many processes produced them,
// in whatever order, after however many retries — is byte-identical to the
// single-shot run.
#pragma once

#include "dist/protocol.hpp"
#include "parallel/thread_pool.hpp"
#include "report/partial.hpp"
#include "util/error.hpp"

namespace mosaic::dist {

/// Ingests and analyzes the shard slice described by `task` and assembles
/// its partial artifact. Per-file failures are folded into the funnel (data,
/// not errors); only setup-level failures return an Error. The artifact's
/// obs paths stay empty — a streamed partial has no local journal/metrics
/// sidecars.
[[nodiscard]] util::Expected<report::PartialArtifact> run_shard_task(
    const TaskRequest& task, parallel::ThreadPool& pool);

}  // namespace mosaic::dist
