// The worker half of distributed dispatch: a process that serves shard
// tasks over the socket protocol.
//
// A worker listens on one address, accepts one manager session at a time,
// and for every kTask frame runs the in-process shard driver
// (task_runner.hpp) and streams the resulting `mosaic-partial-v1` artifact
// back as a kPartial frame. While a task runs, a background thread emits
// kHeartbeat frames so the manager can tell "slow but alive" from "hung" —
// the worker-side half of the failure-detection contract.
//
// Workers are deliberately stateless between tasks: everything a task needs
// arrives in its request, and everything it produces leaves in its reply.
// Killing a worker at any instant therefore loses at most the task it was
// running — which the manager reassigns — never corpus state.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "dist/faults.hpp"
#include "dist/net.hpp"
#include "dist/protocol.hpp"
#include "dist/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace mosaic::dist {

struct WorkerOptions {
  Address listen;               ///< port 0 binds an ephemeral port
  std::size_t threads = 0;      ///< shard-driver pool size (0 = hardware)
  double heartbeat_interval_seconds = 1.0;
  bool once = false;            ///< exit after one manager session
  /// Deterministic fault injection (tests / chaos drills).
  std::optional<NetFaultSpec> fault;
};

struct WorkerStats {
  std::size_t sessions = 0;      ///< manager sessions served
  std::size_t tasks_done = 0;    ///< partials streamed back
  std::size_t task_errors = 0;   ///< kTaskError frames sent
  bool killed_by_fault = false;  ///< kill_after_tasks tripped
};

class Worker {
 public:
  explicit Worker(WorkerOptions options);

  /// Binds the listen address. port() is valid afterwards (resolves an
  /// ephemeral bind, which tests use to avoid port races).
  [[nodiscard]] util::Status bind();
  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }

  /// Serves manager sessions until stop() (or `once`, or a kill_after
  /// fault). Calls bind() itself when not yet bound.
  [[nodiscard]] util::Status serve();

  /// Asks serve() to return at its next accept/idle check (thread-safe).
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] const WorkerStats& stats() const noexcept { return stats_; }

 private:
  /// Handles one manager session; returns false when serve() should exit
  /// (kill_after tripped or stop requested).
  bool handle_session(Connection conn);

  /// Runs one task and streams the reply. Returns false when the connection
  /// is no longer usable.
  bool handle_task(Connection& conn, const TaskRequest& task);

  WorkerOptions options_;
  Listener listener_;
  parallel::ThreadPool pool_;
  std::atomic<bool> stop_{false};
  WorkerStats stats_;
  /// Delta shipper for heartbeat/partial telemetry; reset at session start
  /// so every new manager connection gets a full-resync first frame.
  TelemetrySender telemetry_;
};

}  // namespace mosaic::dist
