#include "dist/daemon.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/categories.hpp"
#include "darshan/io.hpp"
#include "dist/protocol.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance.hpp"
#include "report/aggregate.hpp"
#include "report/json_output.hpp"
#include "report/tables.hpp"
#include "trace/trace.hpp"
#include "util/backoff.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace mosaic::dist {

using json::Array;
using json::Object;
using json::Value;
using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

namespace {

struct DaemonMetrics {
  obs::Counter& submissions;
  obs::Counter& analyzed;
  obs::Counter& scans;

  static DaemonMetrics& get() {
    static auto& registry = obs::Registry::global();
    static DaemonMetrics metrics{
        registry.counter(obs::names::kDaemonSubmissions,
                         "traces submitted to the daemon (watch + socket)"),
        registry.counter(obs::names::kDaemonAnalyzed,
                         "daemon submissions analyzed (cache misses)"),
        registry.counter(obs::names::kDaemonScans,
                         "watch-directory sweeps completed"),
    };
    return metrics;
  }
};

void count_rejection(ErrorCode code) {
  obs::Registry::global()
      .counter(obs::labeled(obs::names::kDaemonRejected, "code",
                            util::error_code_name(code)),
               "daemon submissions rejected before analysis")
      .add();
}

std::vector<std::string> category_names(const core::CategorySet& set) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < core::kCategoryCount; ++i) {
    const auto category = static_cast<core::Category>(i);
    if (set.contains(category)) {
      names.emplace_back(core::category_name(category));
    }
  }
  return names;
}

std::string percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f%%", fraction * 100.0);
  return buffer;
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      analyzer_(options_.thresholds),
      cache_(options_.cache_capacity_bytes) {
  if (options_.spool_dir.empty()) {
    options_.spool_dir =
        (std::filesystem::temp_directory_path() /
         ("mosaic-daemon-spool-" + std::to_string(::getpid())))
            .string();
  }
}

Daemon::~Daemon() {
  request_stop();
  if (submit_thread_.joinable()) submit_thread_.join();
  http_.stop();
}

bool Daemon::stopped() const noexcept {
  if (stop_.load(std::memory_order_relaxed)) return true;
  return options_.stop != nullptr &&
         options_.stop->load(std::memory_order_relaxed);
}

void Daemon::request_stop() noexcept {
  stop_.store(true, std::memory_order_relaxed);
}

std::uint16_t Daemon::http_port() const noexcept { return http_.port(); }

std::uint16_t Daemon::listen_port() const noexcept {
  return submit_listener_.port();
}

Status Daemon::start() {
  register_routes();
  if (!options_.auth_token.empty()) {
    http_.set_auth_token(options_.auth_token);
  }
  if (const auto status = http_.start(options_.http); !status.ok()) {
    return status;
  }
  if (options_.listen.has_value()) {
    if (const auto status = submit_listener_.listen_on(*options_.listen);
        !status.ok()) {
      return status;
    }
  }
  return Status::success();
}

void Daemon::run() {
  if (submit_listener_.listening()) {
    submit_thread_ = std::thread([this] { serve_submissions(); });
  }
  while (!stopped()) {
    if (!options_.watch_dirs.empty()) sweep_watch_dirs();
    // Sleep in short slices so SIGTERM drains promptly.
    double slept_s = 0.0;
    while (!stopped() && slept_s < options_.poll_interval_seconds) {
      constexpr double kSliceS = 0.05;
      util::sleep_for_ms(kSliceS * 1000.0);
      slept_s += kSliceS;
    }
  }
  if (submit_thread_.joinable()) submit_thread_.join();
  http_.stop();
}

void Daemon::sweep_watch_dirs() {
  for (const std::string& dir : options_.watch_dirs) {
    auto paths = darshan::scan_trace_dir(dir);
    if (!paths.has_value()) {
      MOSAIC_LOG_WARN("daemon: watch scan of %s failed: %s", dir.c_str(),
                      paths.error().to_string().c_str());
      continue;
    }
    for (const std::string& path : *paths) {
      if (stopped()) return;
      // Mid-copy guard: submit only after the file's (size, mtime)
      // signature held still across two consecutive sweeps. A writer still
      // copying the trace keeps moving the signature, so the funnel never
      // sees a half-written file.
      std::error_code ec;
      const std::uintmax_t size = std::filesystem::file_size(path, ec);
      if (ec) continue;  // vanished between scan and stat; next sweep decides
      const std::int64_t mtime = static_cast<std::int64_t>(
          std::filesystem::last_write_time(path, ec).time_since_epoch()
              .count());
      if (ec) continue;
      {
        const std::scoped_lock lock(board_mutex_);
        auto [it, inserted] =
            seen_paths_.try_emplace(path, WatchState{size, mtime, false});
        if (inserted) continue;  // first sighting: record, wait one sweep
        WatchState& state = it->second;
        if (state.submitted) continue;
        if (state.size != size || state.mtime != mtime) {
          state.size = size;  // still moving: restart the stability clock
          state.mtime = mtime;
          continue;
        }
        state.submitted = true;
      }
      const SubmitReply reply = process_file(path);
      if (!reply.ok) {
        MOSAIC_LOG_WARN("daemon: %s rejected: %s", path.c_str(),
                        reply.error.c_str());
      }
    }
  }
  DaemonMetrics::get().scans.add();
  const std::scoped_lock lock(board_mutex_);
  ++stats_.scans;
}

SubmitReply Daemon::process_file(const std::string& path) {
  DaemonMetrics::get().submissions.add();
  {
    const std::scoped_lock lock(board_mutex_);
    ++stats_.submissions;
  }
  SubmitReply reply;

  auto parsed = ingest::load_trace(path, options_.ingest);
  if (!parsed.has_value()) {
    count_rejection(parsed.error().code);
    const std::scoped_lock lock(board_mutex_);
    ++stats_.rejected;
    reply.error = parsed.error().to_string();
    return reply;
  }
  if (const auto validity = trace::validate(*parsed); !validity.valid()) {
    count_rejection(ErrorCode::kCorruptTrace);
    const std::scoped_lock lock(board_mutex_);
    ++stats_.rejected;
    reply.error = path + " is corrupted (" +
                  std::string(trace::corruption_kind_name(validity.kind)) +
                  ")";
    return reply;
  }

  const std::string app_key = parsed->app_key();
  const std::string key = core::result_cache_key(
      app_key, parsed->meta.job_id, parsed->total_bytes());
  {
    const std::scoped_lock lock(board_mutex_);
    ++runs_per_app_[app_key];
  }

  if (auto cached = cache_.lookup(key)) {
    // Cache hit: the rerun re-submitted a trace we already categorized.
    // No analysis runs — no pipeline spans, no provenance capture.
    reply.ok = true;
    reply.cached = true;
    reply.trace_id = cached->trace_id;
    reply.app_key = cached->app_key;
    const std::scoped_lock lock(board_mutex_);
    ++stats_.cache_hits;
    for (BoardEntry& entry : board_) {
      if (entry.cache_key == key) {
        ++entry.cache_hits;
        reply.categories = category_names(entry.result.categories);
        break;
      }
    }
    return reply;
  }

  // Cache miss (counted by the cache): run the pipeline with evidence
  // capture forced on, exactly as `mosaic explain` does live, so the cached
  // artifact serves byte-identical output.
  obs::TraceProvenance evidence;
  core::TraceResult result = analyzer_.analyze(*parsed, &evidence);
  DaemonMetrics::get().analyzed.add();
  auto& journal = obs::ProvenanceJournal::global();
  if (journal.enabled()) journal.record(evidence);

  core::CachedAnalysis artifact;
  artifact.trace_id = std::to_string(result.job_id);
  artifact.app_key = app_key;
  artifact.source_path = path;
  artifact.result_json =
      json::serialize(report::trace_result_to_json(result));
  artifact.explain_json =
      json::serialize(obs::provenance_to_json(evidence), /*pretty=*/true) +
      "\n";
  cache_.insert(key, artifact);

  reply.ok = true;
  reply.cached = false;
  reply.trace_id = artifact.trace_id;
  reply.app_key = app_key;
  reply.categories = category_names(result.categories);

  const std::scoped_lock lock(board_mutex_);
  ++stats_.analyzed;
  bool replaced = false;
  for (BoardEntry& entry : board_) {
    if (entry.cache_key == key) {
      entry.result = result;
      entry.source_path = path;
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    BoardEntry entry;
    entry.trace_id = artifact.trace_id;
    entry.app_key = app_key;
    entry.source_path = path;
    entry.cache_key = key;
    entry.result = std::move(result);
    board_.push_back(std::move(entry));
  }
  return reply;
}

Expected<SubmitReply> Daemon::submit_path(const std::string& path) {
  return process_file(path);
}

void Daemon::serve_submissions() {
  while (!stopped()) {
    auto conn = submit_listener_.accept_connection(0.25);
    if (!conn.has_value()) {
      if (conn.error().code == ErrorCode::kTimeout) continue;
      return;  // listener closed / broken
    }
    handle_submission_session(std::move(*conn));
  }
}

void Daemon::handle_submission_session(Connection conn) {
  auto hello = read_frame(conn, 5.0);
  if (!hello.has_value() || hello->type != FrameType::kHello ||
      !check_hello_payload(hello->payload).ok()) {
    return;
  }
  if (!write_frame(conn, FrameType::kHello, hello_payload()).ok()) return;
  while (!stopped()) {
    auto frame = read_frame(conn, 1.0);
    if (!frame.has_value()) {
      if (frame.error().code == ErrorCode::kTimeout) continue;
      return;  // client went away
    }
    if (frame->type == FrameType::kShutdown) return;
    if (frame->type != FrameType::kSubmit) continue;

    SubmitReply reply;
    auto request = submit_request_from_payload(frame->payload);
    if (!request.has_value()) {
      reply.error = request.error().to_string();
    } else {
      // Spool the bytes next to nothing the watcher sees, then push them
      // through the same on-disk funnel as watched files (the extension of
      // the client-side name picks the parser).
      const std::string name =
          std::filesystem::path(request->name).filename().string();
      if (name.empty()) {
        reply.error = "submission has no file name";
      } else {
        std::error_code ec;
        std::filesystem::create_directories(options_.spool_dir, ec);
        const std::string spooled = options_.spool_dir + "/" + name;
        if (const auto written =
                util::write_file_atomic(spooled, request->data);
            !written.ok()) {
          reply.error = written.error().to_string();
        } else {
          reply = process_file(spooled);
        }
      }
    }
    if (!write_frame(conn, FrameType::kSubmitResult,
                     submit_reply_to_payload(reply))
             .ok()) {
      return;
    }
  }
}

std::string Daemon::results_json() const {
  Object out;
  Array traces;
  Object summary;
  {
    const std::scoped_lock lock(board_mutex_);
    summary.set("submissions", stats_.submissions);
    summary.set("analyzed", stats_.analyzed);
    summary.set("cache_hits", stats_.cache_hits);
    summary.set("rejected", stats_.rejected);
    summary.set("scans", stats_.scans);
    for (const BoardEntry& entry : board_) {
      Object trace;
      trace.set("trace_id", entry.trace_id);
      trace.set("app_key", entry.app_key);
      trace.set("source", entry.source_path);
      trace.set("cache_hits", entry.cache_hits);
      Array categories;
      for (const std::string& name : category_names(entry.result.categories)) {
        categories.push_back(name);
      }
      trace.set("categories", std::move(categories));
      trace.set("result", report::trace_result_to_json(entry.result));
      traces.push_back(std::move(trace));
    }
  }
  Object cache;
  cache.set("entries", cache_.entries());
  cache.set("bytes", cache_.bytes());
  cache.set("capacity_bytes", cache_.capacity_bytes());
  cache.set("hits", cache_.hits());
  cache.set("misses", cache_.misses());
  cache.set("evictions", cache_.evictions());
  summary.set("cache", std::move(cache));
  out.set("summary", std::move(summary));
  out.set("traces", std::move(traces));
  return json::serialize(Value(std::move(out)));
}

std::string Daemon::report_markdown() const {
  std::vector<core::TraceResult> results;
  std::map<std::string, std::size_t> runs;
  DaemonStats stats;
  {
    const std::scoped_lock lock(board_mutex_);
    results.reserve(board_.size());
    for (const BoardEntry& entry : board_) results.push_back(entry.result);
    runs = runs_per_app_;
    stats = stats_;
  }
  const report::CategoryDistribution distribution =
      report::aggregate_categories(results, runs);

  std::ostringstream out;
  out << "# mosaic daemon report\n\n";
  out << "- submissions: " << stats.submissions << "\n";
  out << "- analyzed (cache misses): " << stats.analyzed << "\n";
  out << "- cache hits: " << stats.cache_hits << "\n";
  out << "- rejected: " << stats.rejected << "\n";
  out << "- distinct traces: " << results.size() << "\n\n";

  report::TextTable table({"category", "traces", "traces %", "runs %"});
  for (std::size_t i = 0; i < core::kCategoryCount; ++i) {
    const auto category = static_cast<core::Category>(i);
    if (distribution.single[i] == 0) continue;
    table.add_row({std::string(core::category_name(category)),
                   std::to_string(distribution.single[i]),
                   percent(distribution.single_fraction(category)),
                   percent(distribution.weighted_fraction(category))});
  }
  if (table.row_count() == 0) {
    out << "no categorized traces yet\n";
  } else {
    out << table.render_markdown();
  }
  return std::move(out).str();
}

std::optional<std::string> Daemon::explain_body(
    const std::string& trace_id) const {
  std::string cache_key;
  {
    const std::scoped_lock lock(board_mutex_);
    for (const BoardEntry& entry : board_) {
      if (entry.trace_id == trace_id || entry.app_key == trace_id) {
        cache_key = entry.cache_key;
        break;
      }
    }
  }
  if (cache_key.empty()) return std::nullopt;
  // Metrics-silent read: an HTTP scrape must not masquerade as submission
  // traffic in the hit/miss counters.
  auto cached = cache_.peek(cache_key);
  if (!cached.has_value()) return std::nullopt;
  return std::move(cached->explain_json);
}

void Daemon::register_routes() {
  http_.handle("/results", [this](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "application/json", results_json(), {}};
  });
  http_.handle("/report", [this](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "text/markdown", report_markdown(), {}};
  });
  http_.handle_prefix("/explain/", [this](const obs::HttpRequest& request) {
    const std::string trace_id =
        request.target.substr(std::string_view("/explain/").size());
    auto body = explain_body(trace_id);
    if (!body.has_value()) {
      return obs::HttpResponse{
          404, "text/plain",
          "no cached analysis for '" + trace_id +
              "' (unknown trace id, or its artifact was evicted — "
              "resubmit the trace)\n",
          {}};
    }
    return obs::HttpResponse{200, "application/json", std::move(*body), {}};
  });
  http_.handle("/metrics", [](const obs::HttpRequest&) {
    return obs::HttpResponse{
        200, "text/plain; version=0.0.4",
        obs::metrics_to_prometheus(obs::Registry::global().snapshot()), {}};
  });
  http_.handle("/metrics.json", [](const obs::HttpRequest&) {
    return obs::HttpResponse{
        200, "application/json",
        json::serialize(
            obs::metrics_to_json(obs::Registry::global().snapshot())),
        {}};
  });
  http_.handle("/healthz", [this](const obs::HttpRequest&) {
    const std::vector<obs::HealthRule> rules =
        options_.health_rules.empty() ? obs::default_health_rules()
                                      : options_.health_rules;
    const obs::HealthReport report =
        obs::evaluate_health(obs::Registry::global().snapshot(), rules);
    json::Value body = obs::health_to_json(report);
    body.as_object().set("summary", obs::health_summary(report));
    const bool failing = report.level == obs::HealthLevel::kFail;
    return obs::HttpResponse{failing ? 503 : 200, "application/json",
                             json::serialize(body), {}};
  });
  http_.handle("/profile", [](const obs::HttpRequest&) {
    return obs::HttpResponse{
        200, "application/json",
        json::serialize(obs::Profiler::global().profile_json()), {}};
  });
}

DaemonStats Daemon::stats() const {
  const std::scoped_lock lock(board_mutex_);
  return stats_;
}

Expected<SubmitReply> submit_trace_file(const Address& daemon,
                                        const std::string& path,
                                        double timeout_seconds) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kIoError, "cannot read " + path};
  }
  std::ostringstream bytes;
  bytes << in.rdbuf();

  auto conn = connect_to(daemon, timeout_seconds);
  if (!conn.has_value()) return std::move(conn).error();
  if (const auto status =
          write_frame(*conn, FrameType::kHello, hello_payload());
      !status.ok()) {
    return status.error();
  }
  auto hello = read_frame(*conn, timeout_seconds);
  if (!hello.has_value()) return std::move(hello).error();
  if (hello->type != FrameType::kHello) {
    return Error{ErrorCode::kParseError, "daemon did not answer the hello"};
  }
  if (const auto status = check_hello_payload(hello->payload); !status.ok()) {
    return status.error();
  }

  SubmitRequest request;
  request.name = std::filesystem::path(path).filename().string();
  request.data = std::move(bytes).str();
  if (const auto status = write_frame(*conn, FrameType::kSubmit,
                                      submit_request_to_payload(request));
      !status.ok()) {
    return status.error();
  }
  auto result = read_frame(*conn, timeout_seconds);
  if (!result.has_value()) return std::move(result).error();
  if (result->type != FrameType::kSubmitResult) {
    return Error{ErrorCode::kParseError,
                 "daemon answered with an unexpected frame"};
  }
  return submit_reply_from_payload(result->payload);
}

}  // namespace mosaic::dist
