// Deterministic network fault injection for the dispatch/worker pair,
// mirroring ingest::FaultSpec (reader.hpp): probabilities select *tasks* by
// a stable hash of (seed, shard, attempt), so the same spec misbehaves the
// same way on every run — which is what lets the CLI test kill a worker
// mid-run and still assert byte-identical merged output.
//
// Faults are applied on the worker side, where they model the real failure
// modes the manager must survive:
//   close      the worker drops the connection instead of replying
//              (worker death / network partition mid-task),
//   corrupt    the partial frame arrives with a flipped byte (checksum
//              mismatch -> retryable re-request); heals after
//              `corrupt_failures` attempts like transient EIO,
//   stall      the worker goes silent (no heartbeat, no reply) for
//              `stall_ms` before answering (hang detection / deadline),
//   kill_after the worker process exits for good after serving N tasks
//              (permanent death; forces reassignment to survivors).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/error.hpp"

namespace mosaic::dist {

struct NetFaultSpec {
  std::uint64_t seed = 0;
  double close_probability = 0.0;
  double corrupt_probability = 0.0;
  int corrupt_failures = 1;  ///< corrupted attempts before a clean send
  double stall_probability = 0.0;
  double stall_ms = 0.0;
  /// Worker exits after completing this many tasks (0 = never).
  std::size_t kill_after_tasks = 0;

  /// Parses "seed=7,close=0.5,corrupt=0.2,corrupt_failures=1,stall=0.1,
  /// stall_ms=50,kill_after=2" (any subset, any order).
  [[nodiscard]] static util::Expected<NetFaultSpec> parse(
      std::string_view text);

  /// Decision functions, keyed on (seed, shard, attempt). `attempt` is the
  /// manager's global attempt counter for the shard (shipped in the task),
  /// so a "transient" fault heals deterministically on the retry.
  [[nodiscard]] bool should_close(std::size_t shard,
                                  std::size_t attempt) const noexcept;
  [[nodiscard]] bool should_corrupt(std::size_t shard,
                                    std::size_t attempt) const noexcept;
  [[nodiscard]] bool should_stall(std::size_t shard,
                                  std::size_t attempt) const noexcept;
};

}  // namespace mosaic::dist
