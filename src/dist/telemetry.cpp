#include "dist/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "util/backoff.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace mosaic::dist {

using json::Array;
using json::Object;
using json::Value;
using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

namespace {

struct FleetMetrics {
  obs::Gauge& workers;
  obs::Counter& snapshots;
  obs::Counter& spans;
  obs::Counter& parse_errors;
  obs::Counter& deltas;
  obs::Gauge& stale_workers;
  obs::Counter& unauthorized;

  static FleetMetrics& get() {
    static auto& registry = obs::Registry::global();
    static FleetMetrics metrics{
        registry.gauge(obs::names::kFleetWorkers,
                       "workers currently connected to the manager"),
        registry.counter(obs::names::kFleetSnapshots,
                         "worker telemetry snapshots ingested"),
        registry.counter(obs::names::kFleetSpans,
                         "worker spans ingested into the fleet trace"),
        registry.counter(obs::names::kFleetTelemetryParseErrors,
                         "malformed telemetry payloads degraded to plain "
                         "heartbeats"),
        registry.counter(obs::names::kFleetDeltas,
                         "delta telemetry frames folded into the fleet view"),
        registry.gauge(obs::names::kFleetWorkersStale,
                       "workers whose fleet series are stale (heartbeat "
                       "grace expired or worker lost)"),
        registry.counter(obs::names::kFleetEndpointUnauthorized,
                         "HTTP requests rejected for a missing or wrong "
                         "bearer token"),
    };
    return metrics;
  }
};

Error telemetry_error(std::string what) {
  return Error{ErrorCode::kParseError, "telemetry: " + std::move(what)};
}

/// Shared tail of both telemetry carriers: decode `{"snapshot":...}` plus
/// the optional `"spans"` array.
Expected<TelemetryPayload> payload_from_wire(const Value& telemetry) {
  if (!telemetry.is_object()) {
    return telemetry_error("'telemetry' is not an object");
  }
  const Value* snapshot = telemetry.as_object().find("snapshot");
  if (snapshot == nullptr) {
    return telemetry_error("'telemetry' lacks required 'snapshot'");
  }
  auto decoded = obs::snapshot_from_wire_json(*snapshot);
  if (!decoded.has_value()) return decoded.error();
  TelemetryPayload payload;
  payload.snapshot = std::move(*decoded);
  const Value* spans = telemetry.as_object().find("spans");
  if (spans != nullptr) {
    auto decoded_spans = obs::spans_from_wire_json(*spans);
    if (!decoded_spans.has_value()) return decoded_spans.error();
    payload.spans = std::move(*decoded_spans);
  }
  if (const Value* delta = telemetry.as_object().find("delta");
      delta != nullptr) {
    if (!delta->is_bool()) return telemetry_error("'delta' is not a bool");
    payload.delta = delta->as_bool();
  }
  if (const Value* health = telemetry.as_object().find("health");
      health != nullptr) {
    if (!health->is_string()) {
      return telemetry_error("'health' is not a string");
    }
    payload.health = health->as_string();
  }
  return payload;
}

}  // namespace

json::Value telemetry_wire_json(bool include_spans) {
  Object out;
  std::vector<obs::SpanEvent> spans;
  if (include_spans) {
    spans = obs::SpanTracer::global().collect();
    obs::Registry::global()
        .counter(obs::names::kWorkerSpansShipped,
                 "spans shipped to the manager with partial replies")
        .add(spans.size());
  }
  // Counter bumps land *before* the snapshot is taken so the shipped
  // snapshot accounts for its own export.
  obs::Registry::global()
      .counter(obs::names::kWorkerTelemetrySnapshots,
               "metric snapshots shipped to the manager")
      .add();
  out.set("snapshot",
          obs::snapshot_to_wire_json(obs::Registry::global().snapshot()));
  if (include_spans) out.set("spans", obs::spans_to_wire_json(spans));
  return Value(std::move(out));
}

std::string heartbeat_telemetry_payload() {
  Object out;
  out.set("telemetry", telemetry_wire_json(/*include_spans=*/false));
  return json::serialize(Value(std::move(out)), /*pretty=*/false);
}

void TelemetrySender::reset() {
  const std::scoped_lock lock(mutex_);
  has_baseline_ = false;
  baseline_ = obs::Snapshot{};
}

json::Value TelemetrySender::wire_json(bool include_spans) {
  Object out;
  std::vector<obs::SpanEvent> spans;
  if (include_spans) {
    spans = obs::SpanTracer::global().collect();
    obs::Registry::global()
        .counter(obs::names::kWorkerSpansShipped,
                 "spans shipped to the manager with partial replies")
        .add(spans.size());
  }
  obs::Registry::global()
      .counter(obs::names::kWorkerTelemetrySnapshots,
               "metric snapshots shipped to the manager")
      .add();
  obs::Snapshot current = obs::Registry::global().snapshot();
  // The worker's own verdict rides on every frame; its registry updates
  // (level gauge, evaluation counter) land after the snapshot was taken,
  // so they simply ship with the next delta.
  const obs::HealthReport health =
      obs::evaluate_health(current, obs::default_health_rules());

  const std::scoped_lock lock(mutex_);
  bool is_delta = has_baseline_;
  if (is_delta) {
    out.set("snapshot",
            obs::snapshot_to_wire_json(obs::snapshot_delta(baseline_,
                                                           current)));
  } else {
    out.set("snapshot", obs::snapshot_to_wire_json(current));
  }
  baseline_ = std::move(current);
  has_baseline_ = true;
  out.set("delta", is_delta);
  out.set("health", obs::health_summary(health));
  if (include_spans) out.set("spans", obs::spans_to_wire_json(spans));
  if (is_delta) {
    obs::Registry::global()
        .counter(obs::names::kWorkerTelemetryDeltas,
                 "telemetry frames shipped as deltas instead of whole "
                 "registries")
        .add();
  }
  return Value(std::move(out));
}

std::string TelemetrySender::heartbeat_payload() {
  Object out;
  out.set("telemetry", wire_json(/*include_spans=*/false));
  std::string payload = json::serialize(Value(std::move(out)),
                                        /*pretty=*/false);
  obs::Registry::global()
      .counter(obs::names::kWorkerTelemetryBytes,
               "serialized telemetry payload bytes shipped on heartbeats")
      .add(payload.size());
  return payload;
}

Expected<std::optional<TelemetryPayload>> parse_heartbeat_telemetry(
    std::string_view payload) {
  if (payload.empty()) return std::optional<TelemetryPayload>();
  auto parsed = json::parse(payload);
  if (!parsed.has_value()) {
    return telemetry_error("heartbeat payload: " + parsed.error().message);
  }
  if (!parsed->is_object()) {
    return telemetry_error("heartbeat payload is not an object");
  }
  const Value* telemetry = parsed->as_object().find("telemetry");
  if (telemetry == nullptr) return std::optional<TelemetryPayload>();
  auto decoded = payload_from_wire(*telemetry);
  if (!decoded.has_value()) return decoded.error();
  return std::optional<TelemetryPayload>(std::move(*decoded));
}

Expected<std::optional<TelemetryPayload>> extract_partial_telemetry(
    const json::Value& partial_payload) {
  if (!partial_payload.is_object()) {
    return std::optional<TelemetryPayload>();
  }
  const Value* telemetry = partial_payload.as_object().find("telemetry");
  if (telemetry == nullptr) return std::optional<TelemetryPayload>();
  auto decoded = payload_from_wire(*telemetry);
  if (!decoded.has_value()) return decoded.error();
  return std::optional<TelemetryPayload>(std::move(*decoded));
}

TelemetryHub::~TelemetryHub() { stop(); }

void TelemetryHub::note_clock_sync(const std::string& worker,
                                   std::int64_t offset_ns) {
  registry_.set_clock_offset_ns(worker, offset_ns);
  // Labeled {peer=...}, not {worker=...}: the fleet merge prepends a
  // worker label to every manager series, and a second label with the same
  // key would make the merged series name invalid.
  obs::Registry::global()
      .gauge(obs::labeled(obs::names::kFleetClockOffsetNs, "peer", worker),
             "estimated span-clock offset of this peer (ns)")
      .set(offset_ns);
  const std::scoped_lock lock(board_mutex_);
  WorkerBoardEntry& entry = workers_[worker];
  entry.worker = worker;
  entry.clock_offset_ns = offset_ns;
  entry.clock_synced = true;
}

void TelemetryHub::apply_telemetry(const std::string& worker,
                                   TelemetryPayload payload) {
  FleetMetrics::get().snapshots.add();
  if (!payload.spans.empty()) {
    FleetMetrics::get().spans.add(payload.spans.size());
    registry_.update_spans(worker, std::move(payload.spans));
  }
  if (payload.delta) {
    FleetMetrics::get().deltas.add();
    registry_.apply_snapshot_delta(worker, payload.snapshot);
  } else {
    registry_.update_snapshot(worker, std::move(payload.snapshot));
  }
}

void TelemetryHub::note_worker_seen(const std::string& worker,
                                    std::string_view health) {
  const std::scoped_lock lock(board_mutex_);
  WorkerBoardEntry& entry = workers_[worker];
  entry.worker = worker;
  entry.last_seen_ns = obs::SpanTracer::now_ns();
  if (!health.empty()) entry.health = std::string(health);
}

void TelemetryHub::ingest_heartbeat(const std::string& worker,
                                    std::string_view payload) {
  // Any heartbeat — even one whose telemetry is malformed — is liveness.
  note_worker_seen(worker, {});
  auto telemetry = parse_heartbeat_telemetry(payload);
  if (!telemetry.has_value()) {
    // Malformed telemetry degrades to "heartbeat without telemetry": the
    // liveness signal already counted, the task keeps running.
    FleetMetrics::get().parse_errors.add();
    MOSAIC_LOG_WARN("dispatch: %s heartbeat telemetry dropped: %s",
                    worker.c_str(),
                    telemetry.error().to_string().c_str());
    return;
  }
  if (!telemetry->has_value()) return;  // plain heartbeat (old worker)
  if (!(*telemetry)->health.empty()) {
    note_worker_seen(worker, (*telemetry)->health);
  }
  apply_telemetry(worker, std::move(**telemetry));
}

void TelemetryHub::ingest_partial_telemetry(
    const std::string& worker, const json::Value& partial_payload) {
  note_worker_seen(worker, {});
  auto telemetry = extract_partial_telemetry(partial_payload);
  if (!telemetry.has_value()) {
    FleetMetrics::get().parse_errors.add();
    MOSAIC_LOG_WARN("dispatch: %s partial telemetry dropped: %s",
                    worker.c_str(),
                    telemetry.error().to_string().c_str());
    return;
  }
  if (!telemetry->has_value()) return;
  if (!(*telemetry)->health.empty()) {
    note_worker_seen(worker, (*telemetry)->health);
  }
  apply_telemetry(worker, std::move(**telemetry));
}

void TelemetryHub::set_shard_total(std::size_t total) {
  const std::scoped_lock lock(board_mutex_);
  shard_total_ = total;
}

void TelemetryHub::note_task_state(std::size_t shard, std::string_view state,
                                   const std::string& worker,
                                   std::size_t attempts) {
  const std::scoped_lock lock(board_mutex_);
  ShardBoardEntry& entry = shards_[shard];
  entry.shard = shard;
  entry.state = std::string(state);
  entry.worker = worker;
  entry.attempts = attempts;
  if (state == "done") {
    const auto it = workers_.find(worker);
    if (it != workers_.end()) ++it->second.tasks_done;
  }
}

void TelemetryHub::note_worker_state(const std::string& worker,
                                     std::string_view state) {
  std::size_t connected = 0;
  {
    const std::scoped_lock lock(board_mutex_);
    WorkerBoardEntry& entry = workers_[worker];
    entry.worker = worker;
    entry.state = std::string(state);
    if (state == "connected") entry.last_seen_ns = obs::SpanTracer::now_ns();
    for (const auto& [name, board] : workers_) {
      if (board.state == "connected") ++connected;
    }
  }
  FleetMetrics::get().workers.set(static_cast<std::int64_t>(connected));
}

void TelemetryHub::set_heartbeat_grace(double seconds) {
  const std::scoped_lock lock(board_mutex_);
  heartbeat_grace_seconds_ = seconds;
}

void TelemetryHub::set_auth_token(std::string token) {
  http_.set_auth_token(std::move(token));
}

void TelemetryHub::set_health_rules(std::vector<obs::HealthRule> rules) {
  const std::scoped_lock lock(board_mutex_);
  health_rules_ = std::move(rules);
}

std::vector<std::string> TelemetryHub::refresh_staleness_locked(
    std::uint64_t now_ns) const {
  std::vector<std::string> stale;
  const double grace_s = heartbeat_grace_seconds_;
  for (auto& [name, entry] : workers_) {
    // "lost" is a declaration of death — stale immediately. Anything else
    // that is not currently connected goes stale once it has been silent
    // past the heartbeat grace; a connected-but-idle worker never does
    // (idle workers legitimately send nothing between tasks).
    bool is_stale = entry.state == "lost";
    if (!is_stale && grace_s > 0.0 && entry.state != "connected" &&
        entry.last_seen_ns > 0 && now_ns > entry.last_seen_ns) {
      const double silent_s =
          static_cast<double>(now_ns - entry.last_seen_ns) * 1e-9;
      is_stale = silent_s > grace_s;
    }
    entry.stale = is_stale;
    if (is_stale) stale.push_back(name);
  }
  return stale;
}

namespace {

/// Inserts `,stale="true"` after the leading worker label of a fleet
/// series belonging to a stale worker: m{worker="X"} -> m{worker="X",
/// stale="true"}. Series without a worker label (fleet totals) pass
/// through untouched.
void tag_stale_series(std::string& name,
                      const std::vector<std::string>& stale) {
  constexpr std::string_view kPrefix = "worker=\"";
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return;
  if (name.compare(brace + 1, kPrefix.size(), kPrefix) != 0) return;
  const std::size_t value_begin = brace + 1 + kPrefix.size();
  const std::size_t value_end = name.find('"', value_begin);
  if (value_end == std::string::npos) return;
  const std::string_view worker =
      std::string_view(name).substr(value_begin, value_end - value_begin);
  for (const std::string& candidate : stale) {
    if (worker == candidate) {
      name.insert(value_end + 1, ",stale=\"true\"");
      return;
    }
  }
}

}  // namespace

obs::Snapshot TelemetryHub::fleet_snapshot() const {
  std::vector<std::string> stale;
  {
    const std::scoped_lock lock(board_mutex_);
    stale = refresh_staleness_locked(obs::SpanTracer::now_ns());
  }
  // Gauge first so the manager's own snapshot (taken next) carries it —
  // the fleet health rule set resolves it from the merged view.
  FleetMetrics::get().stale_workers.set(
      static_cast<std::int64_t>(stale.size()));
  // The manager is just another source; refresh its lane at scrape time so
  // /metrics is live mid-run.
  registry_.update_snapshot("manager", obs::Registry::global().snapshot());
  obs::Snapshot merged = registry_.merged();
  if (!stale.empty()) {
    // A stale worker's last-known values keep being reported (they are
    // cumulative facts), but every one of its series is tagged so a
    // dashboard cannot mistake them for live data.
    for (auto& sample : merged.counters) tag_stale_series(sample.name, stale);
    for (auto& sample : merged.gauges) tag_stale_series(sample.name, stale);
    for (auto& sample : merged.histograms) {
      tag_stale_series(sample.name, stale);
    }
    const auto by_name = [](const auto& a, const auto& b) {
      return a.name < b.name;
    };
    std::sort(merged.counters.begin(), merged.counters.end(), by_name);
    std::sort(merged.gauges.begin(), merged.gauges.end(), by_name);
    std::sort(merged.histograms.begin(), merged.histograms.end(), by_name);
  }
  return merged;
}

obs::HealthReport TelemetryHub::fleet_health() const {
  std::vector<obs::HealthRule> rules;
  {
    const std::scoped_lock lock(board_mutex_);
    rules = health_rules_;
  }
  if (rules.empty()) rules = obs::default_fleet_health_rules();
  obs::HealthReport report = evaluate_health(fleet_snapshot(), rules);
  // Fold in each worker's own verdict: worker-side rules see per-process
  // detail (quarantine growth, pool saturation) that fleet counters blur.
  // Each non-ok worker contributes a named check so the summary says *which*
  // worker raised the rollup, not just that something did.
  const std::scoped_lock lock(board_mutex_);
  for (const auto& [name, entry] : workers_) {
    if (entry.health.empty()) continue;
    const std::string_view level_name =
        std::string_view(entry.health)
            .substr(0, std::string_view(entry.health).find('('));
    const auto level = obs::health_level_from_name(level_name);
    if (!level.has_value() || *level == obs::HealthLevel::kOk) continue;
    obs::HealthCheck check;
    check.rule = "worker:" + name;
    check.metric = entry.health;  // the worker's own summary, verbatim
    check.value = static_cast<double>(*level);
    check.level = *level;
    report.level = obs::worse(report.level, *level);
    report.checks.push_back(std::move(check));
  }
  return report;
}

std::string TelemetryHub::healthz_json_text() const {
  const obs::HealthReport report = fleet_health();
  json::Value body = obs::health_to_json(report);
  Array workers;
  {
    const std::scoped_lock lock(board_mutex_);
    for (const auto& [name, entry] : workers_) {
      Object worker;
      worker.set("worker", entry.worker);
      worker.set("state", entry.state);
      worker.set("stale", entry.stale);
      worker.set("health", entry.health);
      workers.push_back(std::move(worker));
    }
  }
  body.as_object().set("summary", obs::health_summary(report));
  body.as_object().set("workers", std::move(workers));
  return json::serialize(body);
}

std::string TelemetryHub::prometheus_text() const {
  return obs::metrics_to_prometheus(fleet_snapshot());
}

std::string TelemetryHub::metrics_json_text() const {
  return json::serialize(obs::metrics_to_json(fleet_snapshot()));
}

std::string TelemetryHub::status_json_text() const {
  Object out;
  std::map<std::string, std::size_t> counts{
      {"queued", 0},     {"assigned", 0}, {"running", 0},
      {"retrying", 0},   {"done", 0},     {"quarantined", 0}};
  Array shards;
  Array workers;
  {
    const std::scoped_lock lock(board_mutex_);
    out.set("shards_total", shard_total_);
    for (const auto& [index, entry] : shards_) {
      ++counts[entry.state];
      Object shard;
      shard.set("shard", entry.shard);
      shard.set("state", entry.state);
      shard.set("worker", entry.worker);
      shard.set("attempts", entry.attempts);
      shards.push_back(std::move(shard));
    }
    (void)refresh_staleness_locked(obs::SpanTracer::now_ns());
    for (const auto& [name, entry] : workers_) {
      Object worker;
      worker.set("worker", entry.worker);
      worker.set("state", entry.state);
      worker.set("tasks_done", entry.tasks_done);
      worker.set("clock_synced", entry.clock_synced);
      worker.set("clock_offset_ns", entry.clock_offset_ns);
      worker.set("health", entry.health);
      worker.set("stale", entry.stale);
      worker.set("last_seen_ns", entry.last_seen_ns);
      workers.push_back(std::move(worker));
    }
  }
  Object count_obj;
  for (const auto& [state, count] : counts) count_obj.set(state, count);
  out.set("counts", std::move(count_obj));
  out.set("shards", std::move(shards));
  out.set("workers", std::move(workers));
  return json::serialize(Value(std::move(out)));
}

std::string TelemetryHub::progress_line() const {
  // fleet_health() takes board_mutex_ internally (via fleet_snapshot and
  // the verdict fold) — compute it before our own lock.
  const std::string health = obs::health_summary(fleet_health());
  std::map<std::string, std::size_t> counts;
  std::size_t total = 0;
  std::string worker_states;
  {
    const std::scoped_lock lock(board_mutex_);
    total = shard_total_;
    for (const auto& [index, entry] : shards_) ++counts[entry.state];
    for (const auto& [name, entry] : workers_) {
      if (!worker_states.empty()) worker_states += ", ";
      worker_states += entry.worker;
      worker_states += ' ';
      worker_states += entry.state.empty() ? "unknown" : entry.state;
      if (entry.stale) worker_states += " STALE";
      worker_states += " (";
      worker_states += std::to_string(entry.tasks_done);
      worker_states += " done";
      if (!entry.health.empty()) {
        worker_states += ", ";
        worker_states += entry.health;
      }
      worker_states += ')';
    }
  }
  if (worker_states.empty()) worker_states = "none yet";
  std::string line = "dispatch progress: shards " +
                     std::to_string(counts["done"]) + "/" +
                     std::to_string(total) + " done (" +
                     std::to_string(counts["assigned"] + counts["running"]) +
                     " running, " + std::to_string(counts["queued"]) +
                     " queued, " + std::to_string(counts["retrying"]) +
                     " retrying, " + std::to_string(counts["quarantined"]) +
                     " quarantined); health: " + health +
                     "; workers: " + worker_states;
  return line;
}

Status TelemetryHub::write_fleet_metrics(const std::string& path) {
  const obs::Snapshot snapshot = fleet_snapshot();
  if (const auto status = util::write_file_atomic(
          path, json::serialize(obs::metrics_to_json(snapshot)) + "\n");
      !status.ok()) {
    return status;
  }
  return util::write_file_atomic(path + ".prom",
                                 obs::metrics_to_prometheus(snapshot));
}

Status TelemetryHub::write_fleet_trace(const std::string& path) {
  // Pull the manager's own spans in as lane "manager" (offset 0 by
  // definition: its clock is the reference timeline).
  const std::vector<obs::SpanEvent> events =
      obs::SpanTracer::global().collect();
  std::vector<obs::FleetSpan> spans;
  spans.reserve(events.size());
  for (const obs::SpanEvent& event : events) {
    spans.push_back({event.name, event.start_ns, event.end_ns, event.tid});
  }
  registry_.update_spans("manager", std::move(spans));
  return registry_.write_chrome_trace(path);
}

Status TelemetryHub::start_endpoint(const Address& address) {
  register_routes();
  return http_.start(address);
}

void TelemetryHub::register_routes() {
  // The legacy fleet-scoped rejection counter rides on the shared server's
  // 401 path (which also bumps mosaic_http_unauthorized_total).
  http_.set_unauthorized_hook([] { FleetMetrics::get().unauthorized.add(); });
  http_.handle("/metrics", [this](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "text/plain; version=0.0.4",
                             prometheus_text(), {}};
  });
  http_.handle("/metrics.json", [this](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "application/json", metrics_json_text(),
                             {}};
  });
  http_.handle("/status", [this](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "application/json", status_json_text(), {}};
  });
  http_.handle("/healthz", [this](const obs::HttpRequest&) {
    // 503 on fail makes the endpoint usable as a load-balancer /
    // orchestrator probe without parsing the body. Any check at fail forces
    // the rollup to fail, so matching the rollup key is exact, not
    // heuristic.
    std::string body = healthz_json_text();
    const bool failing =
        body.find("\"status\": \"fail\"") != std::string::npos;
    return obs::HttpResponse{failing ? 503 : 200, "application/json",
                             std::move(body), {}};
  });
  http_.handle("/profile", [](const obs::HttpRequest&) {
    return obs::HttpResponse{
        200, "application/json",
        json::serialize(obs::Profiler::global().profile_json()), {}};
  });
}

void TelemetryHub::start_progress(double interval_seconds) {
  if (interval_seconds <= 0.0) return;
  progress_thread_ =
      std::thread([this, interval_seconds] { run_progress(interval_seconds); });
}

void TelemetryHub::stop() {
  stop_.store(true, std::memory_order_relaxed);
  http_.stop();
  if (progress_thread_.joinable()) progress_thread_.join();
}

void TelemetryHub::run_progress(double interval_seconds) {
  // Sleep in short slices so stop() returns promptly.
  double since_tick_s = 0.0;
  while (!stop_.load(std::memory_order_relaxed)) {
    constexpr double kSliceS = 0.05;
    util::sleep_for_ms(kSliceS * 1000.0);
    since_tick_s += kSliceS;
    if (since_tick_s < interval_seconds) continue;
    since_tick_s = 0.0;
    MOSAIC_LOG_INFO("%s", progress_line().c_str());
  }
  MOSAIC_LOG_INFO("%s", progress_line().c_str());
}

}  // namespace mosaic::dist
