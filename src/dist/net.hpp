// Compatibility header: the TCP transport moved to util/net.hpp so the
// embedded HTTP endpoint (obs/http.hpp, which sits below dist in the link
// graph) can share it with the dispatch/worker wire protocol. dist code
// keeps spelling the types dist::Address / dist::Connection / ... via these
// aliases.
#pragma once

#include "util/net.hpp"

namespace mosaic::dist {

using util::Address;
using util::Connection;
using util::Listener;
using util::connect_to;
using util::parse_address;
using util::parse_address_list;

}  // namespace mosaic::dist
