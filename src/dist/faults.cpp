#include "dist/faults.hpp"

#include <limits>
#include <string>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mosaic::dist {

using util::Error;
using util::ErrorCode;
using util::Expected;

namespace {

/// Uniform [0, 1) draw for (seed, shard, salt) — one splitmix64 stream per
/// decision, mirroring FaultyFileReader's per-(seed, path) streams.
double unit_draw(std::uint64_t seed, std::uint64_t shard,
                 std::uint64_t salt) noexcept {
  std::uint64_t stream = seed ^ util::mix64(shard + 0x9E3779B97F4A7C15ull) ^
                         util::mix64(salt);
  return static_cast<double>(util::splitmix64(stream) >> 11) * 0x1.0p-53;
}

}  // namespace

Expected<NetFaultSpec> NetFaultSpec::parse(std::string_view text) {
  NetFaultSpec spec;
  for (const std::string_view field : util::split(text, ',')) {
    const std::string_view trimmed = util::trim(field);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Error{ErrorCode::kInvalidArgument,
                   "net fault spec field '" + std::string(trimmed) +
                       "' is not key=value"};
    }
    const std::string_view key = util::trim(trimmed.substr(0, eq));
    const std::string_view value = util::trim(trimmed.substr(eq + 1));
    if (key == "seed" || key == "kill_after") {
      const auto number = util::parse_uint(value);
      if (!number.has_value()) {
        return Error{ErrorCode::kInvalidArgument,
                     "net fault spec " + std::string(key) + " '" +
                         std::string(value) +
                         "' is not an unsigned integer"};
      }
      if (key == "seed") {
        spec.seed = *number;
      } else {
        spec.kill_after_tasks = static_cast<std::size_t>(*number);
      }
      continue;
    }
    if (key == "corrupt_failures") {
      const auto failures = util::parse_int(value);
      if (!failures.has_value() || *failures < 0 ||
          *failures > std::numeric_limits<int>::max()) {
        return Error{ErrorCode::kInvalidArgument,
                     "net fault spec corrupt_failures '" +
                         std::string(value) +
                         "' is not a non-negative integer"};
      }
      spec.corrupt_failures = static_cast<int>(*failures);
      continue;
    }
    const auto number = util::parse_double(value);
    if (!number.has_value()) {
      return Error{ErrorCode::kInvalidArgument,
                   "net fault spec value '" + std::string(value) +
                       "' is not numeric"};
    }
    if (key == "close") {
      spec.close_probability = *number;
    } else if (key == "corrupt") {
      spec.corrupt_probability = *number;
    } else if (key == "stall") {
      spec.stall_probability = *number;
    } else if (key == "stall_ms") {
      spec.stall_ms = *number;
    } else {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown net fault spec key '" + std::string(key) + "'"};
    }
  }
  const auto probability_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!probability_ok(spec.close_probability) ||
      !probability_ok(spec.corrupt_probability) ||
      !probability_ok(spec.stall_probability) || spec.stall_ms < 0.0) {
    return Error{ErrorCode::kInvalidArgument,
                 "net fault spec probabilities must be in [0, 1] and "
                 "stall_ms non-negative"};
  }
  return spec;
}

bool NetFaultSpec::should_close(std::size_t shard,
                                std::size_t attempt) const noexcept {
  return unit_draw(seed ^ 0x11ull, shard, attempt) < close_probability;
}

bool NetFaultSpec::should_corrupt(std::size_t shard,
                                  std::size_t attempt) const noexcept {
  // Mirrors transient EIO: the *task* is selected independent of the
  // attempt, then only the first `corrupt_failures` attempts misbehave.
  if (attempt >= static_cast<std::size_t>(corrupt_failures)) return false;
  return unit_draw(seed ^ 0x22ull, shard, 0) < corrupt_probability;
}

bool NetFaultSpec::should_stall(std::size_t shard,
                                std::size_t attempt) const noexcept {
  return unit_draw(seed ^ 0x33ull, shard, attempt) < stall_probability;
}

}  // namespace mosaic::dist
