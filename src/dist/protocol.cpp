#include "dist/protocol.hpp"

#include <cstring>

#include "core/config.hpp"
#include "darshan/binary_format.hpp"
#include "json/json.hpp"
#include "obs/span.hpp"

namespace mosaic::dist {

using json::Array;
using json::Object;
using json::Value;
using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

namespace {

constexpr std::size_t kHeaderBytes = 4 + 1 + 1 + 2 + 4 + 8;

void store_u32(unsigned char* out, std::uint32_t value) noexcept {
  out[0] = static_cast<unsigned char>(value & 0xFF);
  out[1] = static_cast<unsigned char>((value >> 8) & 0xFF);
  out[2] = static_cast<unsigned char>((value >> 16) & 0xFF);
  out[3] = static_cast<unsigned char>((value >> 24) & 0xFF);
}

void store_u64(unsigned char* out, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xFF);
  }
}

std::uint32_t load_u32(const unsigned char* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t load_u64(const unsigned char* in) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

std::uint64_t payload_checksum(std::string_view payload) noexcept {
  return darshan::fnv1a(payload);
}

Error proto_error(std::string what) {
  return Error{ErrorCode::kParseError, "protocol: " + std::move(what)};
}

}  // namespace

bool frame_type_valid(std::uint8_t value) noexcept {
  return value >= static_cast<std::uint8_t>(FrameType::kHello) &&
         value <= static_cast<std::uint8_t>(FrameType::kSubmitResult);
}

Status write_frame(Connection& conn, FrameType type, std::string_view payload,
                   bool corrupt_payload_byte) {
  if (payload.size() > kMaxPayloadBytes) {
    return proto_error("payload of " + std::to_string(payload.size()) +
                       " bytes exceeds the frame cap");
  }
  unsigned char header[kHeaderBytes];
  store_u32(header, kProtocolMagic);
  header[4] = kProtocolVersion;
  header[5] = static_cast<std::uint8_t>(type);
  header[6] = 0;
  header[7] = 0;
  store_u32(header + 8, static_cast<std::uint32_t>(payload.size()));
  store_u64(header + 12, payload_checksum(payload));
  if (const auto status = conn.send_all(header, sizeof header); !status.ok()) {
    return status;
  }
  if (payload.empty()) return Status::success();
  if (!corrupt_payload_byte) {
    return conn.send_all(payload.data(), payload.size());
  }
  // Fault-injection seam: checksum above covered the true payload; flipping
  // one byte now guarantees the receiver detects the corruption.
  std::string corrupted(payload);
  corrupted[corrupted.size() / 2] =
      static_cast<char>(corrupted[corrupted.size() / 2] ^ 0x20);
  return conn.send_all(corrupted.data(), corrupted.size());
}

Expected<Frame> read_frame(Connection& conn, double timeout_seconds) {
  unsigned char header[kHeaderBytes];
  if (const auto status = conn.recv_exact(header, sizeof header,
                                          timeout_seconds);
      !status.ok()) {
    return status.error();
  }
  if (load_u32(header) != kProtocolMagic) {
    return proto_error("bad magic (not a mosaic dispatch stream)");
  }
  if (header[4] != kProtocolVersion) {
    return proto_error("unsupported protocol version " +
                       std::to_string(header[4]));
  }
  if (!frame_type_valid(header[5])) {
    return proto_error("unknown frame type " + std::to_string(header[5]));
  }
  const std::uint32_t length = load_u32(header + 8);
  if (length > kMaxPayloadBytes) {
    return proto_error("frame advertises " + std::to_string(length) +
                       " payload bytes (cap " +
                       std::to_string(kMaxPayloadBytes) + ")");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[5]);
  frame.payload.resize(length);
  if (length > 0) {
    if (const auto status =
            conn.recv_exact(frame.payload.data(), length, timeout_seconds);
        !status.ok()) {
      return status.error();
    }
  }
  // Checksum last: the payload has been consumed either way, so a mismatch
  // leaves the stream framed and the caller free to re-request.
  if (payload_checksum(frame.payload) != load_u64(header + 12)) {
    return proto_error("payload checksum mismatch (corrupt frame)");
  }
  return frame;
}

std::string task_request_to_payload(const TaskRequest& task) {
  Object out;
  Object shard;
  shard.set("index", task.shard.index);
  shard.set("count", task.shard.count);
  out.set("shard", std::move(shard));
  out.set("attempt", task.attempt);
  Array paths;
  paths.reserve(task.paths.size());
  for (const std::string& path : task.paths) paths.push_back(path);
  out.set("paths", std::move(paths));
  out.set("max_retries", task.max_retries);
  out.set("file_deadline_seconds", task.file_deadline_seconds);
  out.set("thresholds", core::thresholds_to_json(task.thresholds));
  // Optional telemetry opt-ins: omitted when off, so payloads sent to (and
  // parsed by) pre-federation peers are unchanged byte for byte.
  if (task.telemetry) out.set("telemetry", true);
  if (task.collect_spans) out.set("collect_spans", true);
  return json::serialize(Value(std::move(out)));
}

Expected<TaskRequest> task_request_from_payload(std::string_view payload) {
  auto parsed = json::parse(payload);
  if (!parsed.has_value()) {
    return proto_error("task payload: " + parsed.error().message);
  }
  if (!parsed->is_object()) return proto_error("task payload: not an object");
  const Object& obj = parsed->as_object();

  TaskRequest task;
  const Value* shard = obj.find("shard");
  if (shard == nullptr || !shard->is_object()) {
    return proto_error("task payload: missing object 'shard'");
  }
  const Value* index = shard->as_object().find("index");
  const Value* count = shard->as_object().find("count");
  if (index == nullptr || !index->is_number() || count == nullptr ||
      !count->is_number()) {
    return proto_error("task payload: shard index/count not numeric");
  }
  task.shard.index = static_cast<std::size_t>(index->as_number());
  task.shard.count = static_cast<std::size_t>(count->as_number());
  if (task.shard.count == 0 || task.shard.index >= task.shard.count) {
    return proto_error("task payload: shard index out of range");
  }
  const Value* attempt = obj.find("attempt");
  if (attempt == nullptr || !attempt->is_number()) {
    return proto_error("task payload: missing number 'attempt'");
  }
  task.attempt = static_cast<std::size_t>(attempt->as_number());
  const Value* paths = obj.find("paths");
  if (paths == nullptr || !paths->is_array()) {
    return proto_error("task payload: missing array 'paths'");
  }
  task.paths.reserve(paths->as_array().size());
  for (const Value& member : paths->as_array()) {
    if (!member.is_string()) {
      return proto_error("task payload: non-string path");
    }
    task.paths.push_back(member.as_string());
  }
  const Value* retries = obj.find("max_retries");
  if (retries == nullptr || !retries->is_number()) {
    return proto_error("task payload: missing number 'max_retries'");
  }
  task.max_retries = static_cast<int>(retries->as_number());
  const Value* deadline = obj.find("file_deadline_seconds");
  if (deadline == nullptr || !deadline->is_number()) {
    return proto_error("task payload: missing number 'file_deadline_seconds'");
  }
  task.file_deadline_seconds = deadline->as_number();
  const Value* thresholds = obj.find("thresholds");
  if (thresholds == nullptr) {
    return proto_error("task payload: missing 'thresholds'");
  }
  auto parsed_thresholds = core::thresholds_from_json(*thresholds);
  if (!parsed_thresholds.has_value()) {
    return proto_error("task payload thresholds: " +
                       parsed_thresholds.error().message);
  }
  task.thresholds = *parsed_thresholds;
  const Value* telemetry = obj.find("telemetry");
  task.telemetry = telemetry != nullptr && telemetry->is_bool() &&
                   telemetry->as_bool();
  const Value* collect_spans = obj.find("collect_spans");
  task.collect_spans = collect_spans != nullptr && collect_spans->is_bool() &&
                       collect_spans->as_bool();
  return task;
}

std::string task_error_to_payload(const Error& error) {
  Object out;
  out.set("code", std::string(util::error_code_name(error.code)));
  out.set("message", error.message);
  return json::serialize(Value(std::move(out)));
}

Error task_error_from_payload(std::string_view payload) {
  auto parsed = json::parse(payload);
  if (!parsed.has_value() || !parsed->is_object()) {
    return Error{ErrorCode::kParseError,
                 "task-error payload is not a JSON object"};
  }
  const Object& obj = parsed->as_object();
  const Value* code = obj.find("code");
  const Value* message = obj.find("message");
  if (code == nullptr || !code->is_string() || message == nullptr ||
      !message->is_string()) {
    return Error{ErrorCode::kParseError,
                 "task-error payload missing code/message"};
  }
  Error error;
  error.code = ErrorCode::kInternal;
  for (std::size_t i = 0; i < util::kErrorCodeCount; ++i) {
    const auto candidate = static_cast<ErrorCode>(i);
    if (util::error_code_name(candidate) == code->as_string()) {
      error.code = candidate;
      break;
    }
  }
  error.message = message->as_string();
  return error;
}

std::string hello_payload() {
  Object out;
  out.set("protocol", std::string("mosaic-dispatch-v1"));
  // Span clock at send time; check_hello_payload ignores it, so peers that
  // predate telemetry federation interoperate unchanged.
  out.set("now_ns", obs::SpanTracer::now_ns());
  return json::serialize(Value(std::move(out)));
}

Status check_hello_payload(std::string_view payload) {
  auto parsed = json::parse(payload);
  if (!parsed.has_value() || !parsed->is_object()) {
    return proto_error("hello payload is not a JSON object");
  }
  const Value* protocol = parsed->as_object().find("protocol");
  if (protocol == nullptr || !protocol->is_string() ||
      protocol->as_string() != "mosaic-dispatch-v1") {
    return proto_error("peer speaks a different protocol");
  }
  return Status::success();
}

std::optional<std::uint64_t> hello_now_ns(std::string_view payload) {
  auto parsed = json::parse(payload);
  if (!parsed.has_value() || !parsed->is_object()) return std::nullopt;
  const Value* now = parsed->as_object().find("now_ns");
  if (now == nullptr || !now->is_number() || now->as_number() < 0.0) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(now->as_number());
}

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string to_hex(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto byte = static_cast<unsigned char>(c);
    out += kHexDigits[byte >> 4];
    out += kHexDigits[byte & 0x0F];
  }
  return out;
}

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Expected<std::string> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return proto_error("submit payload: odd-length hex data");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return proto_error("submit payload: non-hex byte in data");
    }
    out += static_cast<char>((hi << 4) | lo);
  }
  return out;
}

}  // namespace

std::string submit_request_to_payload(const SubmitRequest& request) {
  Object out;
  out.set("name", request.name);
  out.set("hex", to_hex(request.data));
  return json::serialize(Value(std::move(out)));
}

Expected<SubmitRequest> submit_request_from_payload(std::string_view payload) {
  auto parsed = json::parse(payload);
  if (!parsed.has_value() || !parsed->is_object()) {
    return proto_error("submit payload is not a JSON object");
  }
  const Object& obj = parsed->as_object();
  const Value* name = obj.find("name");
  const Value* hex = obj.find("hex");
  if (name == nullptr || !name->is_string() || hex == nullptr ||
      !hex->is_string()) {
    return proto_error("submit payload missing string 'name'/'hex'");
  }
  auto data = from_hex(hex->as_string());
  if (!data.has_value()) return std::move(data).error();
  SubmitRequest request;
  request.name = name->as_string();
  request.data = std::move(*data);
  return request;
}

std::string submit_reply_to_payload(const SubmitReply& reply) {
  Object out;
  out.set("ok", reply.ok);
  if (reply.ok) {
    out.set("trace_id", reply.trace_id);
    out.set("app_key", reply.app_key);
    out.set("cached", reply.cached);
    Array categories;
    for (const std::string& category : reply.categories) {
      categories.push_back(category);
    }
    out.set("categories", std::move(categories));
  } else {
    out.set("error", reply.error);
  }
  return json::serialize(Value(std::move(out)));
}

Expected<SubmitReply> submit_reply_from_payload(std::string_view payload) {
  auto parsed = json::parse(payload);
  if (!parsed.has_value() || !parsed->is_object()) {
    return proto_error("submit reply is not a JSON object");
  }
  const Object& obj = parsed->as_object();
  const Value* ok = obj.find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return proto_error("submit reply missing bool 'ok'");
  }
  SubmitReply reply;
  reply.ok = ok->as_bool();
  if (!reply.ok) {
    const Value* error = obj.find("error");
    if (error == nullptr || !error->is_string()) {
      return proto_error("submit reply missing string 'error'");
    }
    reply.error = error->as_string();
    return reply;
  }
  const Value* trace_id = obj.find("trace_id");
  const Value* app_key = obj.find("app_key");
  const Value* cached = obj.find("cached");
  const Value* categories = obj.find("categories");
  if (trace_id == nullptr || !trace_id->is_string() || app_key == nullptr ||
      !app_key->is_string() || cached == nullptr || !cached->is_bool() ||
      categories == nullptr || !categories->is_array()) {
    return proto_error("submit reply missing trace_id/app_key/cached/"
                       "categories");
  }
  reply.trace_id = trace_id->as_string();
  reply.app_key = app_key->as_string();
  reply.cached = cached->as_bool();
  for (const Value& member : categories->as_array()) {
    if (!member.is_string()) {
      return proto_error("submit reply: non-string category");
    }
    reply.categories.push_back(member.as_string());
  }
  return reply;
}

}  // namespace mosaic::dist
