#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>

namespace mosaic::trace {

std::uint64_t Trace::total_bytes_read() const noexcept {
  std::uint64_t total = 0;
  for (const auto& file : files) total += file.bytes_read;
  return total;
}

std::uint64_t Trace::total_bytes_written() const noexcept {
  std::uint64_t total = 0;
  for (const auto& file : files) total += file.bytes_written;
  return total;
}

std::uint64_t Trace::total_metadata_ops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& file : files) total += file.opens + file.closes + file.seeks;
  return total;
}

const char* corruption_kind_name(CorruptionKind kind) noexcept {
  switch (kind) {
    case CorruptionKind::kNone: return "none";
    case CorruptionKind::kNonPositiveRuntime: return "non-positive-runtime";
    case CorruptionKind::kZeroRanks: return "zero-ranks";
    case CorruptionKind::kNegativeTimestamp: return "negative-timestamp";
    case CorruptionKind::kInvertedWindow: return "inverted-window";
    case CorruptionKind::kAccessOutsideJob: return "access-outside-job";
    case CorruptionKind::kAccessOutsideOpen: return "access-outside-open";
    case CorruptionKind::kCounterMismatch: return "counter-mismatch";
    case CorruptionKind::kNonFiniteValue: return "non-finite-value";
  }
  return "unknown";
}

namespace {

bool finite(double v) noexcept { return std::isfinite(v); }

/// Window check helper: a window is "present" when both ends differ from
/// kNoTimestamp.
bool window_present(double first, double last) noexcept {
  return first != kNoTimestamp || last != kNoTimestamp;
}

/// Branch-light clean predicate for one access window. Accumulated with
/// bitwise & so the common all-clean case evaluates without short-circuit
/// branches. Any non-finite timestamp fails a comparison (NaN compares false,
/// ±inf violates a bound), so no explicit isfinite is needed on the pass
/// side — the slow path re-derives the exact corruption kind.
bool window_clean(double first, double last, std::uint64_t bytes,
                  std::uint64_t calls, double open_ts, double close_ts,
                  double job_end, double slack) noexcept {
  if (first == kNoTimestamp && last == kNoTimestamp) return bytes == 0;
  return bool(unsigned(first >= 0.0) & unsigned(last >= first) &
              unsigned(last <= job_end) & unsigned(first >= open_ts - slack) &
              unsigned(last <= close_ts + slack) &
              unsigned(!(bytes > 0 && calls == 0)));
}

/// Fast validity predicate for one record: exactly equivalent to the detailed
/// classifier below (clean here <=> no corruption found there), but pure
/// comparisons, no allocation, no per-timestamp loop. validate() runs this
/// per record and only drops into the detailed path to name the corruption.
bool record_clean(const FileRecord& file, double job_end,
                  double slack) noexcept {
  const bool envelope =
      bool(unsigned(file.open_ts >= 0.0) &
           unsigned(file.close_ts >= file.open_ts) &
           unsigned(file.close_ts <= job_end));
  return envelope &&
         window_clean(file.first_read_ts, file.last_read_ts, file.bytes_read,
                      file.reads, file.open_ts, file.close_ts, job_end,
                      slack) &&
         window_clean(file.first_write_ts, file.last_write_ts,
                      file.bytes_written, file.writes, file.open_ts,
                      file.close_ts, job_end, slack);
}

/// Detailed classification of one record already known to be unclean. This is
/// the reference semantics: check order fixes which corruption kind wins when
/// several apply, so it must not be reordered independently of record_clean.
ValidityReport classify_record(const FileRecord& file, double job_end,
                               double slack_seconds) {
  const auto fail = [](CorruptionKind kind, std::string detail) {
    return ValidityReport{kind, std::move(detail)};
  };
  const auto where = [&file] {
    return "file " + std::to_string(file.file_id);
  };

  for (double ts : {file.open_ts, file.close_ts, file.first_read_ts,
                    file.last_read_ts, file.first_write_ts,
                    file.last_write_ts}) {
    if (!finite(ts)) return fail(CorruptionKind::kNonFiniteValue, where());
  }
  if (file.open_ts < 0.0 || file.close_ts < 0.0) {
    return fail(CorruptionKind::kNegativeTimestamp, where());
  }
  if (file.close_ts < file.open_ts) {
    return fail(CorruptionKind::kInvertedWindow, where() + " close<open");
  }
  if (file.close_ts > job_end) {
    // The paper's example of corruption: a deallocation recorded before
    // the end of execution leaves a close timestamp beyond the job window.
    return fail(CorruptionKind::kAccessOutsideJob, where() + " close>job end");
  }

  const auto check_window = [&](double first, double last, std::uint64_t bytes,
                                std::uint64_t calls,
                                const char* what) -> ValidityReport {
    if (!window_present(first, last)) {
      if (bytes > 0) {
        return fail(CorruptionKind::kCounterMismatch,
                    where() + " " + what + " bytes without window");
      }
      return ValidityReport{};
    }
    if (first < 0.0 || last < 0.0) {
      return fail(CorruptionKind::kNegativeTimestamp, where());
    }
    if (last < first) {
      return fail(CorruptionKind::kInvertedWindow,
                  where() + " " + what + " last<first");
    }
    if (last > job_end) {
      return fail(CorruptionKind::kAccessOutsideJob,
                  where() + " " + what + " after job end");
    }
    if (first < file.open_ts - slack_seconds ||
        last > file.close_ts + slack_seconds) {
      return fail(CorruptionKind::kAccessOutsideOpen, where());
    }
    if (bytes > 0 && calls == 0) {
      return fail(CorruptionKind::kCounterMismatch,
                  where() + " " + what + " bytes without calls");
    }
    return ValidityReport{};
  };

  if (auto report = check_window(file.first_read_ts, file.last_read_ts,
                                 file.bytes_read, file.reads, "read");
      !report.valid()) {
    return report;
  }
  if (auto report = check_window(file.first_write_ts, file.last_write_ts,
                                 file.bytes_written, file.writes, "write");
      !report.valid()) {
    return report;
  }
  return ValidityReport{};
}

}  // namespace

ValidityReport validate(const Trace& trace, double slack_seconds) {
  const auto fail = [](CorruptionKind kind, std::string detail) {
    return ValidityReport{kind, std::move(detail)};
  };

  if (!finite(trace.meta.run_time) || !finite(trace.meta.start_time)) {
    return fail(CorruptionKind::kNonFiniteValue, "job metadata");
  }
  if (trace.meta.run_time <= 0.0) {
    return fail(CorruptionKind::kNonPositiveRuntime,
                "run_time=" + std::to_string(trace.meta.run_time));
  }
  if (trace.meta.nprocs == 0) {
    return fail(CorruptionKind::kZeroRanks, "nprocs=0");
  }

  const double job_end = trace.meta.run_time + slack_seconds;
  for (const auto& file : trace.files) {
    if (record_clean(file, job_end, slack_seconds)) [[likely]] continue;
    if (auto report = classify_record(file, job_end, slack_seconds);
        !report.valid()) {
      return report;
    }
  }
  return ValidityReport{};
}

std::vector<IoOp> extract_ops(const Trace& trace, OpKind kind,
                              double min_width) {
  std::vector<IoOp> ops;
  extract_ops(trace, kind, min_width, ops);
  return ops;
}

void extract_ops(const Trace& trace, OpKind kind, double min_width,
                 std::vector<IoOp>& ops) {
  ops.clear();
  ops.reserve(trace.files.size());
  for (const auto& file : trace.files) {
    const bool is_read = kind == OpKind::kRead;
    const std::uint64_t bytes = is_read ? file.bytes_read : file.bytes_written;
    const double first = is_read ? file.first_read_ts : file.first_write_ts;
    const double last = is_read ? file.last_read_ts : file.last_write_ts;
    if (bytes == 0 || !window_present(first, last)) continue;
    IoOp op;
    op.start = first;
    op.end = std::max(last, first + min_width);
    op.bytes = bytes;
    op.rank = file.rank;
    op.kind = kind;
    ops.push_back(op);
  }
  std::sort(ops.begin(), ops.end(), [](const IoOp& a, const IoOp& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.end < b.end;
  });
}

std::vector<MetaEvent> metadata_timeline(const Trace& trace) {
  std::vector<MetaEvent> events;
  metadata_timeline(trace, events);
  return events;
}

void metadata_timeline(const Trace& trace, std::vector<MetaEvent>& events) {
  events.clear();
  events.reserve(trace.files.size() * 2);
  for (const auto& file : trace.files) {
    // Darshan never timestamps SEEKs; MOSAIC co-locates them with OPENs.
    if (file.opens + file.seeks > 0) {
      events.push_back({file.open_ts, file.opens + file.seeks});
    }
    if (file.closes > 0) {
      events.push_back({file.close_ts, file.closes});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const MetaEvent& a, const MetaEvent& b) { return a.time < b.time; });
}

}  // namespace mosaic::trace
