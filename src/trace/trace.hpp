// Trace data model: what a Darshan trace (DXT disabled) exposes to MOSAIC.
//
// Darshan aggregates I/O per file between open and close (paper §II-A). A
// trace is therefore job metadata plus per-file counter records; MOSAIC
// derives "I/O operations" from each record's read/write access window. The
// aggregation deliberately loses the temporal distribution of accesses inside
// a window — reproducing the limitation discussed in §IV-A (long-open
// periodic files appear steady).
//
// All timestamps are seconds relative to job start, as in darshan-parser's
// *_START_TIMESTAMP counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mosaic::trace {

/// Direction of an I/O operation. MOSAIC processes reads and writes through
/// independent classifier passes (paper §III-B2).
enum class OpKind : std::uint8_t { kRead, kWrite };

[[nodiscard]] constexpr const char* op_kind_name(OpKind kind) noexcept {
  return kind == OpKind::kRead ? "read" : "write";
}

/// Sentinel timestamp for "never happened" (e.g. a file never read).
inline constexpr double kNoTimestamp = -1.0;

/// Rank value denoting a file shared by all ranks (Darshan convention).
inline constexpr std::int32_t kSharedRank = -1;

/// One aggregated I/O operation: a contiguous access window on one file.
struct IoOp {
  double start = 0.0;            ///< window begin, seconds since job start
  double end = 0.0;              ///< window end; >= start
  std::uint64_t bytes = 0;       ///< bytes moved inside the window
  std::int32_t rank = kSharedRank;  ///< issuing rank, kSharedRank if shared
  OpKind kind = OpKind::kRead;

  [[nodiscard]] double duration() const noexcept { return end - start; }
  /// True when [start,end] and [other.start,other.end] intersect.
  [[nodiscard]] bool overlaps(const IoOp& other) const noexcept {
    return start <= other.end && other.start <= end;
  }
};

/// Per-file aggregated record — the POSIX-module counters MOSAIC consumes.
struct FileRecord {
  std::uint64_t file_id = 0;   ///< stable hash of the path
  std::string file_name;       ///< path if known (may be empty/anonymized)
  std::int32_t rank = kSharedRank;

  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t reads = 0;     ///< POSIX_READS: number of read calls
  std::uint64_t writes = 0;    ///< POSIX_WRITES
  std::uint64_t opens = 0;     ///< POSIX_OPENS
  std::uint64_t closes = 0;    ///< implied CLOSE count (== opens when clean)
  std::uint64_t seeks = 0;     ///< POSIX_SEEKS

  double open_ts = 0.0;                 ///< first open
  double close_ts = 0.0;                ///< last close
  double first_read_ts = kNoTimestamp;  ///< kNoTimestamp if never read
  double last_read_ts = kNoTimestamp;
  double first_write_ts = kNoTimestamp;
  double last_write_ts = kNoTimestamp;
};

/// Job-level metadata from the Darshan header.
struct JobMeta {
  std::uint64_t job_id = 0;
  std::string app_name;   ///< executable name
  std::string user;       ///< user id (anonymized on real datasets)
  std::uint32_t nprocs = 1;
  double start_time = 0.0;  ///< epoch seconds of job start
  double run_time = 0.0;    ///< wall-clock duration in seconds
};

/// A complete execution trace: one job, many file records.
struct Trace {
  JobMeta meta;
  std::vector<FileRecord> files;

  [[nodiscard]] std::uint64_t total_bytes_read() const noexcept;
  [[nodiscard]] std::uint64_t total_bytes_written() const noexcept;
  /// OPEN + CLOSE + SEEK counts summed over all records.
  [[nodiscard]] std::uint64_t total_metadata_ops() const noexcept;
  /// Read+write bytes; the pre-processing dedup keeps the heaviest trace
  /// per application by this measure (paper §III-B1). Single pass over the
  /// file records — this runs once per valid trace in the funnel.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& file : files) total += file.bytes_read + file.bytes_written;
    return total;
  }
  /// Key identifying "the same application run by the same user".
  [[nodiscard]] std::string app_key() const {
    return meta.user + "/" + meta.app_name;
  }
  /// Writes app_key() into `out`, reusing its capacity. Hot-path variant
  /// for per-trace loops that would otherwise allocate a fresh key string.
  void app_key(std::string& out) const {
    out.assign(meta.user);
    out += '/';
    out += meta.app_name;
  }
};

/// Reasons a trace is rejected as corrupted (paper §III-B1 step 1).
enum class CorruptionKind : std::uint8_t {
  kNone,
  kNonPositiveRuntime,     ///< run_time <= 0 or not finite
  kZeroRanks,              ///< nprocs == 0
  kNegativeTimestamp,      ///< any timestamp < 0 where one is required
  kInvertedWindow,         ///< close before open, or last before first
  kAccessOutsideJob,       ///< access or close after job end (deallocation
                           ///< before the end of execution, per the paper)
  kAccessOutsideOpen,      ///< read/write window outside [open, close]
  kCounterMismatch,        ///< bytes recorded with zero corresponding calls
  kNonFiniteValue,         ///< NaN/inf timestamp
};

[[nodiscard]] const char* corruption_kind_name(CorruptionKind kind) noexcept;

/// Result of validating a trace.
struct ValidityReport {
  CorruptionKind kind = CorruptionKind::kNone;
  std::string detail;  ///< human-readable context (file id, offending value)

  [[nodiscard]] bool valid() const noexcept {
    return kind == CorruptionKind::kNone;
  }
};

/// Semantic validity check. A small timing slack (default 1s) absorbs the
/// clock skew real Darshan records exhibit between rank-local timers.
[[nodiscard]] ValidityReport validate(const Trace& trace,
                                      double slack_seconds = 1.0);

/// Extracts the aggregated I/O operations of `kind` from every file record:
/// one op per non-empty access window. Zero-length windows are widened to
/// `min_width` seconds so interval logic never sees degenerate spans.
/// Output is sorted by start time.
[[nodiscard]] std::vector<IoOp> extract_ops(const Trace& trace, OpKind kind,
                                            double min_width = 1e-3);

/// As above, but writes into `out` (cleared first, capacity reused) — the
/// allocation-free form used by the analyzer workspace.
void extract_ops(const Trace& trace, OpKind kind, double min_width,
                 std::vector<IoOp>& out);

/// A burst of metadata requests at a point in time. MOSAIC assumes SEEKs are
/// co-located with OPENs because Darshan does not timestamp them (§III-B3c).
struct MetaEvent {
  double time = 0.0;
  std::uint64_t requests = 0;
};

/// Metadata request timeline: for each file record, opens+seeks fire at
/// open_ts and closes fire at close_ts. Sorted by time.
[[nodiscard]] std::vector<MetaEvent> metadata_timeline(const Trace& trace);

/// As above, but writes into `out` (cleared first, capacity reused).
void metadata_timeline(const Trace& trace, std::vector<MetaEvent>& out);

}  // namespace mosaic::trace
