// Deterministic corpus sharding for out-of-core / multi-process batch runs.
//
// The paper processes a year of Blue Waters traces (462,502 files) in one
// pass; at the ROADMAP's "millions of traces" scale a single process cannot
// hold every per-trace result until report time. Sharding splits the scanned
// file list into N disjoint subsets by a stable hash of each file's name, so
//   - every file belongs to exactly one shard,
//   - the assignment depends only on (file name, N) — not on scan order,
//     argument order, thread count, or the directory the corpus is mounted
//     under — and
//   - N independent `mosaic batch --shard K/N` processes (or one process
//     looping K in-process via --shards N) can each analyze their subset and
//     write a mergeable partial artifact (see report/partial.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace mosaic::ingest {

/// Which slice of the corpus an ingest run owns. The default (0 of 1) is
/// the unsharded whole-corpus run.
struct ShardSpec {
  std::size_t index = 0;  ///< this run's shard, in [0, count)
  std::size_t count = 1;  ///< total shards

  /// True when the spec actually partitions (count > 1).
  [[nodiscard]] bool active() const noexcept { return count > 1; }

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Shard owning `path` under an N-way partition. Hashes only the final path
/// component so the partition is invariant under corpus relocation (the same
/// files shard identically whether scanned via /mnt/a/pop or ./pop).
[[nodiscard]] std::size_t shard_of(std::string_view path,
                                   std::size_t count) noexcept;

/// True when `spec` owns `path`.
[[nodiscard]] bool shard_owns(const ShardSpec& spec,
                              std::string_view path) noexcept;

/// Parses the CLI form "K/N" (e.g. "0/4"). Errors on malformed text,
/// N == 0, or K >= N.
[[nodiscard]] util::Expected<ShardSpec> parse_shard_spec(
    std::string_view text);

/// Derives a per-shard artifact path by inserting ".shard-K" before the
/// final extension: "metrics.json" -> "metrics.shard-2.json";
/// extensionless paths get the suffix appended. Keeps N concurrent shard
/// processes launched from one command line from clobbering each other's
/// journal/metrics/provenance files.
[[nodiscard]] std::string shard_suffix_path(const std::string& path,
                                            std::size_t index);

/// Canonical partial-artifact file name for shard `index`:
/// "results.shard-K.json".
[[nodiscard]] std::string partial_filename(std::size_t index);

}  // namespace mosaic::ingest
