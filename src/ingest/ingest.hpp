// Fault-tolerant streaming trace ingestion (the front end of `mosaic batch`).
//
// The paper's dataset is hostile by construction — 32% of the Blue Waters
// 2019 traces are corrupted and must be evicted and counted, not crash the
// run. This subsystem replaces the ad-hoc serial load loop with a pipeline
// that:
//   - streams files through the shared ThreadPool in bounded windows, so
//     peak memory is O(window + unique applications) instead of O(corpus);
//   - classifies every failure into the util::ErrorCode taxonomy and feeds
//     it into the PreprocessStats funnel (parse-error vs corrupt-trace vs
//     io-error vs not-found vs timeout);
//   - retries transient kIoError reads with capped exponential backoff and
//     bounds each file's total read+parse budget with a deadline;
//   - optionally quarantines poison files (content-caused failures) into a
//     side directory;
//   - journals per-file outcomes so an interrupted batch resumes where it
//     left off (see journal.hpp);
//   - reads through the FileReader seam, so the fault-injection harness can
//     exercise all of the above deterministically (see reader.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/preprocess.hpp"
#include "ingest/reader.hpp"
#include "ingest/shard.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace mosaic::ingest {

struct IngestOptions {
  /// Byte source; null uses the real filesystem.
  FileReader* reader = nullptr;
  /// Files concurrently held in memory (raw bytes + parsed trace) while a
  /// window is in flight. 0 derives 4x the pool's thread count.
  std::size_t max_in_flight = 0;
  /// Extra read attempts after the first for transient kIoError failures.
  int max_retries = 3;
  /// Backoff schedule between attempts (deterministic, no jitter).
  double backoff_initial_ms = 10.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 2000.0;
  /// Total read+retry+parse budget per file; 0 means unlimited. Expiry
  /// classifies the file as kTimeout — one pathological file must not wedge
  /// a worker for the rest of the batch.
  double file_deadline_seconds = 30.0;
  /// Validity-check slack forwarded to preprocessing.
  double validity_slack_seconds = 1.0;
  /// When set, files evicted for content reasons (parse-error,
  /// corrupt-trace, timeout) are moved here.
  std::string quarantine_dir;
  /// When set, per-file outcomes are appended here.
  std::string journal_path;
  /// Replay journal entries instead of re-reading their files.
  bool resume = false;
  /// Test seam simulating a crash: stop (with stats.aborted set) once this
  /// many files have been processed and journaled. 0 disables.
  std::size_t abort_after_files = 0;
  /// Slice of the corpus this run owns (see shard.hpp). When active
  /// (count > 1), paths hashing to a different shard are dropped before any
  /// counting — each file is scanned, journaled, and folded by exactly one
  /// shard, which is what makes shard partials mergeable back into the
  /// single-shot funnel.
  ShardSpec shard;
};

/// Ingest-level counters, complementing the PreprocessStats funnel.
struct IngestStats {
  std::size_t files_scanned = 0;     ///< paths handed to ingest
  std::size_t loaded = 0;            ///< read + parsed successfully
  std::size_t failed = 0;            ///< terminal load failures
  std::size_t retry_attempts = 0;    ///< extra read attempts issued
  std::size_t recovered = 0;         ///< files that loaded after >= 1 retry
  std::size_t quarantined = 0;       ///< files moved to the quarantine dir
  std::size_t journal_replayed = 0;  ///< outcomes taken from the journal
  std::size_t journal_dropped = 0;   ///< malformed journal lines skipped
  bool aborted = false;              ///< abort_after_files tripped
};

/// Streaming ingest output: the pre-processed funnel plus ingest counters.
struct IngestResult {
  core::PreprocessResult pre;
  IngestStats stats;
};

/// Streams `paths` through the pool and folds every outcome into the
/// pre-processing funnel. Only setup failures (unreadable journal,
/// unusable quarantine directory) are reported as errors; per-file failures
/// are data, not errors.
[[nodiscard]] util::Expected<IngestResult> ingest_paths(
    const std::vector<std::string>& paths, const IngestOptions& options,
    parallel::ThreadPool& pool);

/// Loads one trace with the same retry/backoff/deadline/classification
/// behavior as the batch pipeline (used by `mosaic analyze`). The attempt
/// count used is reported via `*retry_attempts` when provided.
[[nodiscard]] util::Expected<trace::Trace> load_trace(
    const std::string& path, const IngestOptions& options = {},
    std::size_t* retry_attempts = nullptr);

}  // namespace mosaic::ingest
