// File-reading seam of the ingest pipeline.
//
// All trace bytes flow through a FileReader so the fault-injection harness
// can sit between the loader and the filesystem. SystemFileReader is the
// production implementation; FaultyFileReader wraps any reader and injects
// EIO, short reads, delays and bit flips deterministically from a seed —
// the same (seed, path) pair always misbehaves the same way, which is what
// lets integration tests assert exact funnel counts.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/mmap.hpp"

namespace mosaic::ingest {

/// Abstract whole-file reader. `attempt` is 0-based and increments across
/// retries of the same file, so injectors can model transient faults that
/// heal after a few attempts.
class FileReader {
 public:
  virtual ~FileReader() = default;
  [[nodiscard]] virtual util::Expected<std::vector<std::byte>> read(
      const std::string& path, int attempt) = 0;

  /// Zero-copy variant: the loader parses straight from the returned span.
  /// The default wraps read() in a buffer-backed MappedFile, so injecting
  /// readers keep their fault semantics without knowing about mmap.
  [[nodiscard]] virtual util::Expected<util::MappedFile> read_mapped(
      const std::string& path, int attempt);
};

/// Reads from the real filesystem. A missing file is kNotFound; any open or
/// read failure on an existing file is kIoError (the retryable class).
class SystemFileReader final : public FileReader {
 public:
  [[nodiscard]] util::Expected<std::vector<std::byte>> read(
      const std::string& path, int attempt) override;

  /// Memory-maps the file instead of copying it (heap fallback inside
  /// MappedFile when mmap is unavailable).
  [[nodiscard]] util::Expected<util::MappedFile> read_mapped(
      const std::string& path, int attempt) override;
};

/// Process-wide SystemFileReader used when callers pass no reader.
[[nodiscard]] FileReader& system_reader();

/// Which faults to inject, and how often. Probabilities select *files* (by a
/// stable hash of the path mixed with `seed`), not individual reads, so a
/// file's behavior is reproducible across runs and across retry attempts.
struct FaultSpec {
  std::uint64_t seed = 0;
  double transient_eio_probability = 0.0;  ///< EIO that heals after retries
  int transient_eio_failures = 2;          ///< failing attempts before success
  double permanent_eio_probability = 0.0;  ///< EIO on every attempt
  double short_read_probability = 0.0;     ///< truncated buffer (torn file)
  double bitflip_probability = 0.0;        ///< one flipped bit in the payload
  double delay_probability = 0.0;          ///< slow read (stalling device)
  double delay_ms = 0.0;

  /// Parses "seed=7,eio=0.3,eio_failures=2,eio_permanent=0.05,short=0.1,
  /// flip=0.1,delay=0.2,delay_ms=5" (any subset, any order).
  [[nodiscard]] static util::Expected<FaultSpec> parse(std::string_view text);
};

/// Wraps another reader and injects the faults described by the spec.
class FaultyFileReader final : public FileReader {
 public:
  explicit FaultyFileReader(FaultSpec spec, FileReader* base = nullptr)
      : spec_(spec), base_(base != nullptr ? base : &system_reader()) {}

  [[nodiscard]] util::Expected<std::vector<std::byte>> read(
      const std::string& path, int attempt) override;

 private:
  FaultSpec spec_;
  FileReader* base_;
};

/// Decodes trace bytes by file extension (".mbt" binary, otherwise darshan
/// text). The deadline bounds text parsing of pathological documents.
[[nodiscard]] util::Expected<trace::Trace> parse_trace_bytes(
    const std::string& path, std::span<const std::byte> bytes,
    const util::Deadline& deadline = {});

}  // namespace mosaic::ingest
