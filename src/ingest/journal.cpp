#include "ingest/journal.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "json/json.hpp"
#include "util/strings.hpp"

namespace mosaic::ingest {

using util::Error;
using util::ErrorCode;
using util::Expected;
using util::Status;

namespace {

std::string entry_to_line(const JournalEntry& entry) {
  json::Object out;
  out.set("path", entry.path);
  out.set("outcome", entry.valid ? "valid" : "evicted");
  if (entry.valid) {
    out.set("app", entry.app_key);
    out.set("bytes", std::to_string(entry.total_bytes));
    out.set("job", std::to_string(entry.job_id));
  } else {
    out.set("code", entry.code);
    if (!entry.corruption_kind.empty()) {
      out.set("kind", entry.corruption_kind);
    }
  }
  std::string line = json::serialize(json::Value(std::move(out)),
                                     /*pretty=*/false);
  line += '\n';
  return line;
}

/// Parses one journal line; nullopt for anything malformed or incomplete
/// (most commonly the torn final line of a killed run).
std::optional<JournalEntry> entry_from_line(std::string_view line) {
  const auto parsed = json::parse(line);
  if (!parsed.has_value() || !parsed->is_object()) return std::nullopt;
  const json::Object& obj = parsed->as_object();

  const auto get_string = [&obj](std::string_view key)
      -> std::optional<std::string> {
    const json::Value* value = obj.find(key);
    if (value == nullptr || !value->is_string()) return std::nullopt;
    return value->as_string();
  };

  JournalEntry entry;
  const auto path = get_string("path");
  const auto outcome = get_string("outcome");
  if (!path || !outcome) return std::nullopt;
  entry.path = *path;

  if (*outcome == "valid") {
    entry.valid = true;
    const auto app = get_string("app");
    const auto bytes = get_string("bytes");
    const auto job = get_string("job");
    if (!app || !bytes || !job) return std::nullopt;
    const auto bytes_value = util::parse_uint(*bytes);
    const auto job_value = util::parse_uint(*job);
    if (!bytes_value || !job_value) return std::nullopt;
    entry.app_key = *app;
    entry.total_bytes = *bytes_value;
    entry.job_id = *job_value;
    return entry;
  }
  if (*outcome == "evicted") {
    const auto code = get_string("code");
    if (!code) return std::nullopt;
    entry.code = *code;
    if (const auto kind = get_string("kind")) entry.corruption_kind = *kind;
    return entry;
  }
  return std::nullopt;
}

}  // namespace

JournalWriter::~JournalWriter() { close(); }

Status JournalWriter::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Error{ErrorCode::kIoError, "cannot open journal " + path};
  }
  return Status::success();
}

Status JournalWriter::append(const JournalEntry& entry) {
  if (file_ == nullptr) return Status::success();  // journaling disabled
  const std::string line = entry_to_line(entry);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    return Error{ErrorCode::kIoError, "journal append failed"};
  }
  return Status::success();
}

void JournalWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Expected<std::map<std::string, JournalEntry>> load_journal(
    const std::string& path, std::size_t* dropped_lines) {
  std::map<std::string, JournalEntry> entries;
  if (dropped_lines != nullptr) *dropped_lines = 0;

  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return entries;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kIoError, "cannot open journal " + path};
  }
  std::string line;
  while (std::getline(in, line)) {
    // Journals hand-inspected (or rsynced) through Windows tooling come back
    // with CRLF endings; the '\r' is not part of the record.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (util::trim(line).empty()) continue;
    if (auto entry = entry_from_line(line)) {
      entries[entry->path] = std::move(*entry);
    } else if (dropped_lines != nullptr) {
      ++*dropped_lines;
    }
  }
  if (in.bad()) {
    return Error{ErrorCode::kIoError, "read failure on journal " + path};
  }
  return entries;
}

}  // namespace mosaic::ingest
