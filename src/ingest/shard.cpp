#include "ingest/shard.hpp"

#include "darshan/binary_format.hpp"
#include "util/strings.hpp"

namespace mosaic::ingest {

using util::Error;
using util::ErrorCode;
using util::Expected;

namespace {

/// Final path component ('/'-separated; also accepts '\\' so Windows-style
/// paths shard by file name too).
std::string_view basename_of(std::string_view path) noexcept {
  const auto slash = path.find_last_of("/\\");
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::size_t shard_of(std::string_view path, std::size_t count) noexcept {
  if (count <= 1) return 0;
  // fnv1a is already the repo's stable content hash (MBT checksums, fault
  // injection); splitting its 64 bits by modulo is unbiased enough for the
  // file counts sharding targets.
  return static_cast<std::size_t>(darshan::fnv1a(basename_of(path)) % count);
}

bool shard_owns(const ShardSpec& spec, std::string_view path) noexcept {
  return shard_of(path, spec.count) == spec.index;
}

Expected<ShardSpec> parse_shard_spec(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    return Error{ErrorCode::kInvalidArgument,
                 "shard spec '" + std::string(text) +
                     "' is not of the form K/N"};
  }
  const auto index = util::parse_uint(util::trim(text.substr(0, slash)));
  const auto count = util::parse_uint(util::trim(text.substr(slash + 1)));
  if (!index.has_value() || !count.has_value()) {
    return Error{ErrorCode::kInvalidArgument,
                 "shard spec '" + std::string(text) +
                     "' is not of the form K/N with unsigned K, N"};
  }
  if (*count == 0 || *index >= *count) {
    return Error{ErrorCode::kInvalidArgument,
                 "shard spec '" + std::string(text) +
                     "' must satisfy K < N and N >= 1"};
  }
  ShardSpec spec;
  spec.index = static_cast<std::size_t>(*index);
  spec.count = static_cast<std::size_t>(*count);
  return spec;
}

std::string shard_suffix_path(const std::string& path, std::size_t index) {
  const std::string suffix = ".shard-" + std::to_string(index);
  const auto slash = path.find_last_of("/\\");
  const auto dot = path.rfind('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;  // no extension on the final component
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

std::string partial_filename(std::size_t index) {
  return "results.shard-" + std::to_string(index) + ".json";
}

}  // namespace mosaic::ingest
