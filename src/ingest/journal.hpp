// Resume journal: an append-only record of per-file ingest outcomes.
//
// A multi-hour batch over hundreds of thousands of traces must survive being
// killed. Each file's outcome is appended as one JSON line and flushed, so
// an interrupted run can be resumed with --resume: journaled evictions are
// re-counted without touching the file again, and journaled valid files
// re-enter dedup by digest (path, app key, bytes, job id) — only the per-app
// dedup winners are ever re-read. A torn trailing line (the crash can hit
// mid-append) is detected and ignored on load.
//
// 64-bit counters are stored as decimal strings because JSON numbers are
// doubles here; byte counts must round-trip exactly or the dedup tie-break
// could pick a different winner after resume.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "util/error.hpp"

namespace mosaic::ingest {

/// One journaled per-file outcome.
struct JournalEntry {
  std::string path;
  bool valid = false;
  /// Valid files: the dedup digest.
  std::string app_key;
  std::uint64_t total_bytes = 0;
  std::uint64_t job_id = 0;
  /// Evicted files: ErrorCode name, plus the CorruptionKind name when the
  /// validity check was the evicting stage (empty otherwise).
  std::string code;
  std::string corruption_kind;
};

/// Appends entries one JSON line at a time, flushing after each so a killed
/// process loses at most the line being written.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending (creating it if needed).
  [[nodiscard]] util::Status open(const std::string& path);

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }

  /// Appends one entry. Failures are reported but leave the writer usable;
  /// a journal write error must not abort the batch it protects.
  [[nodiscard]] util::Status append(const JournalEntry& entry);

  void close();

 private:
  std::FILE* file_ = nullptr;
};

/// Loads a journal into a path-keyed map. Later entries for the same path
/// win (a resumed run may have re-journaled a file). A missing file yields
/// an empty map — resuming with no journal is a fresh start, not an error.
/// Malformed lines (torn tail, stray garbage) are skipped and counted into
/// `*dropped_lines` when provided.
[[nodiscard]] util::Expected<std::map<std::string, JournalEntry>> load_journal(
    const std::string& path, std::size_t* dropped_lines = nullptr);

}  // namespace mosaic::ingest
