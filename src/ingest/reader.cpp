#include "ingest/reader.hpp"

#include <filesystem>
#include <fstream>
#include <limits>

#include "darshan/binary_format.hpp"
#include "darshan/text_format.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace mosaic::ingest {

using util::Error;
using util::ErrorCode;
using util::Expected;

namespace fs = std::filesystem;

Expected<util::MappedFile> FileReader::read_mapped(const std::string& path,
                                                   int attempt) {
  auto bytes = read(path, attempt);
  if (!bytes.has_value()) return std::move(bytes).error();
  return util::MappedFile::from_buffer(std::move(bytes).value());
}

Expected<util::MappedFile> SystemFileReader::read_mapped(
    const std::string& path, int /*attempt*/) {
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return Error{ErrorCode::kNotFound, path + " does not exist"};
  }
  return util::MappedFile::open(path);
}

Expected<std::vector<std::byte>> SystemFileReader::read(const std::string& path,
                                                        int /*attempt*/) {
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return Error{ErrorCode::kNotFound, path + " does not exist"};
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Error{ErrorCode::kIoError, "cannot open " + path};
  const std::streamsize size = in.tellg();
  if (size < 0) return Error{ErrorCode::kIoError, "cannot stat " + path};
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) return Error{ErrorCode::kIoError, "read failure on " + path};
  }
  return bytes;
}

FileReader& system_reader() {
  static SystemFileReader reader;
  return reader;
}

Expected<FaultSpec> FaultSpec::parse(std::string_view text) {
  FaultSpec spec;
  for (const std::string_view field : util::split(text, ',')) {
    const std::string_view trimmed = util::trim(field);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      return Error{ErrorCode::kInvalidArgument,
                   "fault spec field '" + std::string(trimmed) +
                       "' is not key=value"};
    }
    const std::string_view key = util::trim(trimmed.substr(0, eq));
    const std::string_view value = util::trim(trimmed.substr(eq + 1));
    // Integer fields get integer parsers: going through parse_double and a
    // cast silently rounds seeds above 2^53 (changing the fault pattern
    // between runs that think they share a seed) and accepts fractional
    // retry counts.
    if (key == "seed") {
      const auto seed = util::parse_uint(value);
      if (!seed.has_value()) {
        return Error{ErrorCode::kInvalidArgument,
                     "fault spec seed '" + std::string(value) +
                         "' is not an unsigned integer"};
      }
      spec.seed = *seed;
      continue;
    }
    if (key == "eio_failures") {
      const auto failures = util::parse_int(value);
      if (!failures.has_value() || *failures < 0 ||
          *failures > std::numeric_limits<int>::max()) {
        return Error{ErrorCode::kInvalidArgument,
                     "fault spec eio_failures '" + std::string(value) +
                         "' is not a non-negative integer"};
      }
      spec.transient_eio_failures = static_cast<int>(*failures);
      continue;
    }
    const auto number = util::parse_double(value);
    if (!number.has_value()) {
      return Error{ErrorCode::kInvalidArgument,
                   "fault spec value '" + std::string(value) +
                       "' is not numeric"};
    }
    if (key == "eio") {
      spec.transient_eio_probability = *number;
    } else if (key == "eio_permanent") {
      spec.permanent_eio_probability = *number;
    } else if (key == "short") {
      spec.short_read_probability = *number;
    } else if (key == "flip") {
      spec.bitflip_probability = *number;
    } else if (key == "delay") {
      spec.delay_probability = *number;
    } else if (key == "delay_ms") {
      spec.delay_ms = *number;
    } else {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown fault spec key '" + std::string(key) + "'"};
    }
  }
  return spec;
}

Expected<std::vector<std::byte>> FaultyFileReader::read(const std::string& path,
                                                        int attempt) {
  // One splitmix64 stream per (seed, path): the n-th draw always answers the
  // same question, so a file's fault profile is stable across runs, retries
  // and scan orders.
  std::uint64_t stream = spec_.seed ^ darshan::fnv1a(std::string_view(path));
  const auto draw = [&stream] {
    // 53-bit mantissa conversion, same construction Rng::uniform uses.
    return static_cast<double>(util::splitmix64(stream) >> 11) * 0x1.0p-53;
  };
  const bool delayed = draw() < spec_.delay_probability;
  const bool permanent_eio = draw() < spec_.permanent_eio_probability;
  const bool transient_eio = draw() < spec_.transient_eio_probability;
  const bool short_read = draw() < spec_.short_read_probability;
  const bool bitflip = draw() < spec_.bitflip_probability;
  const double cut_fraction = draw();
  const double flip_position = draw();

  if (delayed) util::sleep_for_ms(spec_.delay_ms);
  if (permanent_eio) {
    return Error{ErrorCode::kIoError, "injected permanent EIO on " + path};
  }
  if (transient_eio && attempt < spec_.transient_eio_failures) {
    return Error{ErrorCode::kIoError,
                 "injected transient EIO on " + path + " (attempt " +
                     std::to_string(attempt) + ")"};
  }

  auto bytes = base_->read(path, attempt);
  if (!bytes.has_value()) return bytes;

  if (short_read && !bytes->empty()) {
    // Keep at least one byte so the result is a torn file, not an empty one.
    const auto kept = static_cast<std::size_t>(
        cut_fraction * static_cast<double>(bytes->size() - 1)) + 1;
    bytes->resize(kept);
  }
  if (bitflip && !bytes->empty()) {
    const auto at = static_cast<std::size_t>(
        flip_position * static_cast<double>(bytes->size() - 1));
    const auto bit = static_cast<int>(
        util::mix64(stream ^ 0x9E3779B97F4A7C15ull) % 8);
    (*bytes)[at] ^= static_cast<std::byte>(1u << bit);
  }
  return bytes;
}

Expected<trace::Trace> parse_trace_bytes(const std::string& path,
                                         std::span<const std::byte> bytes,
                                         const util::Deadline& deadline) {
  if (path.ends_with(".mbt")) return darshan::parse_mbt(bytes);
  return darshan::parse_text(
      std::string_view(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size()),
      deadline);
}

}  // namespace mosaic::ingest
